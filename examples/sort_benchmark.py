#!/usr/bin/env python
"""Run the Sort Benchmark with any shuffle variant and compare.

The workload of §5.1: range-partitioned external sort of synthetic
100-byte records on a simulated HDD cluster.  Runs every variant (or the
one you name) and prints job completion times against the theoretical
4D/B disk bound.

Run:  python examples/sort_benchmark.py [simple|merge|magnet|push|push*]
      python examples/sort_benchmark.py --partitions 200 --gb 50
"""

import argparse

from repro.cluster import ClusterSpec, D3_2XLARGE
from repro.common.units import GB, GIB, format_duration
from repro.futures import Runtime
from repro.metrics import ResultTable
from repro.sort import (
    SortJobConfig,
    run_sort,
    theoretical_sort_seconds,
    VARIANTS,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("variant", nargs="?", choices=VARIANTS, default=None,
                        help="shuffle variant (default: run all)")
    parser.add_argument("--gb", type=float, default=20.0,
                        help="dataset size in GB (default 20)")
    parser.add_argument("--partitions", type=int, default=100)
    parser.add_argument("--nodes", type=int, default=10)
    args = parser.parse_args()

    data_bytes = int(args.gb * GB)
    node = D3_2XLARGE.with_object_store(2 * GIB)
    spec = ClusterSpec.homogeneous(node, args.nodes)
    theory = theoretical_sort_seconds(spec, data_bytes)
    variants = [args.variant] if args.variant else list(VARIANTS)

    table = ResultTable(
        f"TeraSort {args.gb:.0f} GB, {args.partitions} partitions, "
        f"{args.nodes} HDD nodes",
        ["variant", "seconds", "vs_theory", "spilled_gb", "validated"],
    )
    for variant in variants:
        rt = Runtime(ClusterSpec.homogeneous(node, args.nodes))
        result = run_sort(
            rt,
            SortJobConfig(
                variant=variant,
                num_partitions=args.partitions,
                partition_bytes=data_bytes // args.partitions,
                virtual=True,
            ),
        )
        table.add_row(
            variant=variant,
            seconds=result.sort_seconds,
            vs_theory=result.sort_seconds / theory,
            spilled_gb=rt.counters.get("spill_bytes_written") / GB,
            validated=result.validated,
        )
        print(f"  {variant:7s} done in {format_duration(result.sort_seconds)}")
    print()
    print(table.render())
    print(f"\ntheoretical disk bound (4D/B): {theory:.1f}s")


if __name__ == "__main__":
    main()
