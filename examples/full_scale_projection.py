#!/usr/bin/env python
"""Project the paper's 100 TB / 100-node sort at full node count.

The benchmarks scale node counts down for wall-clock reasons; this script
lets you run the Fig 4d comparison at any cluster size -- including the
paper's 100 HDD nodes -- using virtual blocks, and prints the projected
job completion times, the theoretical disk bound, and the CloudSort-style
dollar cost.

Run:  python examples/full_scale_projection.py              # 20 nodes, quick
      python examples/full_scale_projection.py --nodes 100  # paper scale (minutes)
"""

import argparse
import time

from repro.cluster import ClusterSpec, D3_2XLARGE
from repro.common.units import format_duration
from repro.futures import Runtime
from repro.sort import (
    SortJobConfig,
    cloudsort_cost,
    run_sort,
    theoretical_sort_seconds,
)
from repro.baselines.spark import SparkConfig, SparkSortJob
from repro.cluster import Cluster
from repro.simcore import Environment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--store-scale", type=int, default=10,
                        help="object-store shrink factor (data shrinks alike)")
    args = parser.parse_args()

    node = D3_2XLARGE.with_object_store(
        D3_2XLARGE.object_store_bytes // args.store_scale
    )
    spec = ClusterSpec.homogeneous(node, args.nodes)
    # 5.3x aggregate store memory, the paper's data:memory ratio; partition
    # at ~0.1x store, the paper's 2 GB : 19 GiB.
    data_bytes = int(5.3 * node.object_store_bytes * args.nodes)
    partitions = max(100, data_bytes // max(1, node.object_store_bytes // 10))
    theory = theoretical_sort_seconds(spec, data_bytes)
    print(
        f"cluster: {args.nodes}x {node.name} | data: {data_bytes / 1e9:.0f} GB "
        f"| partitions: {partitions} | theoretical 4D/B: {theory:.0f}s"
    )

    wall = time.time()
    rt = Runtime(ClusterSpec.homogeneous(node, args.nodes))
    es = run_sort(
        rt,
        SortJobConfig(
            variant="push*",
            num_partitions=partitions,
            partition_bytes=data_bytes // partitions,
            virtual=True,
        ),
    )
    print(
        f"exoshuffle push*: {format_duration(es.sort_seconds)} "
        f"({es.sort_seconds / theory:.2f}x theoretical; "
        f"simulated in {time.time() - wall:.0f}s wall)"
    )

    for push in (True, False):
        env = Environment()
        job = SparkSortJob(
            Cluster.homogeneous(env, node, args.nodes),
            config=SparkConfig(push_based=push, compression=True),
            num_partitions=partitions,
            partition_bytes=data_bytes // partitions,
        )
        result = job.run()
        print(
            f"{result.mode:>16s}: {format_duration(result.sort_seconds)} "
            f"({result.sort_seconds / theory:.2f}x theoretical)"
        )

    cost = cloudsort_cost(
        node.name, args.nodes, es.sort_seconds, data_bytes
    )
    print(f"\nCloudSort-style cost for the Exoshuffle run: {cost}")
    print(
        "(the paper's system went on to set the CloudSort record with "
        "this architecture)"
    )


if __name__ == "__main__":
    main()
