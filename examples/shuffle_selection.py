#!/usr/bin/env python
"""Run-time shuffle selection (§5.1.3, §7).

The most performant shuffle depends on data size, layout, and hardware.
Because every algorithm here is just a library function over the same
data plane, an application can pick per job -- no second system to
deploy.  This demo sweeps data sizes on one cluster and shows the
selector switching algorithms right where the measured crossover is.

Run:  python examples/shuffle_selection.py
"""

from repro.cluster import ClusterSpec, I3_2XLARGE
from repro.common.units import GB, GIB
from repro.futures import Runtime
from repro.shuffle.select import describe_choice
from repro.sort import SortJobConfig, run_sort


def measure(variant: str, data_bytes: int, partitions: int) -> float:
    node = I3_2XLARGE.with_object_store(2 * GIB)
    rt = Runtime(ClusterSpec.homogeneous(node, 4))
    result = run_sort(
        rt,
        SortJobConfig(
            variant=variant,
            num_partitions=partitions,
            partition_bytes=data_bytes // partitions,
            virtual=True,
            output_to_disk=False,
        ),
    )
    return result.sort_seconds


def main() -> None:
    node = I3_2XLARGE.with_object_store(2 * GIB)
    probe_rt = Runtime(ClusterSpec.homogeneous(node, 4))

    print(f"{'data':>8s} {'parts':>6s} {'simple':>8s} {'push*':>8s} "
          f"{'winner':>8s} {'selector':>16s}")
    for data_gb, partitions in [(1, 40), (2, 80), (8, 160), (24, 320)]:
        data = data_gb * GB
        t_simple = measure("simple", data, partitions)
        t_push = measure("push*", data, partitions)
        winner = "simple" if t_simple < t_push else "push*"
        choice = describe_choice(probe_rt, data, partitions)["algorithm"]
        short = "simple" if "simple" in choice else "push*"
        print(
            f"{data_gb:6d}GB {partitions:6d} {t_simple:7.1f}s {t_push:7.1f}s "
            f"{winner:>8s} {short:>16s}"
        )
    print("\nthe selector's heuristic (fits-in-memory x partition count)"
          "\ntracks the measured winner without running both.")


if __name__ == "__main__":
    main()
