#!/usr/bin/env python
"""Export a Chrome/Perfetto trace of a shuffle's execution.

Runs a push-based sort, prints the per-phase summary, and writes a
``chrome://tracing``-compatible JSON timeline of every task on every
node -- the observability workflow used to eyeball pipelining in real
deployments.

Run:  python examples/trace_timeline.py [--out trace.json]
"""

import argparse

from repro.cluster import ClusterSpec, D3_2XLARGE
from repro.common.units import GB, GIB
from repro.futures import Runtime
from repro.metrics import export_chrome_trace, phase_summary
from repro.sort import SortJobConfig, run_sort


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json")
    parser.add_argument("--variant", default="push*")
    args = parser.parse_args()

    node = D3_2XLARGE.with_object_store(2 * GIB)
    rt = Runtime(ClusterSpec.homogeneous(node, 4))
    result = run_sort(
        rt,
        SortJobConfig(
            variant=args.variant,
            num_partitions=40,
            partition_bytes=(10 * GB) // 40,
            virtual=True,
        ),
    )
    print(f"sorted 10 GB with {args.variant} in {result.sort_seconds:.1f}s "
          f"(simulated)\n")
    print(phase_summary(rt).render())
    count = export_chrome_trace(rt, args.out)
    print(f"\nwrote {count} task events to {args.out}")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")


if __name__ == "__main__":
    main()
