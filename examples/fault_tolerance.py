#!/usr/bin/env python
"""Fault tolerance demo: kill a node mid-sort and watch it recover (§5.1.5).

Runs the same push-based sort twice -- once clean, once with a worker
node killed 3 seconds into the job -- and shows lineage reconstruction
re-executing lost work, with the output still validating.

Run:  python examples/fault_tolerance.py
"""

from repro.cluster import ClusterSpec, D3_2XLARGE, FailurePlan
from repro.common.units import GB, GIB, format_duration
from repro.futures import Runtime, RuntimeConfig
from repro.sort import SortJobConfig, run_sort


def run(with_failure: bool) -> None:
    node = D3_2XLARGE.with_object_store(2 * GIB)
    rt = Runtime(
        ClusterSpec.homogeneous(node, 6),
        RuntimeConfig(failure_detection_s=5.0),
    )
    failures = (
        [FailurePlan(at_time=3.0, downtime=8.0, node_index=2)]
        if with_failure
        else []
    )
    config = SortJobConfig(
        variant="push*",
        num_partitions=60,
        partition_bytes=(20 * GB) // 60,
        virtual=True,
        failures=failures,
    )
    result = run_sort(rt, config)
    label = "with node failure" if with_failure else "clean run        "
    print(
        f"{label}: {format_duration(result.sort_seconds):>8s}  "
        f"(validated={result.validated}, "
        f"re-executed tasks={int(rt.counters.get('tasks_resubmitted'))}, "
        f"node failures={int(rt.counters.get('node_failures'))})"
    )
    return result.sort_seconds


def main() -> None:
    print("sorting 20 GB on 6 HDD nodes with ES-push* ...")
    clean = run(with_failure=False)
    failed = run(with_failure=True)
    print(
        f"\nrecovery overhead: +{failed - clean:.1f}s "
        "(failure detection + lineage re-execution)"
    )


if __name__ == "__main__":
    main()
