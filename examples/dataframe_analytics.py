#!/usr/bin/env python
"""Distributed DataFrame analytics over shuffle-as-a-library (§6).

Loads a synthetic "orders" table, then runs the two operators that force
a shuffle in every DataFrame engine -- global sort and groupby
aggregation -- plus cheap row-local operators, all through the shuffle
library and its data plane (spilling, pipelining, locality included).

Run:  python examples/dataframe_analytics.py
"""

import numpy as np

from repro.cluster import D3_2XLARGE
from repro.common.rng import seeded_rng
from repro.common.units import GIB, format_duration
from repro.dataframe import DistributedFrame
from repro.futures import Runtime


def make_orders(n: int) -> dict:
    rng = seeded_rng(7, "orders")
    return {
        "customer": rng.integers(0, 500, size=n),
        "amount": np.round(rng.gamma(2.0, 30.0, size=n), 2),
        "priority": rng.integers(0, 3, size=n),
    }


def main() -> None:
    rt = Runtime.create(D3_2XLARGE.with_object_store(2 * GIB), 4)
    data = make_orders(200_000)

    def analytics():
        orders = DistributedFrame.from_arrays(rt, data, num_partitions=16)
        print(f"loaded {orders.count():,} orders in {orders.num_partitions} partitions")

        urgent = orders.filter("priority", lambda p: p == 2)
        print(f"urgent orders: {urgent.count():,}")

        by_customer = orders.groupby_agg(
            "customer", {"amount": "sum"}
        ).sort_values("amount_sum")
        top = by_customer.collect()
        print("\ntop 5 customers by spend:")
        for i in range(1, 6):
            row = top.num_rows - i
            print(
                f"  customer {int(top['customer'][row]):4d}: "
                f"${top['amount_sum'][row]:,.2f}"
            )

        stats = orders.groupby_agg("priority", {"amount": "mean"})
        collected = stats.collect().sort_by("priority")
        print("\nmean order value by priority:")
        for i in range(collected.num_rows):
            print(
                f"  priority {int(collected['priority'][i])}: "
                f"${collected['amount_mean'][i]:,.2f}"
            )
        return None

    rt.run(analytics)
    print(f"\nsimulated time: {format_duration(rt.now)}; "
          f"tasks: {int(rt.counters.get('tasks_finished'))}")


if __name__ == "__main__":
    main()
