#!/usr/bin/env python
"""ML training with pipelined shuffle vs a windowed buffer loader (Fig 8).

Trains the same SGD classifier on a label-clustered synthetic dataset
with (a) full per-epoch distributed shuffle pipelined with training and
(b) a Petastorm-style windowed shuffle buffer, then compares epoch times
and convergence.

Run:  python examples/ml_pipeline.py [--epochs 10]
"""

import argparse

from repro.baselines.petastorm import PetastormLoader, windowed_shuffle_order
from repro.cluster import G4DN_4XLARGE
from repro.futures import Runtime
from repro.ml import (
    ExoshuffleLoader,
    SGDClassifier,
    SyntheticHiggs,
    train_single_node,
)
from repro.ml.loaders import stage_blocks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--samples", type=int, default=20_000)
    args = parser.parse_args()

    raw_bytes = args.samples * 29 * 4
    data = SyntheticHiggs(
        num_samples=args.samples, seed=2, io_scale=2_000_000_000 / raw_bytes
    )
    blocks = data.training_blocks(12)
    validation = data.validation_set()

    # -- Exoshuffle-style loader ------------------------------------------
    rt = Runtime.create(G4DN_4XLARGE, 1)
    refs = rt.run(lambda: stage_blocks(rt, blocks))
    exo = train_single_node(
        rt,
        ExoshuffleLoader(rt, refs, seed=0),
        SGDClassifier(num_features=data.num_features, seed=0),
        validation,
        args.epochs,
        label="exoshuffle (full shuffle)",
    )

    # -- Petastorm-style windowed loader ---------------------------------
    rt2 = Runtime.create(G4DN_4XLARGE, 1)
    refs2 = rt2.run(lambda: stage_blocks(rt2, blocks))
    total = sum(b.size_bytes for b in blocks)
    loader = PetastormLoader(
        rt2, refs2,
        window_bytes=int(0.09 * total),
        buffer_budget_bytes=int(0.15 * total),
    )
    record_bytes = max(1, blocks[0].size_bytes // blocks[0].num_records)
    window = loader.window_records(record_bytes)
    pet = train_single_node(
        rt2,
        loader,
        SGDClassifier(num_features=data.num_features, seed=0),
        validation,
        args.epochs,
        label="petastorm (9% window)",
        order_override=lambda epoch: list(
            windowed_shuffle_order(blocks, window, loader.epoch_rng(epoch), 2048)
        ),
    )

    print(f"\n{'loader':28s} {'epoch(s)':>9s} {'total(s)':>9s} {'final acc':>10s}")
    for result in (exo, pet):
        print(
            f"{result.label:28s} {result.mean_epoch_seconds:9.2f} "
            f"{result.total_seconds:9.1f} {result.final_accuracy:10.3f}"
        )
    print(f"\nspeedup: {pet.total_seconds / exo.total_seconds:.2f}x end-to-end")
    print("accuracy by epoch (exo | petastorm):")
    for i, (a, b) in enumerate(zip(exo.accuracies, pet.accuracies), start=1):
        print(f"  epoch {i:2d}: {a:.3f} | {b:.3f}")


if __name__ == "__main__":
    main()
