#!/usr/bin/env python
"""Online aggregation demo: watch partial results converge (§3.2.1, Fig 5).

Aggregates a synthetic pageviews stream two ways -- one regular shuffle
(answer only at the end) and one streaming shuffle (a refining partial
answer every round) -- and prints the error-versus-time trace.

Run:  python examples/online_aggregation.py
"""

from repro.aggregation import run_online_aggregation
from repro.cluster import R6I_2XLARGE
from repro.common.units import format_duration
from repro.futures import Runtime
from repro.workloads import PageviewDataset


def main() -> None:
    dataset = PageviewDataset(
        num_hours=96,
        languages=6,
        pages_per_language=300,
        block_bytes=100 * 10**6,
        views_per_hour=300_000,
        seed=1,
    )
    print(
        f"dataset: {dataset.num_hours} hourly blocks, "
        f"{dataset.total_bytes / 1e9:.1f} GB simulated"
    )

    results = {}
    for mode in ("batch", "streaming"):
        rt = Runtime.create(R6I_2XLARGE, 8)
        results[mode] = run_online_aggregation(
            rt, dataset, num_reduces=6, mode=mode, hours_per_round=8
        )

    batch, stream = results["batch"], results["streaming"]
    print(f"\nregular shuffle:   final answer at "
          f"{format_duration(batch.total_seconds)}")
    print(f"streaming shuffle: total "
          f"{format_duration(stream.total_seconds)} "
          f"({stream.total_seconds / batch.total_seconds:.2f}x the regular)")
    print("\npartial-result trace (streaming):")
    print("  time      KL error")
    for t, err in stream.error_series.samples:
        bar = "#" * max(1, int(min(err, 0.5) * 80))
        print(f"  {t:7.2f}s  {err:8.4f}  {bar}")
    t8 = stream.first_time_within(0.08)
    print(
        f"\nwithin 8% error at {format_duration(t8)} -- "
        f"{batch.total_seconds / t8:.1f}x earlier than the regular "
        f"shuffle's only answer"
    )


if __name__ == "__main__":
    main()
