#!/usr/bin/env python
"""Quickstart: distributed futures, then shuffle-as-a-library, in 5 minutes.

Builds a small simulated cluster, shows the Ray-style API the paper's
listings use (remote tasks, object refs, get/wait), then runs a real
word-count-style shuffle through ``simple_shuffle``.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.units import GIB, MIB, format_duration
from repro.futures import Runtime
from repro.shuffle import simple_shuffle

NODE = NodeSpec(
    name="demo-node",
    cores=4,
    memory_bytes=8 * GIB,
    object_store_bytes=2 * GIB,
    disk=DiskSpec(bandwidth_bytes_per_sec=200 * MIB, seek_latency_s=5e-3),
    nic=NicSpec(bandwidth_bytes_per_sec=125 * MIB),
)

DOCUMENTS = [
    "the quick brown fox jumps over the lazy dog",
    "a distributed future is a reference to an eventual remote value",
    "shuffle is the all to all exchange between map and reduce tasks",
    "the system moves the bytes so the application can stay a library",
]


def main() -> None:
    rt = Runtime.create(NODE, num_nodes=3)

    # -- 1. plain distributed futures ------------------------------------
    @rt.remote
    def square(x):
        return x * x

    def basics():
        refs = [square.remote(i) for i in range(8)]
        ready, pending = rt.wait(refs, num_returns=4)
        print(f"after wait: {len(ready)} ready, {len(pending)} pending")
        return sum(rt.get(refs))

    total = rt.run(basics)
    print(f"sum of squares 0..7 = {total} (simulated t={rt.now:.3f}s)")

    # -- 2. shuffle as a library ---------------------------------------------
    num_reducers = 2

    def tokenize(doc):
        """Map: count words, partition by hash across reducers."""
        buckets = [Counter() for _ in range(num_reducers)]
        for word in doc.split():
            buckets[hash(word) % num_reducers][word] += 1
        return buckets

    def merge_counts(*counters):
        """Reduce: merge one partition's counters."""
        merged = Counter()
        for counter in counters:
            merged.update(counter)
        return merged

    def word_count():
        out_refs = simple_shuffle(
            rt, DOCUMENTS, tokenize, merge_counts, num_reducers
        )
        merged = Counter()
        for partial in rt.get(out_refs):
            merged.update(partial)
        return merged

    counts = rt.run(word_count)
    top = counts.most_common(5)
    print("top words:", ", ".join(f"{w}={n}" for w, n in top))
    print(f"job completion (simulated): {format_duration(rt.now)}")
    print(f"tasks executed: {int(rt.counters.get('tasks_finished'))}")


if __name__ == "__main__":
    main()
