#!/usr/bin/env python
"""Layering lint: the policy plane must stay mechanism-free, and the
streaming tier must stay optional.

``repro.futures.policies`` holds pure decision rules; the refactor that
extracted them is only worth keeping if they *stay* extracted.  This
tool walks every module under ``src/repro/futures/policies`` with
:mod:`ast` and reports any import that is not

- the Python standard library,
- ``repro.common`` (ids, errors, rng, units -- value types and helpers),
- ``repro.futures.task`` / ``repro.futures.refs`` (task/ref value types),
- the policies package itself (absolute or relative).

In particular ``Runtime``, ``NodeManager``, ``ObjectStore``,
``Scheduler``, and ``repro.simcore`` are mechanism layers and must
never be imported here -- policies receive frozen view dataclasses, not
live runtime state.

The second check runs in the opposite direction: ``repro.streaming``
may depend on the jobs/futures/obs planes, but *nothing in the
data-plane core* may import ``repro.streaming`` -- only the
applications that explicitly build on the tier
(:data:`STREAMING_IMPORTERS`) may.  A core module importing the tier
would make it load-bearing in batch-only runs, breaking the
zero-cost-when-off contract the golden digest tests pin.  Run as
``python tools/check_layering.py`` (CI does; nonzero exit on
violation).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

#: Import prefixes the policy plane may use, besides the stdlib and
#: its own (relative) modules.
ALLOWED_PREFIXES = (
    "repro.common",
    "repro.futures.task",
    "repro.futures.refs",
    "repro.futures.policies",
)

#: The default tree to check, relative to the repo root.
DEFAULT_ROOT = Path("src") / "repro" / "futures" / "policies"

#: The whole source tree, walked by the streaming-isolation check.
SRC_ROOT = Path("src") / "repro"

#: Packages allowed to import ``repro.streaming``: the tier itself and
#: the applications explicitly re-based on it.  Everything else under
#: ``src/repro`` -- futures, cluster, shuffle, jobs, obs, chaos, ... --
#: is data-plane core or control plane and must work with the tier
#: absent.
STREAMING_IMPORTERS = (
    "repro.streaming",
    "repro.aggregation",
)

#: Data-plane packages that must never import the live ops plane.  The
#: live tier (``repro.obs.live``) is a pure *consumer* of the event bus:
#: the runtime exposes only the duck-typed ``Runtime.attach_sampler``
#: hook, so dashboards and samplers can be deleted without touching the
#: data plane.  A data-plane import of the live package would invert
#: that arrow and make telemetry rendering load-bearing.
DATA_PLANE_PACKAGES = (
    "repro.futures",
    "repro.simcore",
    "repro.shuffle",
)

#: Packages that must never import the self-profiling tier
#: (``repro.obs.profile``).  The profiler observes the engine by
#: shadowing methods on *instances* at attach time and restoring them
#: on detach; the data plane's only contact is the duck-typed
#: ``Runtime.self_profiler`` slot.  An import in either the data plane
#: or the cluster fabric would make the observer load-bearing and
#: break the zero-cost-when-off contract the golden digests pin.
PROFILE_FORBIDDEN_PACKAGES = (
    "repro.futures",
    "repro.simcore",
    "repro.shuffle",
    "repro.cluster",
)

#: Import prefixes the planning layer (``repro.plan``) may use besides
#: the stdlib: value-type helpers and itself.  The planner is a *pure*
#: lowering library -- it sees the cluster only through duck-typed
#: profile snapshots (``ClusterProfile.from_runtime``) and the event
#: stream, never through runtime internals, so plans stay computable
#: offline from a recorded profile.
PLAN_ALLOWED_PREFIXES = (
    "repro.common",
    "repro.plan",
)

#: Packages that must never import ``repro.plan``: the mechanism layers
#: the planner chooses *between*.  A shuffle variant importing the
#: planner (or the futures runtime importing it for its duck-typed
#: ``Runtime.planner`` slot) would create a cycle where the mechanism
#: depends on the policy that selects it.  ``repro.shuffle.select`` is
#: the one exemption: it *is* the legacy selection surface, kept as a
#: thin re-export wrapper over the plan layer.
PLAN_FORBIDDEN_IMPORTERS = (
    "repro.futures",
    "repro.simcore",
    "repro.cluster",
    "repro.shuffle",
)

#: The single module under a forbidden package allowed to import
#: ``repro.plan`` (the legacy wrapper).
PLAN_IMPORT_EXEMPT = ("repro.shuffle.select",)


def _allowed(module: str) -> bool:
    """Is an absolute import target acceptable inside the policy plane?"""
    if not module.startswith("repro"):
        return True  # stdlib (third-party deps would fail import anyway)
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in ALLOWED_PREFIXES
    )


def check_file(path: Path) -> List[str]:
    """Violation messages (``file:line: import``) for one module."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: List[str] = []

    def offend(node: ast.stmt, module: str) -> None:
        violations.append(
            f"{path}:{node.lineno}: imports {module!r} "
            f"(policy plane may only import {', '.join(ALLOWED_PREFIXES)})"
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _allowed(alias.name):
                    offend(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                continue  # relative: stays inside the policies package
            module = node.module or ""
            if not _allowed(module):
                offend(node, module)
    return violations


def check_tree(root: Path) -> List[str]:
    """All violations under ``root`` (sorted for stable output)."""
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def check_registry_coverage(root: Path) -> List[str]:
    """Every declared policy kind must have >= 1 registered built-in.

    Walks ``registry.py`` with :mod:`ast`, reads the ``POLICY_KINDS``
    tuple and all module-level ``register_policy(kind, name, ...)``
    calls, and reports kinds with no built-in.  This pins the plane's
    completeness contract as kinds are added (the autoscale kind joined
    placement/memory/spill/dispatch this way): a new kind without a
    registered default would fail config resolution at runtime, so the
    lint catches it before any test builds a Runtime.
    """
    registry = root / "registry.py"
    if not registry.is_file():
        return [f"{registry}: missing (policy registry moved?)"]
    tree = ast.parse(registry.read_text(), filename=str(registry))
    declared: List[str] = []
    registered: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign):
                targets = [node.target.id] if isinstance(
                    node.target, ast.Name
                ) else []
            else:
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            if "POLICY_KINDS" in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                declared = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
        elif isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", "")
            if name == "register_policy" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    registered.append(first.value)
    if not declared:
        return [f"{registry}: POLICY_KINDS tuple not found"]
    return [
        f"{registry}: policy kind {kind!r} has no registered built-in"
        for kind in declared
        if kind not in registered
    ]


def _module_name(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``src_root``'s parent
    (``src/repro/streaming/job.py`` -> ``repro.streaming.job``)."""
    relative = path.relative_to(src_root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def check_streaming_isolation(src_root: Path) -> List[str]:
    """Core modules that import the optional streaming tier.

    Walks every module under ``src_root`` and flags any import of
    ``repro.streaming`` from a module outside
    :data:`STREAMING_IMPORTERS` -- the reverse direction of the policy
    check: the tier may see the core, the core must never see the tier.
    """
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = _module_name(path, src_root)
        if any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in STREAMING_IMPORTERS
        ):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module or ""]
            for target in targets:
                if target == "repro.streaming" or target.startswith(
                    "repro.streaming."
                ):
                    violations.append(
                        f"{path}:{node.lineno}: imports {target!r} "
                        f"(only {', '.join(STREAMING_IMPORTERS)} may import "
                        f"the streaming tier; the core must stay "
                        f"streaming-free)"
                    )
    return violations


def check_live_isolation(src_root: Path) -> List[str]:
    """Data-plane modules that import the live ops plane.

    Walks every module under the :data:`DATA_PLANE_PACKAGES` trees and
    flags any import of ``repro.obs.live`` -- the observer must never
    become a dependency of the observed: the data plane publishes to
    the bus and exposes the duck-typed ``attach_sampler`` hook, nothing
    more.
    """
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = _module_name(path, src_root)
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in DATA_PLANE_PACKAGES
        ):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module or ""]
            for target in targets:
                if target == "repro.obs.live" or target.startswith(
                    "repro.obs.live."
                ):
                    violations.append(
                        f"{path}:{node.lineno}: imports {target!r} "
                        f"(the data plane -- "
                        f"{', '.join(DATA_PLANE_PACKAGES)} -- must not "
                        f"depend on the live ops plane; use the "
                        f"duck-typed attach_sampler hook)"
                    )
    return violations


def check_profile_isolation(src_root: Path) -> List[str]:
    """Data-plane / cluster modules that import the self-profiling tier.

    Same shape as :func:`check_live_isolation`, for
    ``repro.obs.profile``: the profiler attaches by shadowing instance
    methods from the outside, so nothing it observes may import it --
    profiling must stay bit-for-bit absent when off.
    """
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = _module_name(path, src_root)
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in PROFILE_FORBIDDEN_PACKAGES
        ):
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module or ""]
            for target in targets:
                if target == "repro.obs.profile" or target.startswith(
                    "repro.obs.profile."
                ):
                    violations.append(
                        f"{path}:{node.lineno}: imports {target!r} "
                        f"(the observed planes -- "
                        f"{', '.join(PROFILE_FORBIDDEN_PACKAGES)} -- must "
                        f"not depend on the self-profiler; it attaches by "
                        f"instance shadowing via the duck-typed "
                        f"self_profiler slot)"
                    )
    return violations


def check_plan_isolation(src_root: Path) -> List[str]:
    """Both directions of the planning layer's boundary.

    Forward: modules under ``repro.plan`` may import only the stdlib,
    :data:`PLAN_ALLOWED_PREFIXES`, and themselves -- in particular never
    the futures runtime, the simulator core, or the shuffle variants
    (the planner ranks variants by *name*; executing them is the call
    sites' job).  Reverse: the mechanism layers in
    :data:`PLAN_FORBIDDEN_IMPORTERS` must never import ``repro.plan``,
    except the legacy wrapper modules in :data:`PLAN_IMPORT_EXEMPT`.
    """
    violations: List[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = _module_name(path, src_root)
        in_plan = module == "repro.plan" or module.startswith("repro.plan.")
        forbidden = module not in PLAN_IMPORT_EXEMPT and any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in PLAN_FORBIDDEN_IMPORTERS
        )
        if not in_plan and not forbidden:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                targets = [node.module or ""]
            for target in targets:
                if in_plan:
                    if target.startswith("repro") and not any(
                        target == prefix or target.startswith(prefix + ".")
                        for prefix in PLAN_ALLOWED_PREFIXES
                    ):
                        violations.append(
                            f"{path}:{node.lineno}: imports {target!r} "
                            f"(repro.plan is a pure lowering library and "
                            f"may only import "
                            f"{', '.join(PLAN_ALLOWED_PREFIXES)})"
                        )
                elif target == "repro.plan" or target.startswith(
                    "repro.plan."
                ):
                    violations.append(
                        f"{path}:{node.lineno}: imports {target!r} "
                        f"(mechanism layers -- "
                        f"{', '.join(PLAN_FORBIDDEN_IMPORTERS)} -- must "
                        f"not depend on the planning layer; only "
                        f"{', '.join(PLAN_IMPORT_EXEMPT)} may, as the "
                        f"legacy wrapper)"
                    )
    return violations


def main(argv: List[str] = None) -> int:
    """Entry point: check the tree, print violations, exit nonzero."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else DEFAULT_ROOT
    if not root.exists():
        print(f"layering: no such tree {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    # Registry completeness applies to the real policy plane (or any tree
    # that ships a registry.py); ad-hoc trees passed for import linting
    # alone are not required to carry one.
    if root == DEFAULT_ROOT or (root / "registry.py").is_file():
        violations += check_registry_coverage(root)
    # Streaming isolation spans the whole source tree; run it whenever
    # the default tree is being checked (i.e. the full CI invocation).
    if root == DEFAULT_ROOT and SRC_ROOT.exists():
        violations += check_streaming_isolation(SRC_ROOT)
        violations += check_live_isolation(SRC_ROOT)
        violations += check_profile_isolation(SRC_ROOT)
        violations += check_plan_isolation(SRC_ROOT)
    for violation in violations:
        print(violation)
    if violations:
        print(f"layering: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"layering: {root} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
