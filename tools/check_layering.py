#!/usr/bin/env python
"""Layering lint: the policy plane must stay mechanism-free.

``repro.futures.policies`` holds pure decision rules; the refactor that
extracted them is only worth keeping if they *stay* extracted.  This
tool walks every module under ``src/repro/futures/policies`` with
:mod:`ast` and reports any import that is not

- the Python standard library,
- ``repro.common`` (ids, errors, rng, units -- value types and helpers),
- ``repro.futures.task`` / ``repro.futures.refs`` (task/ref value types),
- the policies package itself (absolute or relative).

In particular ``Runtime``, ``NodeManager``, ``ObjectStore``,
``Scheduler``, and ``repro.simcore`` are mechanism layers and must
never be imported here -- policies receive frozen view dataclasses, not
live runtime state.  Run as ``python tools/check_layering.py`` (CI does;
nonzero exit on violation).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

#: Import prefixes the policy plane may use, besides the stdlib and
#: its own (relative) modules.
ALLOWED_PREFIXES = (
    "repro.common",
    "repro.futures.task",
    "repro.futures.refs",
    "repro.futures.policies",
)

#: The default tree to check, relative to the repo root.
DEFAULT_ROOT = Path("src") / "repro" / "futures" / "policies"


def _allowed(module: str) -> bool:
    """Is an absolute import target acceptable inside the policy plane?"""
    if not module.startswith("repro"):
        return True  # stdlib (third-party deps would fail import anyway)
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in ALLOWED_PREFIXES
    )


def check_file(path: Path) -> List[str]:
    """Violation messages (``file:line: import``) for one module."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: List[str] = []

    def offend(node: ast.stmt, module: str) -> None:
        violations.append(
            f"{path}:{node.lineno}: imports {module!r} "
            f"(policy plane may only import {', '.join(ALLOWED_PREFIXES)})"
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if not _allowed(alias.name):
                    offend(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level > 0:
                continue  # relative: stays inside the policies package
            module = node.module or ""
            if not _allowed(module):
                offend(node, module)
    return violations


def check_tree(root: Path) -> List[str]:
    """All violations under ``root`` (sorted for stable output)."""
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        violations.extend(check_file(path))
    return violations


def check_registry_coverage(root: Path) -> List[str]:
    """Every declared policy kind must have >= 1 registered built-in.

    Walks ``registry.py`` with :mod:`ast`, reads the ``POLICY_KINDS``
    tuple and all module-level ``register_policy(kind, name, ...)``
    calls, and reports kinds with no built-in.  This pins the plane's
    completeness contract as kinds are added (the autoscale kind joined
    placement/memory/spill/dispatch this way): a new kind without a
    registered default would fail config resolution at runtime, so the
    lint catches it before any test builds a Runtime.
    """
    registry = root / "registry.py"
    if not registry.is_file():
        return [f"{registry}: missing (policy registry moved?)"]
    tree = ast.parse(registry.read_text(), filename=str(registry))
    declared: List[str] = []
    registered: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign):
                targets = [node.target.id] if isinstance(
                    node.target, ast.Name
                ) else []
            else:
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
            if "POLICY_KINDS" in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                declared = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
        elif isinstance(node, ast.Call):
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", "")
            if name == "register_policy" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    registered.append(first.value)
    if not declared:
        return [f"{registry}: POLICY_KINDS tuple not found"]
    return [
        f"{registry}: policy kind {kind!r} has no registered built-in"
        for kind in declared
        if kind not in registered
    ]


def main(argv: List[str] = None) -> int:
    """Entry point: check the tree, print violations, exit nonzero."""
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else DEFAULT_ROOT
    if not root.exists():
        print(f"layering: no such tree {root}", file=sys.stderr)
        return 2
    violations = check_tree(root)
    # Registry completeness applies to the real policy plane (or any tree
    # that ships a registry.py); ad-hoc trees passed for import linting
    # alone are not required to carry one.
    if root == DEFAULT_ROOT or (root / "registry.py").is_file():
        violations += check_registry_coverage(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"layering: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"layering: {root} clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
