"""CLI entry point: ``python -m repro.streaming --smoke``.

The smoke mode exercises the streaming tier end to end:

1. an open-loop fleet (a dozen tenants, Poisson sources, windowed
   repartition under fair share) must run every job to DONE with every
   record's latency accounted for, global and per-tenant percentiles
   populated, and per-tenant latency counts summing to the global;
2. backpressure must hold: no job may ever exceed its in-flight window
   bound, and the throttle must fire (``stream.backpressure`` events)
   when reducers are made slower than the window cadence;
3. the round-driver parity contract: at one in-flight round the
   incremental driver must reproduce ``streaming_shuffle``'s final
   reducer states exactly on a shared workload.

Exit code 0 means all three held; CI runs this as the streaming gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.futures import Runtime
from repro.jobs.spec import JobSpec, StreamSpec
from repro.streaming.job import run_streaming_job
from repro.streaming.loadgen import (
    open_loop_workload,
    run_open_loop,
    streaming_node_spec,
)


def _check(ok: bool, message: str) -> int:
    print(f"{'ok  ' if ok else 'FAIL'} {message}")
    return 0 if ok else 1


def _smoke_fleet(seed: int) -> int:
    tenants, specs = open_loop_workload(
        seed, num_tenants=12, duration_s=20.0, window_s=5.0
    )
    report = run_open_loop(specs, tenants)
    failures = 0
    failures += _check(
        report.all_done,
        f"{len(specs)} open-loop streaming jobs all DONE "
        f"(t={report.duration:.1f}s)",
    )
    expected = sum(job.output.records for job in report.jobs if job.output)
    failures += _check(
        report.records == expected and report.records > 0,
        f"every record latency-accounted ({report.records} records)",
    )
    lat = report.latency
    failures += _check(
        bool(lat) and lat["p50"] <= lat["p99"] <= lat["p999"],
        f"global latency p50={lat.get('p50', 0):.2f}s "
        f"p99={lat.get('p99', 0):.2f}s p999={lat.get('p999', 0):.2f}s"
        if lat
        else "global latency percentiles populated",
    )
    tenant_count = sum(
        int(summary["count"]) for summary in report.tenant_latency.values()
    )
    failures += _check(
        len(report.tenant_latency) == len(tenants)
        and tenant_count == int(lat.get("count", -1)),
        f"per-tenant percentiles for {len(report.tenant_latency)} tenants "
        f"sum to the global count",
    )
    failures += _check(
        report.peak_inflight_windows
        <= max(spec.stream.max_inflight_windows for spec in specs),
        f"in-flight windows bounded (peak={report.peak_inflight_windows})",
    )
    return failures


def _smoke_backpressure(seed: int) -> int:
    # Reducers slower than the window cadence force the in-flight bound
    # to bite; the controller must throttle rather than queue unboundedly.
    spec = JobSpec(
        name="overloaded",
        tenant="smoke",
        num_maps=2,
        num_reduces=2,
        seed=seed,
        stream=StreamSpec(
            rate_hz=4.0,
            duration_s=24.0,
            window_s=3.0,
            max_inflight_windows=2,
        ),
    )
    rt = Runtime.create(streaming_node_spec(), 2)
    result = rt.run(
        run_streaming_job,
        rt,
        spec,
        job_id="bp-smoke",
        reduce_options={"compute": 5.0},
    )
    failures = _check(
        result.peak_inflight_windows <= 2,
        f"overloaded job held the in-flight bound "
        f"(peak={result.peak_inflight_windows}/2)",
    )
    failures += _check(
        result.backpressure_stalls > 0,
        f"backpressure throttled the source "
        f"({result.backpressure_stalls} stalls)",
    )
    return failures


def _smoke_parity(seed: int) -> int:
    from repro.shuffle import streaming_shuffle
    from repro.streaming.rounds import drive_rounds

    def map_fn(part):
        return [[v * 2 for v in part], [v * 3 for v in part]]

    def reduce_fn(state, *blocks):
        merged = list(state or [])
        for block in blocks:
            merged.extend(block)
        return sorted(merged)

    rounds = [[[seed + r, r + c] for c in range(3)] for r in range(4)]
    finals = []
    for impl in (streaming_shuffle, drive_rounds):
        rt = Runtime.create(streaming_node_spec(), 2)
        finals.append(
            rt.run(lambda: rt.get(impl(rt, rounds, map_fn, reduce_fn, 2)))
        )
    return _check(
        finals[0] == finals[1],
        "RoundDriver reproduces streaming_shuffle's final states",
    )


def main(argv=None) -> int:
    """Parse arguments and run the requested streaming-tier mode."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.streaming",
        description="Streaming shuffle tier smoke runner.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the open-loop fleet, a backpressure overload check, "
        "and the round-driver parity check; exit nonzero on any failure",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    failures = _smoke_fleet(args.seed)
    failures += _smoke_backpressure(args.seed)
    failures += _smoke_parity(args.seed)
    print(("streaming smoke passed" if not failures else
           f"streaming smoke: {failures} check(s) failed"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
