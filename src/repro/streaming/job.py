"""Long-lived streaming jobs: windowed repartition + aggregation.

:func:`run_streaming_job` is the driver body of one streaming job.  It
walks the job's tumbling windows in event-time order; for each non-empty
window it sleeps until the watermark (the sources emit in order, so the
watermark passes a window's end exactly at the last pre-horizon arrival
or the window boundary), asks the :class:`BackpressureController` for
admission, submits the window's repartition round on the
:class:`RoundDriver`, and chains an asynchronous aggregate task over the
round's reducer states.  When the aggregate becomes *visible* the
window's records are queryable, and each record's end-to-end latency --
source event time to aggregate visibility -- lands in the runtime's
metric histograms (per job, per tenant, and global).

The body runs equally as a :class:`~repro.jobs.manager.JobManager`
subdriver (the registered ``"streaming"`` runner) or directly under
``rt.run`` for single-job experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.futures import ObjectRef, Runtime
from repro.jobs.spec import JobSpec
from repro.metrics.core import Histogram
from repro.streaming.backpressure import BackpressureController
from repro.streaming.records import RecordBatch
from repro.streaming.rounds import RoundDriver
from repro.streaming.source import make_sources

#: Metric holding every record's source->visible latency, dimensioned by
#: job id (plus the undimensioned global series).
RECORD_LATENCY_METRIC = "stream.record_latency_s"

#: The same samples dimensioned by *tenant* (the job axis carries the
#: tenant name), so per-tenant percentiles are exact, not merged
#: approximations.
TENANT_LATENCY_METRIC = "stream.tenant_latency_s"


class KeyCounts:
    """Per-reducer accumulated record counts by key, with declared size."""

    __slots__ = ("counts", "size_bytes")

    def __init__(self, counts: Dict[int, int]) -> None:
        self.counts = counts
        self.size_bytes = max(1, 24 * len(counts))

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def make_partitioner(num_reduces: int):
    """The repartition map side: split a window batch by key."""

    def partition_window(batch: RecordBatch) -> List[RecordBatch]:
        return list(batch.partition(num_reduces))

    return partition_window


def fold_counts(state: Optional[KeyCounts], *batches: RecordBatch) -> KeyCounts:
    """The stateful reduce: fold one window's batches into the state."""
    counts: Dict[int, int] = dict(state.counts) if state is not None else {}
    for batch in batches:
        keys, tallies = np.unique(batch.keys, return_counts=True)
        for key, tally in zip(keys.tolist(), tallies.tolist()):
            counts[key] = counts.get(key, 0) + tally
    return KeyCounts(counts)


def aggregate_counts(*states: KeyCounts) -> Dict[str, int]:
    """The per-window aggregate: a small queryable summary."""
    total = sum(state.total for state in states)
    distinct = len({key for state in states for key in state.counts})
    return {"records": total, "distinct_keys": distinct}


@dataclass
class StreamingJobResult:
    """What one streaming job hands back as its output."""

    job_id: Optional[str]
    tenant: str
    records: int
    windows: int
    backpressure_stalls: int
    peak_inflight_windows: int
    watermark: float
    #: Per-job latency summary (count/mean/.../p999), empty if no records.
    latency: Dict[str, float] = field(default_factory=dict)


def run_streaming_job(
    rt: Runtime,
    spec: JobSpec,
    *,
    job_id: Optional[str] = None,
    backlog_limit_bytes: Optional[int] = None,
    map_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
    aggregate_options: Optional[Dict[str, Any]] = None,
) -> StreamingJobResult:
    """Run one streaming job to source close + full drain (blocking).

    Must be called from driver context (``rt.run`` or a spawned
    subdriver).  ``backlog_limit_bytes`` arms the controller's
    allocation-backlog throttle on top of the in-flight window bound;
    the ``*_options`` dicts override task options (e.g. ``compute``
    costs) for experiments that need slow reducers.
    """
    stream = spec.stream
    if stream is None:
        raise ValueError(f"job spec {spec.name!r} has no stream arm")
    bus = rt.bus
    sources = make_sources(
        seed=spec.seed,
        num_sources=spec.num_maps,
        rate_hz=stream.rate_hz,
        duration_s=stream.duration_s,
        keys=stream.keys,
        bytes_per_record=stream.bytes_per_record,
    )
    num_windows = sources[0].num_windows(stream.window_s)
    controller = BackpressureController(
        rt,
        max_inflight_windows=stream.max_inflight_windows,
        backlog_limit_bytes=backlog_limit_bytes,
        job_id=job_id,
        tenant=spec.tenant,
        enabled=stream.backpressure,
    )
    rounds = RoundDriver(
        rt,
        make_partitioner(spec.num_reduces),
        fold_counts,
        spec.num_reduces,
        map_options=map_options,
        reduce_options=reduce_options,
        # The controller (aggregate visibility) is the binding throttle
        # when backpressure is on; align the reduce-side bound with it.
        # Off means *no* bound anywhere -- the contrast arm.
        max_inflight_rounds=(
            stream.max_inflight_windows
            if stream.backpressure
            else num_windows + 1
        ),
    )
    aggregate_task = rt.remote(aggregate_counts, **(aggregate_options or {}))
    keepalive: List[ObjectRef] = []
    total_records = 0
    windows_run = 0

    for w in range(num_windows):
        window_end = (w + 1) * stream.window_s
        batches = [src.batch_for(w, stream.window_s) for src in sources]
        records = sum(len(batch) for batch in batches)
        if records == 0:
            # No source contributed: nothing opens, closes, or reduces.
            continue
        first_arrival = min(
            float(batch.event_times.min()) for batch in batches if len(batch)
        )
        if rt.now < first_arrival:
            rt.sleep(first_arrival - rt.now)
        open_event = bus.emit(
            "stream.window.open",
            job=job_id,
            window=w,
            start=w * stream.window_s,
            end=window_end,
        )
        # The watermark (latest emitted event time) passes the window's
        # end once simulated time does: sources emit in event-time order.
        if rt.now < window_end:
            rt.sleep(window_end - rt.now)
        controller.admit()
        close_event = bus.emit(
            "stream.window.close",
            job=job_id,
            cause=None if open_event is None else open_event.seq,
            window=w,
            records=records,
            bytes=sum(batch.size_bytes for batch in batches),
        )
        state_refs = rounds.submit_round(batches)
        agg_ref = aggregate_task.remote(*state_refs)
        keepalive.append(agg_ref)
        begin_event = bus.emit(
            "stream.agg.begin",
            job=job_id,
            cause=None if close_event is None else close_event.seq,
            window=w,
        )
        event_times = np.concatenate([batch.event_times for batch in batches])
        _track_visibility(
            rt,
            controller,
            window_index=w,
            aggregate_ref=agg_ref,
            event_times=event_times,
            begin_seq=None if begin_event is None else begin_event.seq,
            job_id=job_id,
            tenant=spec.tenant,
        )
        controller.track(w, agg_ref)
        total_records += records
        windows_run += 1
        if stream.backpressure:
            # Round-boundary re-planning hook: under memory pressure the
            # attached AdaptivePlanner (rt.config.replan="on") may shrink
            # the in-flight window bound; a no-op otherwise.
            shrunk = rt.stage_boundary(
                "round", inflight=rounds.max_inflight_rounds, job=job_id
            )
            if shrunk is not None:
                rounds.max_inflight_rounds = shrunk
                controller.max_inflight_windows = shrunk

    # Close the sources at the horizon, then drain in-flight windows.
    if rt.now < stream.duration_s:
        rt.sleep(stream.duration_s - rt.now)
    for source in sources:
        bus.emit(
            "stream.source.close",
            job=job_id,
            records=source.num_records,
            watermark=source.watermark(rt.now),
        )
    controller.drain()
    if windows_run:
        final_states = [ref for ref in rounds.finish() if ref is not None]
        rt.wait(final_states, num_returns=len(final_states))
    rt.metrics.counter("stream.records_total", total_records, job=job_id)
    latency = rt.metrics.histogram(RECORD_LATENCY_METRIC, job=job_id)
    return StreamingJobResult(
        job_id=job_id,
        tenant=spec.tenant,
        records=total_records,
        windows=windows_run,
        backpressure_stalls=controller.stalls,
        peak_inflight_windows=controller.peak_inflight,
        watermark=max(source.watermark(rt.now) for source in sources),
        latency=latency.snapshot() if latency.count else {},
    )


def _track_visibility(
    rt: Runtime,
    controller: BackpressureController,
    *,
    window_index: int,
    aggregate_ref: ObjectRef,
    event_times: np.ndarray,
    begin_seq: Optional[int],
    job_id: Optional[str],
    tenant: str,
) -> None:
    """Arm the on-ready hook that stamps record latencies when the
    window's aggregate becomes visible."""

    def on_visible(_oid: Any, error: Optional[BaseException]) -> None:
        controller.mark_visible(window_index)
        if error is not None:
            return
        visible_at = rt.env.now
        window_hist = Histogram("window_latency")
        for event_time in event_times.tolist():
            latency = visible_at - event_time
            rt.metrics.observe(RECORD_LATENCY_METRIC, latency, job=job_id)
            rt.metrics.observe(TENANT_LATENCY_METRIC, latency, job=tenant)
            window_hist.record(latency)
        rt.bus.emit(
            "stream.agg.end",
            job=job_id,
            cause=begin_seq,
            window=window_index,
            records=window_hist.count,
            latency_p50=window_hist.p50,
            latency_p99=window_hist.p99,
            latency_p999=window_hist.p999,
        )

    rt.on_ready(aggregate_ref, on_visible)


def streaming_job_runner(manager: Any, job: Any) -> StreamingJobResult:
    """The :func:`repro.jobs.register_job_runner` body for ``"streaming"``
    jobs: runs inside the job's labeled subdriver."""
    return run_streaming_job(manager.runtime, job.spec, job_id=job.job_id)
