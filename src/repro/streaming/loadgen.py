"""The open-loop multi-tenant load generator.

Builds fleets of streaming jobs -- one per tenant by default, each fed
by Poisson sources whose per-tenant rates are jittered deterministically
around a base rate -- and runs them through the existing
:class:`~repro.jobs.manager.JobManager`: every job passes admission
control, registers for weighted fair sharing, and runs as a labeled
subdriver.  Because each source's arrival timeline is pre-drawn from the
seed (open loop), the offered load is identical whatever the cluster
does with it; record latency is where congestion surfaces.

:func:`run_open_loop` returns an :class:`OpenLoopReport` with exact
global and per-tenant latency percentiles (p50/p99/p999) pulled from the
runtime's metric histograms -- the numbers the obs report's streaming
section and ``bench_streaming_shuffle`` print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.rng import named_rng, register_stream
from repro.common.units import GIB, MIB
from repro.futures import Runtime, RuntimeConfig
from repro.jobs.manager import JobManager
from repro.jobs.spec import (
    Job,
    JobSpec,
    JobState,
    StreamSpec,
    TenantQuota,
    TenantSpec,
)
from repro.streaming.job import RECORD_LATENCY_METRIC, TENANT_LATENCY_METRIC

#: Per-tenant rate jitter draws (registered once; split per tenant index).
LOADGEN_STREAM = "streaming/loadgen"
register_stream(LOADGEN_STREAM, "streaming", "loadgen")


def streaming_node_spec() -> NodeSpec:
    """The homogeneous node shape streaming runs build clusters from
    (same scale as the chaos harness nodes: small store, modest I/O)."""
    return NodeSpec(
        name="stream-node",
        cores=4,
        memory_bytes=8 * GIB,
        object_store_bytes=256 * MIB,
        disk=DiskSpec(bandwidth_bytes_per_sec=200e6, seek_latency_s=5e-3),
        nic=NicSpec(bandwidth_bytes_per_sec=125e6),
    )


def streaming_tenants(
    count: int, *, max_concurrent_jobs: int = 2
) -> List[TenantSpec]:
    """Equal-weight tenants sized for one long-lived stream each."""
    quota = TenantQuota(max_concurrent_jobs=max_concurrent_jobs)
    return [
        TenantSpec(name=f"stream-tenant-{i:03d}", weight=1.0, quota=quota)
        for i in range(count)
    ]


def open_loop_workload(
    seed: int,
    num_tenants: int,
    *,
    rate_hz: float = 1.5,
    rate_jitter: float = 0.5,
    duration_s: float = 30.0,
    window_s: float = 6.0,
    keys: int = 16,
    bytes_per_record: int = 64,
    num_sources: int = 1,
    num_reduces: int = 2,
    max_inflight_windows: int = 2,
    backpressure: bool = True,
) -> Tuple[List[TenantSpec], List[JobSpec]]:
    """One streaming job per tenant, rates jittered deterministically.

    ``rate_jitter`` spreads tenant rates uniformly over
    ``rate_hz * [1 - jitter, 1 + jitter]`` so the fleet is heterogeneous
    but exactly reproducible from ``seed``.
    """
    if not 0 <= rate_jitter < 1:
        raise ValueError("rate_jitter must be in [0, 1)")
    tenants = streaming_tenants(num_tenants)
    rng = named_rng(seed, LOADGEN_STREAM)
    factors = 1.0 + rate_jitter * (2.0 * rng.random(num_tenants) - 1.0)
    specs = [
        JobSpec(
            name=f"stream-{i:03d}",
            tenant=tenants[i].name,
            num_maps=num_sources,
            num_reduces=num_reduces,
            seed=seed + i,
            stream=StreamSpec(
                rate_hz=rate_hz * float(factors[i]),
                duration_s=duration_s,
                window_s=window_s,
                keys=keys,
                bytes_per_record=bytes_per_record,
                max_inflight_windows=max_inflight_windows,
                backpressure=backpressure,
            ),
        )
        for i in range(num_tenants)
    ]
    return tenants, specs


@dataclass
class OpenLoopReport:
    """What one open-loop run produced."""

    jobs: List[Job]
    #: Simulated makespan (last job terminal).
    duration: float
    #: ``runtime.stats()`` snapshot (includes ``store_peak_bytes``).
    stats: Dict[str, Any]
    #: Global record-latency summary (count/mean/.../p999).
    latency: Dict[str, float]
    #: Exact per-tenant latency summaries, keyed by tenant name.
    tenant_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Total source->visible records across the fleet.
    records: int = 0
    #: Total backpressure stalls across the fleet.
    backpressure_stalls: int = 0
    #: Largest in-flight window count any job observed.
    peak_inflight_windows: int = 0

    @property
    def all_done(self) -> bool:
        """True when every streaming job finished successfully."""
        return all(job.state is JobState.DONE for job in self.jobs)


def summarize_latency(rt: Runtime) -> Tuple[Dict[str, float], Dict[str, Dict[str, float]]]:
    """(global, per-tenant) record-latency summaries from the runtime's
    metric histograms (exact percentiles, not merged snapshots)."""
    global_hist = rt.metrics.histogram(RECORD_LATENCY_METRIC)
    per_tenant: Dict[str, Dict[str, float]] = {}
    snapshot = rt.metrics.snapshot()["histograms"]
    prefix = f"{TENANT_LATENCY_METRIC}[job="
    for key, summary in snapshot.items():
        if key.startswith(prefix):
            per_tenant[key[len(prefix):-1]] = summary
    return (
        global_hist.snapshot() if global_hist.count else {},
        per_tenant,
    )


def run_open_loop(
    specs: List[JobSpec],
    tenants: List[TenantSpec],
    *,
    num_nodes: int = 4,
    slots_per_core: float = 1.0,
    config: Optional[RuntimeConfig] = None,
    runtime: Optional[Runtime] = None,
) -> OpenLoopReport:
    """Run an open-loop fleet through a fresh cluster (blocking).

    Submits every spec through admission, drives the manager until all
    jobs are terminal, and summarises latency from the metric registry.
    Pass ``runtime`` to reuse an existing (un-run) cluster.
    """
    rt = runtime
    if rt is None:
        rt = Runtime.create(
            streaming_node_spec(), num_nodes, config=config or RuntimeConfig()
        )
    manager = JobManager(rt, slots_per_core=slots_per_core)
    for tenant in tenants:
        manager.add_tenant(tenant)
    for spec in specs:
        manager.submit(spec)
    jobs = manager.run()
    duration = rt.now
    rt.env.run()  # quiesce trailing visibility callbacks
    latency, tenant_latency = summarize_latency(rt)
    results = [job.output for job in jobs if job.output is not None]
    return OpenLoopReport(
        jobs=jobs,
        duration=duration,
        stats=rt.stats(),
        latency=latency,
        tenant_latency=tenant_latency,
        records=sum(r.records for r in results),
        backpressure_stalls=sum(r.backpressure_stalls for r in results),
        peak_inflight_windows=max(
            (r.peak_inflight_windows for r in results), default=0
        ),
    )
