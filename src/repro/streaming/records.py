"""The streaming data model: keyed records, batches, and windows.

A streaming job's unit of transfer is the :class:`RecordBatch` -- the
records one source contributed to one tumbling window, stored as
parallel numpy arrays (keys and event times) with a declared byte size
so the simulated object store charges realistic footprints.  A
:class:`Window` is pure event-time bookkeeping: the half-open interval
``[start, end)`` at index ``index`` under a fixed window width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Window:
    """One tumbling event-time window: ``[start, end)``."""

    index: int
    start: float
    end: float

    def contains(self, event_time: float) -> bool:
        """True when ``event_time`` falls inside this window."""
        return self.start <= event_time < self.end


def window_of(event_time: float, window_s: float) -> Window:
    """The tumbling window an event time falls into."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    index = int(event_time // window_s)
    return Window(index, index * window_s, (index + 1) * window_s)


class RecordBatch:
    """Records one source contributed to one window.

    ``keys`` and ``event_times`` are parallel arrays; ``size_bytes``
    declares the simulated store footprint (records x bytes-per-record),
    which :func:`repro.futures.sizing.size_of` honours.
    """

    __slots__ = ("keys", "event_times", "size_bytes")

    def __init__(
        self,
        keys: np.ndarray,
        event_times: np.ndarray,
        bytes_per_record: int,
    ) -> None:
        if len(keys) != len(event_times):
            raise ValueError("keys and event_times must be parallel arrays")
        self.keys = np.asarray(keys, dtype=np.int64)
        self.event_times = np.asarray(event_times, dtype=np.float64)
        self.size_bytes = max(1, len(self.keys) * int(bytes_per_record))

    def __len__(self) -> int:
        return len(self.keys)

    @staticmethod
    def empty(bytes_per_record: int) -> "RecordBatch":
        """A zero-record batch (a source that sat out the window)."""
        return RecordBatch(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            bytes_per_record,
        )

    def partition(self, num_partitions: int) -> Sequence["RecordBatch"]:
        """Split by ``key % num_partitions`` (the repartition map side)."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        per_record = self.size_bytes // max(1, len(self))
        assignments = self.keys % num_partitions
        return [
            RecordBatch(
                self.keys[assignments == p],
                self.event_times[assignments == p],
                per_record,
            )
            for p in range(num_partitions)
        ]

    def __repr__(self) -> str:
        return f"<RecordBatch n={len(self)} bytes={self.size_bytes}>"
