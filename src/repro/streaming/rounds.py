"""The round driver: incremental stateful shuffle over an open stream.

:func:`repro.shuffle.streaming_shuffle` drives a *finite, known-ahead*
sequence of rounds; a streaming job discovers its rounds one window at a
time and must keep running between them.  :class:`RoundDriver` is the
generalisation: the caller submits rounds incrementally
(:meth:`submit_round`), reducers carry state across rounds exactly as in
Listing 2, and the in-flight round bound is a parameter instead of a
hard-coded one.

Parity contract: with ``max_inflight_rounds=1`` the driver performs the
*identical* sequence of runtime calls as ``streaming_shuffle`` for the
same inputs -- submit the round's maps, wait on every previous-round
reducer state, submit the reduces, fire the hook -- so the aggregation
app's Fig-5 curve is bit-for-bit unchanged after re-basing on it
(``tests/test_streaming.py`` pins this with a golden comparison).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import unwrap_single_return

RoundHook = Callable[[int, List[ObjectRef]], None]


class RoundDriver:
    """Incremental round-based shuffle with stateful reducers.

    ``reduce_fn(state, *blocks)`` folds one round's blocks into the
    reducer's state (``None`` on the first round).  ``on_round`` fires
    after each round's reduce tasks are submitted with that round's
    state refs -- where online aggregation hooks in its asynchronous
    partial-aggregate task.

    ``max_inflight_rounds`` bounds rounds whose reducers may still be
    executing: submitting round ``r`` first blocks until round
    ``r - max_inflight_rounds`` has fully reduced.  The bound of 1
    reproduces ``streaming_shuffle``'s one-round throttle.
    """

    def __init__(
        self,
        rt: Runtime,
        map_fn: Callable[[Any], List[Any]],
        reduce_fn: Callable[..., Any],
        num_reduces: int,
        *,
        on_round: Optional[RoundHook] = None,
        map_options: Optional[Dict[str, Any]] = None,
        reduce_options: Optional[Dict[str, Any]] = None,
        max_inflight_rounds: int = 1,
    ) -> None:
        if num_reduces < 1:
            raise ValueError("num_reduces must be >= 1")
        if max_inflight_rounds < 1:
            raise ValueError("max_inflight_rounds must be >= 1")
        self.rt = rt
        self.num_reduces = num_reduces
        self.on_round = on_round
        self.max_inflight_rounds = max_inflight_rounds
        self._map_task = rt.remote(
            unwrap_single_return(map_fn, num_reduces),
            num_returns=num_reduces,
            **(map_options or {}),
        )
        self._reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))
        self.reduce_states: List[Optional[ObjectRef]] = [None] * num_reduces
        #: State refs of rounds possibly still reducing, oldest first.
        self._pending: Deque[List[Optional[ObjectRef]]] = deque()
        self.rounds_submitted = 0

    def submit_round(self, round_inputs: Sequence[Any]) -> List[ObjectRef]:
        """Run one round over ``round_inputs`` (one element per map task);
        returns the round's reducer-state refs.

        Ordering matches ``streaming_shuffle`` exactly: maps are
        submitted *before* throttling on earlier rounds, so the next
        round's map work overlaps the previous round's reduces.
        """
        rt = self.rt
        map_results = [self._map_task.remote(part) for part in round_inputs]
        if self.num_reduces == 1:
            map_results = [[ref] for ref in map_results]
        while len(self._pending) >= self.max_inflight_rounds:
            live = [ref for ref in self._pending.popleft() if ref is not None]
            if live:
                rt.wait(live, num_returns=len(live))
        self.reduce_states = [
            self._reduce_task.remote(
                self.reduce_states[r], *[column[r] for column in map_results]
            )
            for r in range(self.num_reduces)
        ]
        self._pending.append(list(self.reduce_states))
        rnd = self.rounds_submitted
        self.rounds_submitted += 1
        if self.on_round is not None:
            self.on_round(rnd, list(self.reduce_states))
        return list(self.reduce_states)  # type: ignore[return-value]

    def finish(self) -> List[ObjectRef]:
        """Final reducer-state refs after the last submitted round
        (at least one round must have been submitted)."""
        if self.rounds_submitted == 0:
            raise ValueError("no rounds were submitted")
        return list(self.reduce_states)  # type: ignore[return-value]


def drive_rounds(
    rt: Runtime,
    input_rounds: Sequence[Sequence[Any]],
    map_fn: Callable[[Any], List[Any]],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    on_round: Optional[RoundHook] = None,
    map_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
    max_inflight_rounds: int = 1,
) -> List[ObjectRef]:
    """Drive a known-ahead sequence of rounds (the
    ``streaming_shuffle`` calling convention on :class:`RoundDriver`);
    returns the final reducer-state refs."""
    if not input_rounds:
        raise ValueError("streaming shuffle needs at least one round")
    driver = RoundDriver(
        rt,
        map_fn,
        reduce_fn,
        num_reduces,
        on_round=on_round,
        map_options=map_options,
        reduce_options=reduce_options,
        max_inflight_rounds=max_inflight_rounds,
    )
    for round_inputs in input_rounds:
        driver.submit_round(round_inputs)
    return driver.finish()
