"""End-to-end backpressure: bounded in-flight windows, throttled sources.

A window is *in flight* from the moment it closes (its repartition round
is submitted) until its aggregate becomes visible.  The
:class:`BackpressureController` bounds that count: before a streaming
job closes another window it must :meth:`admit`, which blocks -- by
waiting on the *oldest* in-flight window's aggregate ref -- while the
bound is hit or the data plane's allocation queues are backed up.  Each
stall is published as a ``stream.backpressure`` bus event carrying the
reason (``inflight_windows`` or ``allocation_backlog``), so a report can
show exactly when and why the source was throttled.

Because the load is open-loop, throttling never deletes work: records
keep arriving on their pre-drawn timeline and simply wait in the stalled
window, paying the delay as record latency.  That is the trade the tier
makes -- bounded store footprint for visible tail latency -- and the
bench's two arms measure both sides of it.
"""

from __future__ import annotations

from typing import Deque, List, Optional, Set

from collections import deque

from repro.futures import ObjectRef, Runtime


class BackpressureController:
    """Bounds closed-but-not-yet-visible windows for one streaming job."""

    def __init__(
        self,
        rt: Runtime,
        *,
        max_inflight_windows: int,
        backlog_limit_bytes: Optional[int] = None,
        job_id: Optional[str] = None,
        tenant: Optional[str] = None,
        enabled: bool = True,
    ) -> None:
        if max_inflight_windows < 1:
            raise ValueError("max_inflight_windows must be >= 1")
        self.rt = rt
        self.max_inflight_windows = max_inflight_windows
        self.backlog_limit_bytes = backlog_limit_bytes
        self.job_id = job_id
        #: Owning tenant, stamped onto every stall event so per-tenant
        #: stall series need no job -> tenant join downstream.
        self.tenant = tenant
        self.enabled = enabled
        #: (window index, aggregate ref), oldest first.
        self._inflight: Deque[tuple] = deque()
        self._visible: Set[int] = set()
        #: Largest in-flight count ever observed (the invariant tests pin
        #: ``peak_inflight <= max_inflight_windows`` when enabled).
        self.peak_inflight = 0
        #: Total admit-side stalls (also counted in runtime metrics).
        self.stalls = 0

    @property
    def inflight(self) -> int:
        """Windows currently closed but not aggregate-visible."""
        self._prune()
        return len(self._inflight)

    def _prune(self) -> None:
        while self._inflight and self._inflight[0][0] in self._visible:
            self._visible.discard(self._inflight[0][0])
            self._inflight.popleft()

    def _over_backlog(self) -> bool:
        return (
            self.backlog_limit_bytes is not None
            and self.rt.allocation_backlog() > self.backlog_limit_bytes
        )

    def admit(self) -> None:
        """Block until another window may close (no-op when disabled).

        Stalls while the in-flight bound is reached, or while the
        allocation queues exceed the backlog limit and at least one
        window is in flight to wait on.
        """
        if not self.enabled:
            return
        rt = self.rt
        while True:
            self._prune()
            if len(self._inflight) >= self.max_inflight_windows:
                reason = "inflight_windows"
            elif self._inflight and self._over_backlog():
                reason = "allocation_backlog"
            else:
                return
            self.stalls += 1
            rt.bus.emit(
                "stream.backpressure",
                job=self.job_id,
                reason=reason,
                tenant=self.tenant,
                inflight=len(self._inflight),
                backlog_bytes=rt.allocation_backlog(),
            )
            rt.metrics.counter("stream.backpressure_stalls", job=self.job_id)
            oldest_ref: ObjectRef = self._inflight[0][1]
            rt.wait([oldest_ref], num_returns=1)

    def track(self, window_index: int, aggregate_ref: ObjectRef) -> None:
        """Register a just-closed window; call right after submitting its
        aggregate."""
        self._prune()
        self._inflight.append((window_index, aggregate_ref))
        self.peak_inflight = max(self.peak_inflight, len(self._inflight))

    def mark_visible(self, window_index: int) -> None:
        """Note a window's aggregate became visible (from ``on_ready``)."""
        self._visible.add(window_index)

    def drain(self) -> None:
        """Block until every tracked window's aggregate is computed."""
        self._prune()
        refs: List[ObjectRef] = [ref for _, ref in self._inflight]
        if refs:
            self.rt.wait(refs, num_returns=len(refs))
        self._prune()

    def __repr__(self) -> str:
        return (
            f"<BackpressureController inflight={self.inflight}/"
            f"{self.max_inflight_windows} stalls={self.stalls} "
            f"{'on' if self.enabled else 'off'}>"
        )
