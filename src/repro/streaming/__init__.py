"""The streaming shuffle tier: continuous windowed repartition.

The paper's online-aggregation workload (§3.2.1) shows that
shuffle-as-a-library can surface partial results long before a job
finishes; this tier grows that seed into a continuous, multi-tenant
service in the shape ShuffleBench measures -- stream repartition +
aggregation judged by *record-latency percentiles*, not makespan:

- :mod:`repro.streaming.source` -- open-loop Poisson record sources
  with event-time watermarks, pre-drawn from the seed so offered load
  never reacts to system speed;
- :mod:`repro.streaming.rounds` -- :class:`RoundDriver`, the
  incremental generalisation of
  :func:`repro.shuffle.streaming_shuffle` (bit-for-bit identical at
  one in-flight round) that the aggregation app also re-bases on;
- :mod:`repro.streaming.backpressure` -- bounded in-flight windows
  with source throttling, published as ``stream.backpressure`` events;
- :mod:`repro.streaming.job` -- the long-lived job body: windows close
  at the watermark, repartition through the shuffle operators, and
  record source->window-close->aggregate-visible latency per record;
- :mod:`repro.streaming.loadgen` -- hundreds of tenants admitted
  through the :class:`~repro.jobs.admission.AdmissionController` and
  dispatched under fair share, reported as global + per-tenant
  p50/p99/p999.

Importing this package registers the ``"streaming"`` job runner with
the jobs control plane, so a :class:`~repro.jobs.spec.JobSpec` carrying
a :class:`~repro.jobs.spec.StreamSpec` dispatches here; the data-plane
core never imports this tier (enforced by ``tools/check_layering.py``),
keeping it optional and zero-cost when unused.

``python -m repro.streaming --smoke`` runs the CI gate; see
``docs/streaming.md`` for the full tour.
"""

from repro.jobs.manager import register_job_runner
from repro.streaming.backpressure import BackpressureController
from repro.streaming.job import (
    RECORD_LATENCY_METRIC,
    TENANT_LATENCY_METRIC,
    StreamingJobResult,
    run_streaming_job,
    streaming_job_runner,
)
from repro.streaming.loadgen import (
    OpenLoopReport,
    open_loop_workload,
    run_open_loop,
    streaming_node_spec,
    streaming_tenants,
    summarize_latency,
)
from repro.streaming.records import RecordBatch, Window, window_of
from repro.streaming.rounds import RoundDriver, drive_rounds
from repro.streaming.source import PoissonSource, make_sources

# A JobSpec with a StreamSpec arm dispatches to this tier's runner; the
# registration lives here so merely importing the tier wires it up.
register_job_runner("streaming", streaming_job_runner)

__all__ = [
    "BackpressureController",
    "OpenLoopReport",
    "PoissonSource",
    "RECORD_LATENCY_METRIC",
    "RecordBatch",
    "RoundDriver",
    "StreamingJobResult",
    "TENANT_LATENCY_METRIC",
    "Window",
    "drive_rounds",
    "make_sources",
    "open_loop_workload",
    "run_open_loop",
    "run_streaming_job",
    "streaming_job_runner",
    "streaming_node_spec",
    "streaming_tenants",
    "summarize_latency",
    "window_of",
]
