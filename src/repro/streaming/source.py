"""Open-loop Poisson record sources with event-time watermarks.

A :class:`PoissonSource` pre-draws its entire arrival timeline at
construction: exponential inter-arrival gaps at ``rate_hz`` until the
``duration_s`` horizon, each record carrying a Zipf-ish key.  That makes
the load *open-loop* in the queueing-theory sense -- arrival times are
fixed by the seed and never react to how fast the system drains, so any
slowdown downstream shows up as record latency rather than as a
politely reduced offered load.  (ShuffleBench measures its stream
workloads the same way.)

The source's *watermark* is the event time of the latest record at or
before the current simulated time; sources emit in event-time order, so
the watermark is exact, and once simulated time passes the horizon the
source is closed and its watermark is the horizon itself.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.rng import register_stream, seeded_rng
from repro.streaming.records import RecordBatch, window_of

#: The registered RNG stream for streaming arrival timelines; split
#: further per (job seed, source index).
STREAM_ARRIVAL_STREAM = "streaming/arrival"
register_stream(STREAM_ARRIVAL_STREAM, "streaming", "arrival")


class PoissonSource:
    """One unbounded-until-horizon keyed record source.

    ``seed`` and ``index`` pick an independent substream of the
    registered arrival stream, so a job's sources are mutually
    independent and exactly reproducible.
    """

    def __init__(
        self,
        *,
        seed: int,
        index: int,
        rate_hz: float,
        duration_s: float,
        keys: int,
        bytes_per_record: int,
    ) -> None:
        if rate_hz <= 0 or duration_s <= 0:
            raise ValueError("rate_hz and duration_s must be positive")
        self.index = index
        self.duration_s = float(duration_s)
        self.bytes_per_record = int(bytes_per_record)
        rng = seeded_rng(seed, "streaming", "arrival", index)
        # Pre-draw past the horizon, then truncate: the expected count is
        # rate*duration, and 4 sigma of headroom makes truncation the
        # overwhelmingly common case; top up in the rare tail.
        expect = rate_hz * duration_s
        draw = int(expect + 4 * np.sqrt(expect) + 8)
        times = np.cumsum(rng.exponential(1.0 / rate_hz, size=draw))
        while times.size and times[-1] < duration_s:  # pragma: no cover - rare tail
            times = np.concatenate(
                [times, times[-1] + np.cumsum(rng.exponential(1.0 / rate_hz, size=draw))]
            )
        self.arrival_times = times[times < duration_s]
        self.keys = rng.integers(0, int(keys), size=self.arrival_times.size)

    @property
    def num_records(self) -> int:
        """Records this source will emit before closing."""
        return int(self.arrival_times.size)

    def watermark(self, now: float) -> float:
        """Latest event time emitted at or before ``now`` (0.0 before the
        first record; the horizon once closed)."""
        if now >= self.duration_s:
            return self.duration_s
        emitted = self.arrival_times[self.arrival_times <= now]
        return float(emitted[-1]) if emitted.size else 0.0

    def closed(self, now: float) -> bool:
        """True once simulated time passed the horizon."""
        return now >= self.duration_s

    def num_windows(self, window_s: float) -> int:
        """Tumbling windows the horizon spans (the last may be partial)."""
        return window_of(self.duration_s - 1e-12, window_s).index + 1

    def batch_for(self, window_index: int, window_s: float) -> RecordBatch:
        """The records this source contributes to one tumbling window."""
        start = window_index * window_s
        end = start + window_s
        mask = (self.arrival_times >= start) & (self.arrival_times < end)
        return RecordBatch(
            self.keys[mask], self.arrival_times[mask], self.bytes_per_record
        )

    def __repr__(self) -> str:
        return (
            f"<PoissonSource #{self.index} n={self.num_records} "
            f"horizon={self.duration_s:g}s>"
        )


def make_sources(
    *,
    seed: int,
    num_sources: int,
    rate_hz: float,
    duration_s: float,
    keys: int,
    bytes_per_record: int,
) -> List[PoissonSource]:
    """Independent sources for one streaming job."""
    return [
        PoissonSource(
            seed=seed,
            index=i,
            rate_hz=rate_hz,
            duration_s=duration_s,
            keys=keys,
            bytes_per_record=bytes_per_record,
        )
        for i in range(num_sources)
    ]
