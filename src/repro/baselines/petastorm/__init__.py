"""Petastorm-style windowed shuffle buffer data loader (Fig 8 baseline)."""

from repro.baselines.petastorm.loader import (
    PetastormLoader,
    windowed_shuffle_order,
)

__all__ = ["PetastormLoader", "windowed_shuffle_order"]
