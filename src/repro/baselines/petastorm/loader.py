"""The Petastorm-style data loader (§5.2.2).

The design the paper critiques (shared with tf.data and the PyTorch
DataLoader): a single per-process reader streams the dataset *in storage
order*, decoding into a bounded in-memory buffer; "shuffling" draws
randomly from that window.  Consequences reproduced here:

- the shuffle window is tied to the buffer size: too large -> OOM, too
  small -> batches stay close to storage order (label-biased for our
  dataset), hurting convergence;
- the reader is one process decoding at parquet-ish rates, so when
  decode throughput is below the accelerator's consumption rate the GPU
  starves -- no distributed, multi-core shuffle is possible.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.common.errors import OutOfMemoryError
from repro.common.rng import seeded_rng
from repro.common.units import MB
from repro.futures import ObjectRef, Runtime
from repro.ml.dataset import TabularBlock


def windowed_shuffle_order(
    blocks: List[TabularBlock],
    window_records: int,
    rng: np.random.Generator,
    out_block_records: int,
) -> Iterator[TabularBlock]:
    """Stream ``blocks`` in order through a shuffle window.

    Classic reservoir-window shuffle: keep ``window_records`` rows
    buffered; each emitted row is drawn uniformly from the buffer and
    replaced by the next row of the stream.  Rows are emitted re-chunked
    into blocks of ``out_block_records``.
    """
    if window_records < 1 or out_block_records < 1:
        raise ValueError("window and block sizes must be >= 1")
    features = np.concatenate([b.features for b in blocks])
    labels = np.concatenate([b.labels for b in blocks])
    total = len(labels)
    window = min(window_records, total)
    buffer_idx = np.arange(window)
    next_row = window
    emitted: List[int] = []
    out_index = 0
    for _ in range(total):
        pick = int(rng.integers(0, len(buffer_idx)))
        emitted.append(int(buffer_idx[pick]))
        if next_row < total:
            buffer_idx[pick] = next_row
            next_row += 1
        else:
            buffer_idx = np.delete(buffer_idx, pick)
        if len(emitted) == out_block_records:
            rows = np.asarray(emitted)
            yield TabularBlock(
                features[rows], labels[rows],
                io_scale=blocks[0].io_scale, index=out_index,
            )
            emitted, out_index = [], out_index + 1
    if emitted:
        rows = np.asarray(emitted)
        yield TabularBlock(
            features[rows], labels[rows],
            io_scale=blocks[0].io_scale, index=out_index,
        )


class PetastormLoader:
    """Single-reader windowed-buffer loader over stored partitions."""

    def __init__(
        self,
        rt: Runtime,
        partition_refs: List[ObjectRef],
        window_bytes: int,
        buffer_budget_bytes: int,
        decode_throughput_bytes_per_sec: float = 250 * MB,
        seed: int = 0,
    ) -> None:
        if not partition_refs:
            raise ValueError("loader needs at least one partition")
        if window_bytes > buffer_budget_bytes:
            raise OutOfMemoryError(
                f"shuffle window ({window_bytes} B) exceeds the reader's "
                f"memory buffer ({buffer_budget_bytes} B)"
            )
        self.rt = rt
        self.partition_refs = list(partition_refs)
        self.window_bytes = window_bytes
        self.decode_throughput = decode_throughput_bytes_per_sec
        self.seed = seed
        # The single reader process is a global serialisation point: the
        # decode chain continues across epochs.
        self._token: object = None

    def submit_epoch(self, epoch: int) -> List[ObjectRef]:
        """Chain single-threaded decode tasks over the partitions.

        Returns one ref per partition, in storage order.  The chaining
        token serialises the reads (one reader process); decode cost is
        charged per byte at parquet-decode rates.
        """
        decode_rate = self.decode_throughput

        def decode(_token, block: TabularBlock) -> TabularBlock:
            return block

        task = self.rt.remote(
            decode,
            compute=lambda ctx: ctx.output_bytes / decode_rate,
            node=self.rt.driver_node_id,  # the trainer's own reader process
        )
        refs: List[ObjectRef] = []
        for ref in self.partition_refs:
            out = task.remote(self._token, ref)
            refs.append(out)
            self._token = out
        return refs

    def window_records(self, record_bytes: int) -> int:
        """The shuffle window expressed in records."""
        return max(1, self.window_bytes // record_bytes)

    def epoch_rng(self, epoch: int) -> np.random.Generator:
        """The deterministic window-shuffle RNG for one epoch."""
        return seeded_rng(self.seed, "window", epoch)
