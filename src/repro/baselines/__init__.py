"""Baseline systems the paper compares against, built on the same
simulated cluster substrate:

- :mod:`repro.baselines.spark` -- a monolithic BSP MapReduce engine with
  an external shuffle service, in native (pull) and push-based (Magnet /
  "Spark-push") modes, with optional compression.
- :mod:`repro.baselines.dask` -- a Dask-style futures backend with
  per-executor object stores (process and thread modes) for the Fig 6
  architecture comparison.
- :mod:`repro.baselines.petastorm` -- a Petastorm-style windowed shuffle
  buffer data loader for the Fig 8 ML comparison.
"""
