"""A monolithic Spark-like shuffle engine (the Fig 4 baseline)."""

from repro.baselines.spark.engine import (
    SparkConfig,
    SparkResult,
    SparkSortJob,
    run_spark_sort,
)

__all__ = ["SparkConfig", "SparkResult", "SparkSortJob", "run_spark_sort"]
