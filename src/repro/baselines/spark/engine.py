"""A monolithic BSP shuffle engine in the architectural style of Spark.

This is the comparison system for Fig 4: shuffle coordination baked into
the framework, an external shuffle service (ESS) per node serving map
output blocks from disk, strict stage barriers, and no pipelining between
the map and reduce stages.

Two modes reproduce the two Spark baselines of §5.1.4:

- *native* -- map tasks write one sorted, partitioned spill file each;
  reduce tasks pull their block out of every map file, paying one random
  disk read per (map, reduce) pair.  At M x R block counts this hits the
  IOPS wall, which is Spark's classic small-I/O problem.
- *push-based* ("Spark-push", i.e. Magnet) -- map outputs are
  additionally pushed to the reducer's node during the map stage and
  merged into per-reducer files, so the reduce stage reads sequentially.
  The cost is double write amplification: both the un-merged map files
  and the merged files hit disk (§5.1.4: "Spark-push also spills the
  un-merged map outputs").

Compression shrinks intermediate bytes by ``compression_ratio`` at extra
CPU cost; the paper runs the 100 TB comparison with Spark compression on
because Spark is unstable without it at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.cluster import Cluster, ClusterSpec
from repro.common.units import MB
from repro.metrics.core import Counters
from repro.simcore import Environment, Event


@dataclass
class SparkConfig:
    """Engine parameters (mirroring the runtime config of the ES side)."""

    push_based: bool = False
    compression: bool = False
    #: Compressed bytes = ratio x raw bytes ("reducing total bytes spilled
    #: by 40%" -> ratio 0.6).
    compression_ratio: float = 0.6
    #: Extra CPU seconds per raw byte for compress+decompress, on top of
    #: the base processing cost.
    compression_cpu_bytes_per_sec: float = 400 * MB
    cpu_throughput_bytes_per_sec: float = 500 * MB
    #: Merging pre-sorted runs (the reduce side) is cheaper than sorting;
    #: matches the Exoshuffle side's MERGE_THROUGHPUT for a fair fight.
    merge_throughput_bytes_per_sec: float = 1500 * MB
    task_overhead_s: float = 2e-3
    #: Push-mode merge granularity: pushed blocks accumulate and are
    #: merged/written in batches of roughly this size per node.
    push_merge_batch_bytes: int = 64 * MB

    #: Push-mode merged files are appended per-reducer in chunks of about
    #: this size; on HDD each append to a different reducer file pays a
    #: seek.  (Magnet's merged-file write pattern; one of the costs that
    #: keeps Spark-push above ES-push*, §5.1.4.)
    push_append_chunk_bytes: int = 2 * MB

    #: Fraction of blocks successfully merged in push mode.  Magnet's
    #: push is best-effort: blocks that miss the merge window are fetched
    #: the native way (random reads) by reducers.  ~0.85-0.95 in
    #: production per the Magnet paper.
    push_merge_ratio: float = 0.85

    #: Uniform JVM tax on compute (serialisation, object churn, GC):
    #: every CPU second costs (1 + fraction) simulated seconds.  The
    #: Exoshuffle side does not pay this -- Ray's data plane is C++ and
    #: the sort kernels are native.
    jvm_overhead_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0 < self.compression_ratio <= 1:
            raise ValueError("compression ratio must be in (0, 1]")
        if self.cpu_throughput_bytes_per_sec <= 0:
            raise ValueError("cpu throughput must be positive")
        if not 0 <= self.push_merge_ratio <= 1:
            raise ValueError("push merge ratio must be in [0, 1]")
        if self.jvm_overhead_fraction < 0:
            raise ValueError("JVM overhead must be non-negative")


@dataclass
class SparkResult:
    mode: str
    num_partitions: int
    total_bytes: int
    sort_seconds: float
    stats: Dict[str, float] = field(default_factory=dict)


class SparkSortJob:
    """One TeraSort execution on the monolithic engine."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SparkConfig] = None,
        num_partitions: int = 16,
        partition_bytes: int = 64 * MB,
        num_reduces: Optional[int] = None,
        output_to_disk: bool = True,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or SparkConfig()
        self.num_partitions = num_partitions
        self.partition_bytes = partition_bytes
        self.num_reduces = num_reduces or num_partitions
        self.output_to_disk = output_to_disk
        self.counters = Counters()
        self.nodes = cluster.nodes
        self._map_home = [
            self.nodes[m % len(self.nodes)] for m in range(num_partitions)
        ]
        self._reduce_home = [
            self.nodes[r % len(self.nodes)] for r in range(self.num_reduces)
        ]
        # Pushed-but-unmerged bytes pending merge, per node.
        self._push_backlog: Dict[object, int] = {node.node_id: 0 for node in self.nodes}
        self._merge_events: List[Event] = []

    # -- cost helpers -------------------------------------------------------
    def _cpu_seconds(
        self,
        nbytes: float,
        compressed_bytes: float = 0.0,
        throughput: Optional[float] = None,
    ) -> float:
        rate = throughput or self.config.cpu_throughput_bytes_per_sec
        seconds = nbytes / rate
        if self.config.compression and compressed_bytes:
            seconds += compressed_bytes / self.config.compression_cpu_bytes_per_sec
        return seconds * (1.0 + self.config.jvm_overhead_fraction)

    @property
    def _intermediate_ratio(self) -> float:
        return self.config.compression_ratio if self.config.compression else 1.0

    # -- stages -----------------------------------------------------------------
    def _map_task(self, m: int) -> Iterator[Event]:
        node = self._map_home[m]
        core = node.cpu.request()
        yield core
        try:
            yield self.env.timeout(self.config.task_overhead_s)
            # Input scan.
            yield node.disk_read(self.partition_bytes, sequential=True)
            self.counters.add("disk_bytes_read", self.partition_bytes)
            # Partition + sort (+ compress).
            out_bytes = int(self.partition_bytes * self._intermediate_ratio)
            yield self.env.timeout(
                self._cpu_seconds(2 * self.partition_bytes, out_bytes)
            )
            # One sorted, partitioned spill file per map task.
            yield node.disk_write(out_bytes, sequential=True)
            self.counters.add("disk_bytes_written", out_bytes)
            self.counters.add("shuffle_bytes_written", out_bytes)
        finally:
            core.cancel()
        if self.config.push_based:
            yield from self._push_blocks(node, out_bytes)

    def _push_blocks(self, src_node, out_bytes: int) -> Iterator[Event]:
        """Push this map's output to each reducer-home node and enqueue
        reducer-side merges (overlapped with the map stage).

        The push source is the just-written shuffle file: the ESS reads
        it back from disk before sending (Magnet pushes from the map
        output file, not from executor memory).
        """
        yield src_node.disk_read(out_bytes, sequential=True)
        self.counters.add("disk_bytes_read", out_bytes)
        per_node_bytes: Dict[object, int] = {}
        for r in range(self.num_reduces):
            home = self._reduce_home[r].node_id
            per_node_bytes[home] = per_node_bytes.get(home, 0) + (
                out_bytes // self.num_reduces
            )
        sends = []
        for node_id, nbytes in per_node_bytes.items():
            sends.append(self.cluster.send(src_node.node_id, node_id, nbytes))
            self._push_backlog[node_id] += nbytes
        yield self.env.all_of(sends)
        for node_id in per_node_bytes:
            self._maybe_flush_merge(node_id)

    def _maybe_flush_merge(self, node_id, force: bool = False) -> None:
        backlog = self._push_backlog[node_id]
        if backlog == 0:
            return
        if not force and backlog < self.config.push_merge_batch_bytes:
            return
        self._push_backlog[node_id] = 0
        node = self.cluster.node(node_id)
        # Merged write on the reducer side: the second copy of every
        # intermediate byte in push mode, appended across this node's
        # per-reducer merged files in chunks -- each chunk switches files
        # and pays a seek.
        chunks = max(1, backlog // self.config.push_append_chunk_bytes)
        write = node.disk.transfer(
            backlog, latency=chunks * node.disk.per_op_latency
        )
        self.counters.add("disk_bytes_written", backlog)
        self.counters.add("merged_bytes_written", backlog)
        self._merge_events.append(write)

    def _reduce_task(self, r: int) -> Iterator[Event]:
        node = self._reduce_home[r]
        core = node.cpu.request()
        yield core
        try:
            yield self.env.timeout(self.config.task_overhead_s)
            raw_reduce_bytes = (
                self.num_partitions * self.partition_bytes
            ) // self.num_reduces
            fetched = int(raw_reduce_bytes * self._intermediate_ratio)
            if self.config.push_based:
                # One read of the pre-merged per-reducer file, plus
                # native-style random fetches for the blocks that missed
                # the best-effort merge window.
                merged_part = int(fetched * self.config.push_merge_ratio)
                yield node.disk_read(merged_part, sequential=False)
                self.counters.add("disk_bytes_read", merged_part)
                missed_maps = int(
                    self.num_partitions * (1 - self.config.push_merge_ratio)
                )
                block = max(1, fetched // self.num_partitions)
                for m in range(missed_maps):
                    src = self._map_home[m]
                    yield src.disk_read(block, sequential=False)
                    self.counters.add("disk_bytes_read", block)
                    if src.node_id != node.node_id:
                        yield self.cluster.send(src.node_id, node.node_id, block)
            else:
                # One random read per map output file, via the source ESS.
                block = max(1, fetched // self.num_partitions)
                for m in range(self.num_partitions):
                    src = self._map_home[m]
                    yield src.disk_read(block, sequential=False)
                    self.counters.add("disk_bytes_read", block)
                    if src.node_id != node.node_id:
                        yield self.cluster.send(
                            src.node_id, node.node_id, block
                        )
            # Merge of pre-sorted runs (+ decompress).
            yield self.env.timeout(
                self._cpu_seconds(
                    2 * raw_reduce_bytes,
                    fetched,
                    throughput=self.config.merge_throughput_bytes_per_sec,
                )
            )
            if self.output_to_disk:
                yield node.disk_write(raw_reduce_bytes, sequential=True)
                self.counters.add("disk_bytes_written", raw_reduce_bytes)
        finally:
            core.cancel()

    # -- orchestration ------------------------------------------------------
    def _job(self) -> Iterator[Event]:
        map_stage = [
            self.env.process(self._map_task(m), name=f"spark-map-{m}")
            for m in range(self.num_partitions)
        ]
        yield self.env.all_of(map_stage)
        if self.config.push_based:
            for node in self.nodes:
                self._maybe_flush_merge(node.node_id, force=True)
            if self._merge_events:
                yield self.env.all_of(self._merge_events)
        # Stage barrier: reducers start only now (no pipelining across the
        # boundary -- the monolithic weakness §2.2 describes).
        reduce_stage = [
            self.env.process(self._reduce_task(r), name=f"spark-reduce-{r}")
            for r in range(self.num_reduces)
        ]
        yield self.env.all_of(reduce_stage)

    def run(self) -> SparkResult:
        """Execute the job to completion; returns timing and I/O stats."""
        start = self.env.now
        done = self.env.process(self._job(), name="spark-job")
        self.env.run_until_event(done)
        mode = "spark-push" if self.config.push_based else "spark"
        return SparkResult(
            mode=mode,
            num_partitions=self.num_partitions,
            total_bytes=self.num_partitions * self.partition_bytes,
            sort_seconds=self.env.now - start,
            stats=self.counters.as_dict(),
        )


def run_spark_sort(
    spec: ClusterSpec,
    num_partitions: int,
    partition_bytes: int,
    config: Optional[SparkConfig] = None,
    output_to_disk: bool = True,
) -> SparkResult:
    """Convenience: fresh cluster, one sort, results."""
    env = Environment()
    cluster = Cluster(env, spec)
    job = SparkSortJob(
        cluster,
        config=config,
        num_partitions=num_partitions,
        partition_bytes=partition_bytes,
        output_to_disk=output_to_disk,
    )
    return job.run()
