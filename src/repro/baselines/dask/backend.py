"""A Dask-style single-node futures backend (the §5.3.1 comparison).

Dask and Ray are both distributed-futures systems; the architectural
difference Fig 6 isolates is the *object store*:

- Dask keeps objects in executor memory.  With **multiprocessing**,
  every cross-worker dependency is serialised and copied between process
  heaps -- extra CPU time and, crucially, duplicated memory that drives
  large sorts out of memory.
- With **multithreading** objects are shared in one heap, but the Python
  GIL serialises the interpreter-bound fraction of every task, capping
  parallelism (the paper measures ~3x slower than Dask-on-Ray on small
  data).
- Dask-on-Ray (the shared-memory store) is modelled by running the same
  sort on :class:`repro.futures.Runtime` with a single fat node -- see
  the Fig 6 benchmark.

There is no spilling here: Dask's default worker behaviour under memory
pressure in this experiment is failure, which is what the paper observed
("Dask with multiprocessing fails due to high memory pressure").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.common.errors import OutOfMemoryError
from repro.common.units import GB, MB
from repro.metrics.core import Counters
from repro.simcore import BandwidthResource, Environment, Event, Resource


@dataclass
class DaskConfig:
    """One Dask deployment shape: N processes x M threads."""

    processes: int = 8
    threads_per_process: int = 4
    total_memory_bytes: int = 244 * GB
    #: Fraction of task compute that must hold the GIL (pure-Python
    #: bookkeeping around the numpy kernels).  Amdahl: with many threads,
    #: effective parallelism tends to 1/fraction.
    gil_serial_fraction: float = 0.1
    #: Serialisation + copy throughput between process heaps.
    copy_bandwidth_bytes_per_sec: float = 2 * GB
    sort_throughput_bytes_per_sec: float = 500 * MB
    merge_throughput_bytes_per_sec: float = 1500 * MB
    task_overhead_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.processes < 1 or self.threads_per_process < 1:
            raise ValueError("need at least 1 process and 1 thread")
        if not 0 <= self.gil_serial_fraction <= 1:
            raise ValueError("GIL fraction must be in [0, 1]")
        if self.total_memory_bytes <= 0:
            raise ValueError("memory must be positive")

    @property
    def memory_per_process(self) -> int:
        return self.total_memory_bytes // self.processes

    @property
    def label(self) -> str:
        return f"{self.processes}p x {self.threads_per_process}t"


@dataclass
class DaskResult:
    label: str
    data_bytes: int
    num_partitions: int
    seconds: Optional[float]  # None when the job died of OOM
    oom: bool
    peak_heap_bytes: int
    copied_bytes: int


class _Process:
    """One Dask worker process: thread slots, a GIL, a private heap."""

    def __init__(self, env: Environment, index: int, config: DaskConfig) -> None:
        self.index = index
        self.slots = Resource(env, config.threads_per_process, name=f"p{index}.slots")
        self.gil = Resource(env, 1, name=f"p{index}.gil")
        self.copier = BandwidthResource(
            env, config.copy_bandwidth_bytes_per_sec, name=f"p{index}.copier"
        )
        self.heap_used = 0
        self.heap_peak = 0
        self.limit = config.memory_per_process

    def charge(self, nbytes: int) -> None:
        self.heap_used += nbytes
        self.heap_peak = max(self.heap_peak, self.heap_used)
        if self.heap_used > self.limit:
            raise OutOfMemoryError(
                f"dask worker {self.index} exceeded its memory limit "
                f"({self.heap_used} > {self.limit} bytes)"
            )

    def release(self, nbytes: int) -> None:
        self.heap_used -= nbytes


class DaskSortJob:
    """A two-stage range-partition sort on the Dask-style backend."""

    def __init__(
        self,
        config: DaskConfig,
        data_bytes: int,
        num_partitions: int = 100,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        self.config = config
        self.data_bytes = data_bytes
        self.num_partitions = num_partitions
        self.env = Environment()
        self.procs = [
            _Process(self.env, i, config) for i in range(config.processes)
        ]
        self.counters = Counters()
        # block ownership: (stage, m, r) -> process index
        self._owner: Dict[Tuple[str, int, int], int] = {}

    # -- execution helpers ---------------------------------------------------
    def _compute(
        self, proc: _Process, nbytes: float, throughput: float
    ) -> Iterator[Event]:
        """Charge ``nbytes`` of compute with GIL semantics."""
        seconds = nbytes / throughput + self.config.task_overhead_s
        serial = seconds * self.config.gil_serial_fraction
        parallel = seconds - serial
        if parallel > 0:
            yield self.env.timeout(parallel)
        if serial > 0:
            gil_req = proc.gil.request()
            yield gil_req
            try:
                yield self.env.timeout(serial)
            finally:
                gil_req.cancel()

    def _map_task(self, m: int) -> Iterator[Event]:
        proc = self.procs[m % len(self.procs)]
        slot = proc.slots.request()
        yield slot
        try:
            part_bytes = self.data_bytes // self.num_partitions
            proc.charge(part_bytes)  # the loaded input partition
            yield from self._compute(
                proc, 2 * part_bytes, self.config.sort_throughput_bytes_per_sec
            )
            proc.charge(part_bytes)  # the partitioned map output blocks
            for r in range(self.num_partitions):
                self._owner[("map", m, r)] = proc.index
            proc.release(part_bytes)  # input released after the map
        finally:
            slot.cancel()

    def _reduce_task(self, r: int) -> Iterator[Event]:
        proc = self.procs[r % len(self.procs)]
        slot = proc.slots.request()
        yield slot
        try:
            block = self.data_bytes // (self.num_partitions * self.num_partitions)
            fetched = 0
            for m in range(self.num_partitions):
                owner = self.procs[self._owner[("map", m, r)]]
                if owner.index != proc.index:
                    # Serialise out of the owner, copy into our heap.
                    yield owner.copier.transfer(block)
                    proc.charge(block)
                    fetched += block
                    self.counters.add("copied_bytes", block)
                # Same-process blocks are shared (threads) at no cost.
            reduce_bytes = self.data_bytes // self.num_partitions
            yield from self._compute(
                proc, 2 * reduce_bytes, self.config.merge_throughput_bytes_per_sec
            )
            proc.charge(reduce_bytes)  # the sorted output partition
            proc.release(fetched)  # copied inputs dropped after the merge
        finally:
            slot.cancel()

    def _job(self) -> Iterator[Event]:
        maps = [
            self.env.process(self._map_task(m), name=f"dask-map-{m}")
            for m in range(self.num_partitions)
        ]
        yield self.env.all_of(maps)
        reduces = [
            self.env.process(self._reduce_task(r), name=f"dask-reduce-{r}")
            for r in range(self.num_partitions)
        ]
        yield self.env.all_of(reduces)

    def run(self) -> DaskResult:
        """Execute the sort; OOM is reported in the result, not raised."""
        job = self.env.process(self._job(), name="dask-sort")
        oom = False
        seconds: Optional[float] = None
        try:
            self.env.run_until_event(job)
            seconds = self.env.now
        except OutOfMemoryError:
            oom = True
        return DaskResult(
            label=self.config.label,
            data_bytes=self.data_bytes,
            num_partitions=self.num_partitions,
            seconds=seconds,
            oom=oom,
            peak_heap_bytes=sum(p.heap_peak for p in self.procs),
            copied_bytes=int(self.counters.get("copied_bytes")),
        )


def run_dask_sort(
    config: DaskConfig, data_bytes: int, num_partitions: int = 100
) -> DaskResult:
    """Convenience: build and run one Dask-style sort job."""
    return DaskSortJob(config, data_bytes, num_partitions).run()
