"""A Dask-style futures backend with per-executor object stores (Fig 6)."""

from repro.baselines.dask.backend import (
    DaskConfig,
    DaskResult,
    DaskSortJob,
    run_dask_sort,
)

__all__ = ["DaskConfig", "DaskResult", "DaskSortJob", "run_dask_sort"]
