"""Dask-style task graphs executed on the distributed-futures backend.

§5.3.1 runs "the same Dask task graph on Dask and Ray backends" -- the
scheduler-level portability that made Dask-on-Ray possible.  This package
provides that interface: a plain-dict task graph (key -> spec) compiled
onto :class:`repro.futures.Runtime`, dependencies becoming object refs.
"""

from repro.graphs.graph import GraphError, TaskGraph, execute_graph

__all__ = ["TaskGraph", "execute_graph", "GraphError"]
