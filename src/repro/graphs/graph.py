"""Task-graph representation and compilation to distributed futures.

The graph format follows Dask's convention: a dict mapping each key to
either a literal value or a tuple ``(callable, arg, arg, ...)`` where an
arg that is itself a graph key denotes a dependency.

    graph = TaskGraph({
        "a": 1,
        "b": (inc, "a"),
        "c": (add, "a", "b"),
    })
    value = execute_graph(rt, graph, "c")     # inside rt.run

Compilation walks the graph in topological order, submitting one task per
tuple node with dependency keys replaced by the producing tasks' object
refs -- after which scheduling, data movement, spilling, and recovery are
all the data plane's problem, exactly the division of labour the paper
advocates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Set, Tuple, Union

from repro.futures import ObjectRef, Runtime

GraphValue = Union[Any, Tuple]


class GraphError(ValueError):
    """Malformed graph: unknown key, cycle, or bad node."""


class TaskGraph:
    """An immutable snapshot of a Dask-style graph dict."""

    def __init__(self, nodes: Dict[str, GraphValue]) -> None:
        if not nodes:
            raise GraphError("empty graph")
        self.nodes = dict(nodes)
        self._order = self._topological_order()

    # -- structure -----------------------------------------------------------
    @staticmethod
    def _is_task(node: GraphValue) -> bool:
        return isinstance(node, tuple) and len(node) > 0 and callable(node[0])

    def dependencies(self, key: str) -> List[str]:
        """Graph keys this node's task consumes."""
        node = self.nodes[key]
        if not self._is_task(node):
            return []
        return [arg for arg in node[1:] if isinstance(arg, str) and arg in self.nodes]

    def _topological_order(self) -> List[str]:
        state: Dict[str, int] = {}  # 0 visiting, 1 done
        order: List[str] = []

        def visit(key: str, stack: Set[str]) -> None:
            if state.get(key) == 1:
                return
            if key in stack:
                raise GraphError(f"cycle through {key!r}")
            stack.add(key)
            for dep in self.dependencies(key):
                visit(dep, stack)
            stack.discard(key)
            state[key] = 1
            order.append(key)

        for key in self.nodes:
            visit(key, set())
        return order

    @property
    def order(self) -> List[str]:
        return list(self._order)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- compilation -------------------------------------------------------
    def submit(self, rt: Runtime) -> Dict[str, ObjectRef]:
        """Submit every task node; returns key -> ref (non-blocking).

        Literal nodes are passed by value into their consumers (and
        ``put`` into the store only if requested as targets).
        """
        refs: Dict[str, ObjectRef] = {}
        literals: Dict[str, Any] = {}
        for key in self._order:
            node = self.nodes[key]
            if not self._is_task(node):
                literals[key] = node
                continue
            fn: Callable = node[0]
            args = []
            for arg in node[1:]:
                if isinstance(arg, str) and arg in refs:
                    args.append(refs[arg])
                elif isinstance(arg, str) and arg in literals:
                    args.append(literals[arg])
                else:
                    args.append(arg)
            task = rt.remote(fn)
            refs[key] = task.remote(*args)
        # Materialise literal-only keys lazily on demand in execute_graph.
        self._literals = literals
        return refs


def execute_graph(
    rt: Runtime,
    graph: Union[TaskGraph, Dict[str, GraphValue]],
    targets: Union[str, Sequence[str]],
) -> Any:
    """Run the graph and fetch the target keys (blocking; driver-side)."""
    if not isinstance(graph, TaskGraph):
        graph = TaskGraph(graph)
    single = isinstance(targets, str)
    wanted = [targets] if single else list(targets)
    for key in wanted:
        if key not in graph.nodes:
            raise GraphError(f"unknown target {key!r}")
    refs = graph.submit(rt)
    values = []
    for key in wanted:
        if key in refs:
            values.append(rt.get(refs[key]))
        else:
            values.append(graph.nodes[key])
    return values[0] if single else values
