"""Developer tooling: line counting for the Table 1 comparison."""

from repro.tools.loc import count_loc, shuffle_library_loc

__all__ = ["count_loc", "shuffle_library_loc"]
