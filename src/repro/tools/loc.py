"""Lines-of-code counting for Table 1.

The paper counts the application-level code needed to express each
shuffle algorithm and compares it against its monolithic counterpart
(Spark's shuffle package, Riffle, Magnet).  We count the same way:
non-blank, non-comment source lines, excluding module docstrings --
the measure of *how much a developer writes*, not how much they
document.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List

import repro.shuffle as _shuffle_pkg

#: The algorithm -> implementation-files map used by the Table 1 bench.
SHUFFLE_ALGORITHM_FILES: Dict[str, List[str]] = {
    "simple": ["simple.py", "common.py"],
    "pre-shuffle merge": ["riffle.py", "common.py"],
    "push-based": ["magnet.py", "common.py"],
    "push-based with pipelining": ["push.py", "common.py"],
}

#: Monolithic-system LoC as reported in Table 1 of the paper.
PAPER_MONOLITHIC_LOC: Dict[str, int] = {
    "simple": 2600,  # org.apache.spark.shuffle
    "pre-shuffle merge": 4000,  # Riffle, as reported by Zhang et al.
    "push-based": 6700,  # Magnet, lines added in apache/spark#29808
    "push-based with pipelining": 6700,
}


def count_loc(path: Path) -> int:
    """Count non-blank, non-comment, non-docstring lines of one file."""
    source = path.read_text()
    code_lines = set()
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    prev_toktype = tokenize.INDENT
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            prev_toktype = token.type
            continue
        if token.type == tokenize.STRING and prev_toktype in (
            tokenize.INDENT,
            tokenize.NEWLINE,
            tokenize.ENCODING,
        ):
            # A docstring (string statement at the start of a suite).
            prev_toktype = token.type
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        prev_toktype = token.type
    return len(code_lines)


def count_loc_many(paths: Iterable[Path]) -> int:
    """Sum of :func:`count_loc` over several files."""
    return sum(count_loc(path) for path in paths)


def shuffle_library_loc() -> Dict[str, int]:
    """LoC of each shuffle algorithm as implemented in this repo."""
    package_dir = Path(_shuffle_pkg.__file__).parent
    return {
        algorithm: count_loc_many(package_dir / name for name in files)
        for algorithm, files in SHUFFLE_ALGORITHM_FILES.items()
    }
