"""Exoshuffle reproduction.

This package reproduces the system described in *Exoshuffle: An Extensible
Shuffle Architecture* (SIGCOMM 2023).  It contains:

- ``repro.simcore`` -- a deterministic discrete-event simulation engine.
- ``repro.cluster`` -- a parameterised cluster model (CPU, memory, HDD/SSD,
  network) with failure injection.
- ``repro.futures`` -- a from-scratch distributed-futures runtime in the
  style of Ray: shared-memory object store, spilling with write fusing,
  pipelined argument prefetching, reference counting, lineage
  reconstruction, and a locality-aware two-level scheduler.
- ``repro.shuffle`` -- the paper's contribution: shuffle algorithms written
  as short application-level libraries over distributed futures.
- ``repro.baselines`` -- monolithic Spark-style shuffle, a Dask-style
  futures backend, and a Petastorm-style windowed data loader.
- ``repro.sort``, ``repro.ml``, ``repro.aggregation`` -- the end
  applications evaluated in the paper.

See ``DESIGN.md`` at the repository root for the full system inventory and
the per-figure experiment index.
"""

from repro import common
from repro.common.units import GB, GIB, KB, KIB, MB, MIB, TB


def __getattr__(name):
    """Lazy top-level conveniences: ``repro.Runtime``, ``repro.RuntimeConfig``.

    Imported on first use so that ``import repro`` stays light.
    """
    if name in ("Runtime", "RuntimeConfig"):
        from repro import futures

        return getattr(futures, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "common",
    "Runtime",
    "RuntimeConfig",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "GB",
    "GIB",
    "TB",
    "__version__",
]

__version__ = "1.0.0"
