"""Counters and time series collected during simulated runs.

Every figure in the paper is either a bar of job-completion times, a line
over simulated time, or a byte count; these two small classes cover all of
them.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Tuple


class Counters:
    """Named monotonic counters (bytes spilled, tasks executed, ...)."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value (0 for never-touched counters)."""
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """A snapshot copy of all counters."""
        return dict(self._values)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


class TimeSeries:
    """(time, value) samples, e.g. reduce-progress for Fig 5."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; time must not go backwards."""
        if self._samples and time < self._samples[-1][0]:
            raise ValueError("time series samples must be non-decreasing in time")
        self._samples.append((time, value))

    @property
    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self._samples]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    def value_at(self, time: float) -> float:
        """Step-function lookup: latest sample at or before ``time``."""
        if not self._samples or time < self._samples[0][0]:
            raise ValueError(f"no sample at or before t={time}")
        result = self._samples[0][1]
        for t, v in self._samples:
            if t > time:
                break
            result = v
        return result

    def first_time_reaching(self, threshold: float) -> float:
        """Earliest sample time with value >= threshold (inf if never)."""
        for t, v in self._samples:
            if v >= threshold:
                return t
        return float("inf")

    def __len__(self) -> int:
        return len(self._samples)
