"""Counters, distributions, and time series collected during simulated runs.

Every figure in the paper is either a bar of job-completion times, a line
over simulated time, or a byte count; :class:`Counters` and
:class:`TimeSeries` cover those.  :class:`Histogram` adds exact
percentiles (p50/p95/p99) for per-job latency distributions -- queue
waits and task durations in the multi-tenant control plane
(:mod:`repro.jobs`) -- and is equally useful standalone in benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Optional, Tuple


class Counters:
    """Named monotonic counters (bytes spilled, tasks executed, ...)."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value (0 for never-touched counters)."""
        return self._values.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """A snapshot copy of all counters."""
        return dict(self._values)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy of all counters (delegates to
        :meth:`as_dict`; named for the snapshot/reset idiom of interval
        measurement)."""
        return self.as_dict()

    def merge(self, other: "Counters") -> None:
        """Fold another counter set into this one (summing shared keys) --
        e.g. aggregating per-job buckets into a per-tenant total."""
        for name, amount in other.as_dict().items():
            self._values[name] += amount

    def reset(self) -> Dict[str, float]:
        """Zero every counter; returns the values held just before the
        reset so ``delta = c.reset()`` closes a measurement interval."""
        values = dict(self._values)
        self._values.clear()
        return values

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


class TimeSeries:
    """(time, value) samples, e.g. reduce-progress for Fig 5."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append a sample; time must not go backwards."""
        if self._samples and time < self._samples[-1][0]:
            raise ValueError("time series samples must be non-decreasing in time")
        self._samples.append((time, value))

    @property
    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self._samples]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self._samples]

    def value_at(self, time: float) -> float:
        """Step-function lookup: latest sample at or before ``time``."""
        if not self._samples or time < self._samples[0][0]:
            raise ValueError(f"no sample at or before t={time}")
        result = self._samples[0][1]
        for t, v in self._samples:
            if t > time:
                break
            result = v
        return result

    def first_time_reaching(self, threshold: float) -> float:
        """Earliest sample time with value >= threshold (inf if never)."""
        for t, v in self._samples:
            if v >= threshold:
                return t
        return float("inf")

    def __len__(self) -> int:
        return len(self._samples)


class Histogram:
    """An exact value distribution with percentile queries.

    Simulated runs record at most tens of thousands of samples, so the
    histogram keeps them all and computes percentiles exactly (linear
    interpolation between order statistics, the numpy default) instead of
    approximating with buckets.  The sorted view is cached between
    records, so repeated percentile reads are cheap.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one sample."""
        self._values.append(float(value))
        self._sorted = None

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``), interpolating
        linearly between adjacent order statistics; 0.0 when empty."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._values)
        ordered = self._sorted
        rank = (len(ordered) - 1) * q / 100.0
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    @property
    def p50(self) -> float:
        """Median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99)

    @property
    def p999(self) -> float:
        """99.9th percentile -- the streaming tier's tail-latency figure
        of merit (ShuffleBench reports record latency at p999)."""
        return self.percentile(99.9)

    def snapshot(self) -> Dict[str, float]:
        """Summary dict (count/mean/min/max/p50/p95/p99/p999) for tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "p999": self.p999,
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        self._values.extend(other._values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, n={self.count}, p50={self.p50:g}, "
            f"p95={self.p95:g}, p99={self.p99:g})"
        )
