"""Measurement: counters, histograms, time series, and result tables."""

from repro.metrics.core import Counters, Histogram, TimeSeries
from repro.metrics.tables import ResultTable
from repro.metrics.timeline import (
    chrome_trace_events,
    export_chrome_trace,
    phase_summary,
    task_spans,
)

__all__ = [
    "Counters",
    "Histogram",
    "TimeSeries",
    "ResultTable",
    "task_spans",
    "phase_summary",
    "chrome_trace_events",
    "export_chrome_trace",
]
