"""Measurement: counters, time series, and experiment result tables."""

from repro.metrics.core import Counters, TimeSeries
from repro.metrics.tables import ResultTable
from repro.metrics.timeline import (
    chrome_trace_events,
    export_chrome_trace,
    phase_summary,
    task_spans,
)

__all__ = [
    "Counters",
    "TimeSeries",
    "ResultTable",
    "task_spans",
    "phase_summary",
    "chrome_trace_events",
    "export_chrome_trace",
]
