"""Result tables: the rows the benchmark harness prints per figure."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class ResultTable:
    """An ordered table of result rows with aligned text rendering.

    Benchmarks accumulate one row per (variant, parameter) combination and
    render the table in the same orientation as the paper's figure, so the
    reproduction can be compared to the original at a glance.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        """Append one row (column subsets allowed)."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ValueError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def find(self, **criteria: Any) -> Optional[Dict[str, Any]]:
        """First row matching all the given column values."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form: title, column order, and the row dicts."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
        }

    def render(self) -> str:
        """Fixed-width text rendering, with a title rule."""

        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        cells = [[fmt(row.get(col)) for col in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(line[i]) for line in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        rule = "-" * len(header)
        lines = [self.title, "=" * len(self.title), header, rule]
        for line in cells:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
