"""Execution timelines: phase summaries and Chrome-trace export.

Reconstructs what ran where and when from the runtime's task records --
the observability layer a real deployment gets from Ray's timeline tool.
``export_chrome_trace`` writes the standard ``chrome://tracing`` /
Perfetto JSON so a simulated run can be inspected visually.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List

from repro.metrics.tables import ResultTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime


def task_spans(runtime: "Runtime") -> List[Dict[str, Any]]:
    """One record per executed task: name, node, start, end, queue delay."""
    spans = []
    for record in runtime.tasks.values():
        if record.finished_at is None or record.started_at is None:
            continue
        spans.append(
            {
                "name": record.spec.fn_name,
                "task_id": str(record.spec.task_id),
                "node": str(record.assigned_node),
                "job_id": record.spec.options.job_id,
                "start": record.started_at,
                "end": record.finished_at,
                "queue_delay": record.started_at - record.submitted_at,
                "attempts": record.spec.attempts,
            }
        )
    spans.sort(key=lambda s: (s["start"], s["task_id"]))
    return spans


def phase_summary(runtime: "Runtime") -> ResultTable:
    """Per-function aggregates: count, span, busy core-seconds, mean wait."""
    grouped: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for span in task_spans(runtime):
        grouped[span["name"]].append(span)
    table = ResultTable(
        "Task phase summary",
        ["phase", "tasks", "first_start", "last_end", "busy_core_s", "mean_queue_s"],
    )
    for name in sorted(grouped):
        spans = grouped[name]
        table.add_row(
            phase=name,
            tasks=len(spans),
            first_start=min(s["start"] for s in spans),
            last_end=max(s["end"] for s in spans),
            busy_core_s=sum(s["end"] - s["start"] for s in spans),
            mean_queue_s=sum(s["queue_delay"] for s in spans) / len(spans),
        )
    return table


def _assign_lanes(spans: List[Dict[str, Any]]) -> List[int]:
    """Pack overlapping spans into the fewest display lanes (greedy)."""
    lane_free_at: List[float] = []
    lanes: List[int] = []
    for span in spans:
        for lane, free_at in enumerate(lane_free_at):
            if span["start"] >= free_at - 1e-12:
                lane_free_at[lane] = span["end"]
                lanes.append(lane)
                break
        else:
            lane_free_at.append(span["end"])
            lanes.append(len(lane_free_at) - 1)
    return lanes


def chrome_trace_events(runtime: "Runtime") -> List[Dict[str, Any]]:
    """Complete-event ("ph": "X") list in Chrome trace format.

    Task spans come from the runtime's task records; when the runtime
    carries a populated event bus (``runtime.bus``), spill write/restore
    and inter-node transfer spans derived from it are added on lanes
    above each node's task lanes, so the I/O that explains a task's
    timing is visible in the same process row.
    """
    by_node: Dict[str, List[Dict[str, Any]]] = defaultdict(list)
    for span in task_spans(runtime):
        by_node[span["node"]].append(span)
    # Bus-derived I/O spans (lazy import: repro.obs depends on
    # repro.metrics.core, so this module must not import it at top level).
    io_by_node: Dict[str, List[Any]] = defaultdict(list)
    bus = getattr(runtime, "bus", None)
    if bus is not None and getattr(bus, "events", None):
        from repro.obs.trace import derive_spans

        for span in derive_spans(bus.events):
            if span.cat in ("spill", "transfer") and span.node is not None:
                io_by_node[span.node].append(span)
    events: List[Dict[str, Any]] = []
    for pid, node in enumerate(sorted(set(by_node) | set(io_by_node))):
        spans = by_node.get(node, [])
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": f"node {node}"},
            }
        )
        lanes = _assign_lanes(spans)
        for span, lane in zip(spans, lanes):
            events.append(
                {
                    "name": span["name"],
                    "cat": "task",
                    "ph": "X",
                    "pid": pid,
                    "tid": lane,
                    "ts": span["start"] * 1e6,  # microseconds
                    "dur": (span["end"] - span["start"]) * 1e6,
                    "args": {
                        "task_id": span["task_id"],
                        "job_id": span["job_id"],
                        "queue_delay_s": span["queue_delay"],
                        "attempts": span["attempts"],
                    },
                }
            )
        io_spans = sorted(
            io_by_node.get(node, []), key=lambda s: (s.start, s.end, s.name)
        )
        io_base = (max(lanes) + 1) if lanes else 0
        io_lanes = _assign_lanes(
            [{"start": s.start, "end": s.end} for s in io_spans]
        )
        for span, lane in zip(io_spans, io_lanes):
            args = dict(span.attrs)
            if span.obj is not None:
                args["object"] = span.obj
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "pid": pid,
                    "tid": io_base + lane,
                    "ts": span.start * 1e6,
                    "dur": (span.end - span.start) * 1e6,
                    "args": args,
                }
            )
    return events


def export_chrome_trace(runtime: "Runtime", path: str) -> int:
    """Write the trace JSON; returns the number of complete ("X")
    events written (task spans plus bus-derived I/O spans)."""
    events = chrome_trace_events(runtime)
    Path(path).write_text(json.dumps({"traceEvents": events}))
    return sum(1 for e in events if e.get("ph") == "X")
