"""Text renderings of the paper's figures.

Benchmarks print these next to the numeric tables so the reproduced
*shape* of each figure -- who wins, where the crossover falls -- is
visible in the terminal without plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal bars, one per label, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    lines = [title, "-" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"{str(label):>{label_width}s} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[object, float]],
    width: int = 40,
    unit: str = "s",
) -> str:
    """One bar block per x value, one bar per series within it.

    ``groups`` maps series name -> {x: value}; x values are unioned and
    ordered; missing cells are skipped.
    """
    xs: List[object] = []
    for per_x in groups.values():
        for x in per_x:
            if x not in xs:
                xs.append(x)
    xs.sort(key=lambda v: (str(type(v)), v))
    peak = max(
        (value for per_x in groups.values() for value in per_x.values()),
        default=0.0,
    )
    series_width = max((len(name) for name in groups), default=1)
    lines = [title, "=" * len(title)]
    for x in xs:
        lines.append(f"[{x}]")
        for name, per_x in groups.items():
            if x not in per_x:
                continue
            value = per_x[x]
            bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
            lines.append(
                f"  {name:>{series_width}s} | {bar} {value:.1f}{unit}"
            )
    return "\n".join(lines)


def line_chart(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    markers: Optional[str] = None,
) -> str:
    """A character-grid plot of one or more (x, y) series."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs, ys = [p[0] for p in points], [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    marker_cycle = markers or "*+ox@%"
    legend: Dict[str, str] = {}
    for index, (name, pts) in enumerate(series.items()):
        mark = marker_cycle[index % len(marker_cycle)]
        legend[name] = mark
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [title, "-" * len(title)]
    for row_index, row in enumerate(grid):
        y_label = (
            f"{y_hi:>8.3g} |" if row_index == 0
            else f"{y_lo:>8.3g} |" if row_index == height - 1
            else "         |"
        )
        lines.append(y_label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.3g}{'':{max(0, width - 20)}}{x_hi:>10.3g}")
    lines.append(
        "legend: " + ", ".join(f"{mark}={name}" for name, mark in legend.items())
    )
    return "\n".join(lines)
