"""Text renderings of the paper's figures.

Benchmarks print these next to the numeric tables so the reproduced
*shape* of each figure -- who wins, where the crossover falls -- is
visible in the terminal without plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def bar_chart(
    title: str,
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "s",
) -> str:
    """Horizontal bars, one per label, scaled to the maximum value.

    Labels are right-aligned into one column and values into another
    (bars are padded to ``width``), so mixed-width labels still render
    as three clean columns.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return title
    peak = max(values)
    label_width = max(len(str(label)) for label in labels)
    value_texts = [f"{value:.1f}{unit}" for value in values]
    value_width = max(len(text) for text in value_texts)
    lines = [title, "-" * len(title)]
    for label, value, text in zip(labels, values, value_texts):
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(
            f"{str(label):>{label_width}s} | {bar:<{width}s} "
            f"{text:>{value_width}s}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    title: str,
    groups: Mapping[str, Mapping[object, float]],
    width: int = 40,
    unit: str = "s",
) -> str:
    """One bar block per x value, one bar per series within it.

    ``groups`` maps series name -> {x: value}; x values are unioned and
    ordered; missing cells are skipped.
    """
    xs: List[object] = []
    for per_x in groups.values():
        for x in per_x:
            if x not in xs:
                xs.append(x)
    xs.sort(key=lambda v: (str(type(v)), v))
    peak = max(
        (value for per_x in groups.values() for value in per_x.values()),
        default=0.0,
    )
    series_width = max((len(name) for name in groups), default=1)
    lines = [title, "=" * len(title)]
    for x in xs:
        lines.append(f"[{x}]")
        for name, per_x in groups.items():
            if x not in per_x:
                continue
            value = per_x[x]
            bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
            lines.append(
                f"  {name:>{series_width}s} | {bar} {value:.1f}{unit}"
            )
    return "\n".join(lines)


def line_chart(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    markers: Optional[str] = None,
) -> str:
    """A character-grid plot of one or more (x, y) series."""
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs, ys = [p[0] for p in points], [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    marker_cycle = markers or "*+ox@%"
    legend: Dict[str, str] = {}
    for index, (name, pts) in enumerate(series.items()):
        mark = marker_cycle[index % len(marker_cycle)]
        legend[name] = mark
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [title, "-" * len(title)]
    for row_index, row in enumerate(grid):
        y_label = (
            f"{y_hi:>8.3g} |" if row_index == 0
            else f"{y_lo:>8.3g} |" if row_index == height - 1
            else "         |"
        )
        lines.append(y_label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.3g}{'':{max(0, width - 20)}}{x_hi:>10.3g}")
    lines.append(
        "legend: " + ", ".join(f"{mark}={name}" for name, mark in legend.items())
    )
    return "\n".join(lines)


#: Eight-level block ramp used by :func:`sparkline`, lowest first.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-character-per-sample block sparkline of a value series.

    Scaling is ``[lo, hi]`` when given (samples clamped into the range),
    else the series' own min/max; a flat series renders as its lowest
    block so "all zero" and "all saturated" don't look alike when a
    shared ``hi`` is supplied.
    """
    if not values:
        return ""
    floor = min(values) if lo is None else lo
    ceil = max(values) if hi is None else hi
    span = ceil - floor
    out = []
    for value in values:
        if span <= 0:
            index = 0
        else:
            frac = (value - floor) / span
            index = round(min(1.0, max(0.0, frac)) * (len(SPARK_BLOCKS) - 1))
        out.append(SPARK_BLOCKS[index])
    return "".join(out)


def gauge(value: float, maximum: float, width: int = 24) -> str:
    """A bracketed fill gauge: ``[#####...........]  31%``.

    ``maximum <= 0`` renders an empty gauge at 0% rather than dividing
    by zero; overfull values clamp at 100%.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    frac = 0.0 if maximum <= 0 else min(1.0, max(0.0, value / maximum))
    filled = round(frac * width)
    return f"[{'#' * filled}{'.' * (width - filled)}] {frac:4.0%}"


#: Braille dot bit for plot cell (column 0-1, row 0-3), row 0 at the top
#: of the character cell (U+2800 + mask renders the dot pattern).
_BRAILLE_BITS = (
    (0x01, 0x08),
    (0x02, 0x10),
    (0x04, 0x20),
    (0x40, 0x80),
)


def braille_line_chart(
    title: str,
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 10,
) -> str:
    """A braille-dot line chart with a labeled time axis.

    Each character cell holds a 2x4 dot grid, so the plot resolution is
    ``2*width`` by ``4*height`` -- dense enough for utilization tracks
    in a terminal dashboard.  All series share one dot field (identity
    comes from the legend ordering, not markers); consecutive points of
    a series are connected by interpolated dots so sparse series still
    read as lines.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs, ys = [p[0] for p in points], [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    cols, rows = 2 * width, 4 * height
    cells = [[0] * width for _ in range(height)]

    def plot(x: float, y: float) -> None:
        col = round((x - x_lo) / x_span * (cols - 1))
        row = rows - 1 - round((y - y_lo) / y_span * (rows - 1))
        bit = _BRAILLE_BITS[row % 4][col % 2]
        cells[row // 4][col // 2] |= bit

    for pts in series.values():
        ordered = sorted(pts)
        for i, (x, y) in enumerate(ordered):
            plot(x, y)
            if i + 1 < len(ordered):
                nx, ny = ordered[i + 1]
                steps = max(
                    1, round(abs(nx - x) / x_span * (cols - 1))
                )
                for step in range(1, steps):
                    frac = step / steps
                    plot(x + (nx - x) * frac, y + (ny - y) * frac)

    lines = [title, "-" * len(title)]
    for row_index, row in enumerate(cells):
        y_label = (
            f"{y_hi:>8.3g} |" if row_index == 0
            else f"{y_lo:>8.3g} |" if row_index == height - 1
            else "         |"
        )
        lines.append(y_label + "".join(chr(0x2800 + cell) for cell in row))
    lines.append("         +" + "-" * width)
    lines.append(
        f"          {x_lo:<10.3g}{'':{max(0, width - 20)}}{x_hi:>10.3g}"
    )
    lines.append("legend: " + ", ".join(series))
    return "\n".join(lines)
