"""Whole-runtime consistency checking at quiesce.

After a run drains (driver returned, event queue empty), the data plane
must be back in a self-consistent state no matter what faults were
injected along the way.  :class:`InvariantChecker` walks the runtime and
validates:

- **Reference counts balance** -- no surviving directory record has a
  zero or negative refcount (a leak would pin memory forever; a negative
  count means a double free).
- **Store accounting** -- each node's ``used_bytes``/``pinned_bytes``
  match the entries actually resident, no allocation requests are stuck
  in a queue, and no entry is still pinned (a leaked pin means some task
  exited without unpinning its arguments).
- **Location consistency** -- every directory location (memory and spill)
  points at a node that really holds the copy, and every resident or
  spilled copy is recorded in the directory; spill-file live-byte
  accounting matches the surviving slots.
- **Output durability** -- every live object is available (memory or
  disk), carries its creating task's error, or is reconstructable from
  lineage; ``put()`` objects (no creating task) are exempt, as is
  everything when lineage reconstruction is disabled by config.
- **Task completion** -- every submitted task reached a terminal phase
  (a task parked in ``WAITING_DEPS``/``QUEUED`` forever is a lost wakeup).
- **Per-job accounting** -- when the multi-tenant jobs layer is active
  (``runtime.job_counters`` non-empty), every attributable counter's
  per-job buckets sum exactly to the global counter: no work is double-
  charged and none escapes attribution.
- **Metric dimensions** -- for every counter in the runtime's
  :class:`~repro.obs.registry.MetricRegistry`, each populated dimension
  axis (per-node, per-job) sums exactly to the counter's global series:
  the registry's lockstep-write contract held for the whole run.

``check()`` returns human-readable violation strings (empty = healthy);
``assert_clean()`` raises :class:`~repro.common.errors.InvariantViolationError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set

from repro.common.errors import InvariantViolationError
from repro.common.ids import ObjectId
from repro.futures.task import TaskPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime


class InvariantChecker:
    """Validates a quiesced :class:`Runtime` against the data-plane
    invariants listed in the module docstring."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime

    # -- entry points -------------------------------------------------------
    def check(self) -> List[str]:
        """All violations found (empty list = every invariant holds)."""
        violations: List[str] = []
        violations.extend(self._check_refcounts())
        violations.extend(self._check_store_accounting())
        violations.extend(self._check_locations())
        violations.extend(self._check_spill_accounting())
        violations.extend(self._check_durability())
        violations.extend(self._check_task_completion())
        violations.extend(self._check_job_accounting())
        violations.extend(self._check_metric_dimensions())
        return violations

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolationError` if any invariant fails."""
        violations = self.check()
        if violations:
            raise InvariantViolationError(violations)

    # -- refcounts -----------------------------------------------------------
    def _check_refcounts(self) -> List[str]:
        out = []
        for oid, record in self.runtime.directory.items():
            if record.refcount < 0:
                out.append(
                    f"{oid}: negative refcount {record.refcount} (double free)"
                )
            elif record.refcount == 0:
                # decref evicts at zero, so a surviving zero-count record
                # means someone forgot the eviction path: a leak.
                out.append(f"{oid}: refcount 0 but record not evicted (leak)")
        return out

    # -- per-node store accounting -------------------------------------------
    def _check_store_accounting(self) -> List[str]:
        out = []
        for node_id, manager in self.runtime.node_managers.items():
            store = manager.store
            resident = store.objects()
            total = sum(store.entry_size(oid) for oid in resident)
            if total != store.used_bytes:
                out.append(
                    f"{node_id}: store used_bytes={store.used_bytes} but "
                    f"entries total {total}"
                )
            pinned = [oid for oid in resident if store.is_pinned(oid)]
            if pinned:
                out.append(
                    f"{node_id}: {len(pinned)} entries still pinned at "
                    f"quiesce (leaked pins): {pinned[:3]}"
                )
            pinned_total = sum(store.entry_size(oid) for oid in pinned)
            if pinned_total != store.pinned_bytes:
                out.append(
                    f"{node_id}: pinned_bytes={store.pinned_bytes} but pinned "
                    f"entries total {pinned_total}"
                )
            if store.backlog:
                out.append(
                    f"{node_id}: {store.backlog} allocation requests stuck in "
                    f"the store queue"
                )
        return out

    # -- directory <-> store/spill location consistency -----------------------
    def _check_locations(self) -> List[str]:
        out = []
        managers = self.runtime.node_managers
        for oid, record in self.runtime.directory.items():
            for node_id in record.memory_nodes:
                manager = managers.get(node_id)
                if manager is None or not manager.store.contains(oid):
                    out.append(
                        f"{oid}: directory claims a memory copy on {node_id} "
                        f"but the store has none"
                    )
            for node_id, slot in record.spill_nodes.items():
                manager = managers.get(node_id)
                if manager is None or not manager.spill.is_spilled(oid):
                    out.append(
                        f"{oid}: directory claims a spill copy on {node_id} "
                        f"but the disk has none"
                    )
                elif manager.spill.slot(oid) is not slot:
                    out.append(
                        f"{oid}: directory spill slot on {node_id} is stale"
                    )
        for node_id, manager in managers.items():
            for oid in manager.store.objects():
                record = self.runtime.directory.maybe_get(oid)
                if record is None:
                    out.append(
                        f"{node_id}: store holds {oid} with no directory "
                        f"record (untracked memory)"
                    )
                elif node_id not in record.memory_nodes:
                    out.append(
                        f"{node_id}: store holds {oid} but the directory does "
                        f"not list the location"
                    )
            for oid in manager.spill.spilled_objects():
                record = self.runtime.directory.maybe_get(oid)
                if record is None:
                    out.append(
                        f"{node_id}: disk holds {oid} with no directory "
                        f"record (untracked spill)"
                    )
                elif node_id not in record.spill_nodes:
                    out.append(
                        f"{node_id}: disk holds {oid} but the directory does "
                        f"not list the spill location"
                    )
        return out

    # -- spill-file byte accounting -------------------------------------------
    def _check_spill_accounting(self) -> List[str]:
        out = []
        for node_id, manager in self.runtime.node_managers.items():
            live_by_file: Dict[int, int] = {}
            files = {}
            for oid in manager.spill.spilled_objects():
                slot = manager.spill.slot(oid)
                files[id(slot.file)] = slot.file
                live_by_file[id(slot.file)] = (
                    live_by_file.get(id(slot.file), 0) + slot.size
                )
            for key, file in files.items():
                if file.live_bytes != live_by_file[key]:
                    out.append(
                        f"{node_id}: spill file {file.file_id} records "
                        f"live_bytes={file.live_bytes} but surviving slots "
                        f"total {live_by_file[key]} (eviction accounting drift)"
                    )
        return out

    # -- durability / lineage --------------------------------------------------
    def _check_durability(self) -> List[str]:
        out = []
        runtime = self.runtime
        directory = runtime.directory
        for oid, record in directory.items():
            if record.available or record.error is not None:
                if record.available and oid not in runtime.payloads:
                    out.append(
                        f"{oid}: available per the directory but its payload "
                        f"is gone"
                    )
                continue
            # Live but unavailable: must be rebuildable on demand.
            if not runtime.config.enable_lineage_reconstruction:
                continue  # loss is expected; get() raises ObjectLostError
            if record.creator is None and oid not in runtime._object_creator:
                continue  # put() object: unrecoverable by design
            memo: Dict[ObjectId, bool] = {}
            if not self._reconstructable(oid, memo, set()):
                out.append(
                    f"{oid}: live object is unavailable and its lineage "
                    f"cannot reconstruct it"
                )
        return out

    def _reconstructable(
        self,
        oid: ObjectId,
        memo: Dict[ObjectId, bool],
        visiting: Set[ObjectId],
    ) -> bool:
        if oid in memo:
            return memo[oid]
        if oid in visiting:
            return False  # lineage cycle: cannot bottom out
        runtime = self.runtime
        record = runtime.directory.maybe_get(oid)
        if record is not None and (record.available or record.error is not None):
            memo[oid] = True
            return True
        creator_id = (
            record.creator if record is not None and record.creator is not None
            else runtime._object_creator.get(oid)
        )
        if creator_id is None:
            # An unavailable object with no creating task (put data or
            # truncated lineage) cannot be rebuilt.
            memo[oid] = False
            return False
        creator = runtime.tasks.get(creator_id)
        if creator is None:
            memo[oid] = False
            return False
        visiting.add(oid)
        ok = all(
            self._reconstructable(dep, memo, visiting)
            for dep in dict.fromkeys(creator.spec.dependency_ids)
        )
        visiting.discard(oid)
        memo[oid] = ok
        return ok

    # -- per-job accounting ------------------------------------------------------
    def _check_job_accounting(self) -> List[str]:
        """Per-job counter buckets must sum to the global counters.

        Only counters that appear in some job bucket are checked: charges
        flow through ``Runtime.charge_task``/``charge_object``, which add
        to a bucket and the global counters together, so any key present
        in a bucket is fully attributed by construction -- drift means a
        call site bypassed the charge path.  Skipped entirely when the
        jobs layer never ran (no buckets exist).
        """
        out = []
        buckets = self.runtime.job_counters
        if not buckets:
            return out
        keys: Set[str] = set()
        for bucket in buckets.values():
            keys.update(bucket)
        for key in sorted(keys):
            total = sum(bucket.get(key) for bucket in buckets.values())
            global_value = self.runtime.counters.get(key)
            tolerance = max(1e-6, 1e-9 * abs(global_value))
            if abs(total - global_value) > tolerance:
                out.append(
                    f"counter {key!r}: job buckets sum to {total:g} but the "
                    f"global counter reads {global_value:g} (attribution drift)"
                )
        return out

    # -- metric-registry dimension accounting -------------------------------------
    def _check_metric_dimensions(self) -> List[str]:
        """Every populated axis of every registry counter sums to its
        global series.

        The :class:`~repro.obs.registry.MetricRegistry` writes the global
        series and each populated dimension in lockstep; a mismatch means
        some call site wrote one side without the other (or mutated a
        snapshot in place).  Runtimes without a registry (hand-built test
        doubles) are skipped.
        """
        out: List[str] = []
        registry = getattr(self.runtime, "metrics", None)
        if registry is None:
            return out
        for name in registry.counter_names():
            total = registry.counter_total(name)
            for axis in ("node", "job"):
                values = registry.counter_by(name, axis)
                if not values:
                    continue
                axis_sum = sum(values.values())
                tolerance = max(1e-6, 1e-9 * abs(total))
                if abs(axis_sum - total) > tolerance:
                    out.append(
                        f"metric {name!r}: {axis} dimension sums to "
                        f"{axis_sum:g} but the global series reads {total:g} "
                        f"(lockstep-write drift)"
                    )
        return out

    # -- task completion --------------------------------------------------------
    def _check_task_completion(self) -> List[str]:
        out = []
        for task_id, record in self.runtime.tasks.items():
            if record.phase not in (TaskPhase.FINISHED, TaskPhase.FAILED):
                out.append(
                    f"{task_id}: still {record.phase.name} at quiesce "
                    f"(lost wakeup or stuck dependency)"
                )
        return out
