"""Chaos engineering for the shuffle data plane.

The paper's fault-tolerance evaluation (§5.1.5) injects exactly one
fault shape: kill a whole worker node, restart it later.  Production
shuffle services (FuxiShuffle) see a much richer fault surface -- slow
disks, degraded links, stragglers, partial data loss -- and credible
evaluation (ShuffleBench) needs those scenarios to be systematic and
repeatable rather than hand-picked.  This package supplies that layer:

- :class:`FaultSpec` / :class:`ChaosPlan` -- a declarative, seeded model
  of faults: node crashes, CPU dilation, disk stalls, NIC degradation,
  dropped links between node pairs, object-store corruption, and
  straggler injection.
- :class:`ChaosInjector` -- schedules a plan against a live
  :class:`~repro.futures.Runtime`, driving the data plane's degradation
  knobs (``Node.degrade_disk``/``degrade_nic``/``set_compute_dilation``,
  ``Cluster.set_link_down``, direct object loss) deterministically.
- :class:`InvariantChecker` -- validates, at simulation quiesce, that
  reference counts balance, store/spill accounting is consistent with
  the directory, every finished task's outputs are live, spilled, or
  intentionally freed, and lineage suffices to reconstruct any live
  object.
- :mod:`repro.chaos.harness` -- a small seeded shuffle workload used by
  the failure-matrix test suite and the ``python -m repro.chaos --smoke``
  CI entry point.
"""

from repro.chaos.spec import ChaosPlan, FaultKind, FaultSpec, matrix_plan
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.harness import (
    ChaosRunReport,
    SHUFFLE_VARIANTS,
    default_node_spec,
    expected_output,
    make_inputs,
    run_chaos_shuffle,
    submit_variant,
)

__all__ = [
    "ChaosPlan",
    "FaultKind",
    "FaultSpec",
    "matrix_plan",
    "ChaosInjector",
    "InvariantChecker",
    "ChaosRunReport",
    "SHUFFLE_VARIANTS",
    "default_node_spec",
    "expected_output",
    "make_inputs",
    "run_chaos_shuffle",
    "submit_variant",
]
