"""Declarative fault models: what goes wrong, where, when, how badly.

A :class:`FaultSpec` describes one fault; a :class:`ChaosPlan` bundles a
sequence of them under one root seed.  Specs are plain data -- they name
*kinds* of faults and victim *indices*, not live nodes -- so a plan can
be constructed before the cluster exists, logged, and replayed.  Every
random choice (victim selection, object-loss sampling, straggler
selection) derives from the plan seed via :mod:`repro.common.rng`, so a
plan is exactly repeatable.

Validation is strict and *up front*: :meth:`ChaosPlan.validate` (called
by the injector before anything is scheduled) rejects every malformed
fault before a single event is armed, so a bad plan can never leave a
half-injected simulation behind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.rng import seeded_rng


class FaultKind(enum.Enum):
    """The fault shapes the injector knows how to produce."""

    #: Kill the victim node (store and spill contents lost, resident
    #: tasks interrupted); restart it ``duration`` seconds later.
    NODE_CRASH = "node_crash"

    #: Dilate the victim's task compute time by ``severity`` for the
    #: fault window (a contended or thermally-throttled CPU).
    SLOW_NODE = "slow_node"

    #: Collapse the victim's disk bandwidth by ``severity`` for the
    #: window (spills and restores crawl; a failing or saturated drive).
    DISK_STALL = "disk_stall"

    #: Cut both NIC directions' bandwidth by ``severity`` for the window
    #: (an oversubscribed or renegotiated link).
    NET_DEGRADE = "net_degrade"

    #: Drop the bidirectional link between the victim and ``peer_index``
    #: for the window; transfers over it fail and are retried.
    LINK_DOWN = "link_down"

    #: Silently lose a seeded ``severity`` fraction of the objects
    #: resident on the victim (memory and spilled copies) without
    #: killing it -- partial data loss / corruption.
    OBJECT_LOSS = "object_loss"

    #: For the window, tax each task attempt with probability
    #: ``probability`` by ``severity`` extra seconds (stragglers).  With
    #: ``node_index`` set the tax applies only to attempts on that node;
    #: with ``node_index=None`` it applies cluster-wide.
    STRAGGLER = "straggler"

    #: Cluster churn: a fresh node joins mid-run (elastic scale-up).
    #: Takes no victim -- ``node_index`` must stay ``None``.
    NODE_JOIN = "node_join"

    #: Cluster churn: the victim drains (no new placements) at onset and
    #: is removed ``duration`` seconds later if still draining --
    #: a graceful scale-down under deadline.
    NODE_DRAIN = "node_drain"

    #: Cluster churn: the victim is removed immediately -- a *planned*
    #: departure (interrupted work resubmits at once, no heartbeat
    #: detection delay), unlike ``NODE_CRASH``.  Local store and spill
    #: contents are still lost with the node.
    NODE_REMOVE = "node_remove"


#: Fault kinds whose ``severity`` is a slowdown/dilation factor (> 1).
_FACTOR_KINDS = (FaultKind.SLOW_NODE, FaultKind.DISK_STALL, FaultKind.NET_DEGRADE)

#: Fault kinds that select no random victim (STRAGGLER may apply
#: cluster-wide; NODE_JOIN adds a node instead of picking one).
_VICTIMLESS_KINDS = (FaultKind.STRAGGLER, FaultKind.NODE_JOIN)

#: Churn kinds that retire their victim; node 0 hosts the driver by
#: convention and may never be drained or removed.
_DEPARTURE_KINDS = (FaultKind.NODE_DRAIN, FaultKind.NODE_REMOVE)


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, onset time, window, victim, and magnitude.

    ``node_index`` of ``None`` picks a pseudo-random victim from the
    plan seed, never node 0 (which hosts the driver by convention).
    ``severity`` means: dilation/slowdown factor for ``SLOW_NODE`` /
    ``DISK_STALL`` / ``NET_DEGRADE`` (must be > 1), the lost fraction in
    (0, 1] for ``OBJECT_LOSS``, and the extra seconds per straggling
    attempt for ``STRAGGLER``.  ``probability`` is used only by
    ``STRAGGLER``.
    """

    kind: FaultKind
    at_time: float
    duration: float = 10.0
    node_index: Optional[int] = None
    peer_index: Optional[int] = None
    severity: float = 2.0
    probability: float = 0.25

    def validate(self, num_nodes: int) -> None:
        """Raise ``ValueError`` if this spec is malformed for a cluster
        of ``num_nodes`` nodes."""
        if self.at_time < 0:
            raise ValueError(f"{self.kind.value}: fault time must be non-negative")
        if self.duration < 0:
            raise ValueError(f"{self.kind.value}: duration must be non-negative")
        if self.node_index is not None and not 0 <= self.node_index < num_nodes:
            raise ValueError(
                f"{self.kind.value}: node_index {self.node_index} out of range "
                f"(cluster has {num_nodes} nodes)"
            )
        if (
            self.node_index is None
            and num_nodes < 2
            and self.kind not in _VICTIMLESS_KINDS
        ):
            raise ValueError(
                f"{self.kind.value}: random victim selection needs >= 2 nodes"
            )
        if self.kind is FaultKind.NODE_JOIN and self.node_index is not None:
            raise ValueError("node_join: takes no victim; node_index must be None")
        if self.kind in _DEPARTURE_KINDS and self.node_index == 0:
            raise ValueError(
                f"{self.kind.value}: node 0 hosts the driver and cannot depart"
            )
        if self.kind in _FACTOR_KINDS and self.severity <= 1.0:
            raise ValueError(
                f"{self.kind.value}: severity is a slowdown factor; need > 1"
            )
        if self.kind is FaultKind.OBJECT_LOSS and not 0 < self.severity <= 1:
            raise ValueError("object_loss: severity is a fraction in (0, 1]")
        if self.kind is FaultKind.STRAGGLER:
            if self.severity < 0:
                raise ValueError("straggler: severity (extra seconds) must be >= 0")
            if not 0 <= self.probability <= 1:
                raise ValueError("straggler: probability must be in [0, 1]")
        if self.kind is FaultKind.LINK_DOWN:
            if self.peer_index is not None and not 0 <= self.peer_index < num_nodes:
                raise ValueError(
                    f"link_down: peer_index {self.peer_index} out of range"
                )
            if num_nodes < 2:
                raise ValueError("link_down needs >= 2 nodes")


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded sequence of faults to inject into one run."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "faults", tuple(faults))
        object.__setattr__(self, "seed", int(seed))

    def validate(self, num_nodes: int) -> None:
        """Validate every fault up front (all-or-nothing semantics)."""
        for fault in self.faults:
            fault.validate(num_nodes)

    def resolve_victim(self, index: int, fault: FaultSpec, num_nodes: int) -> int:
        """The victim node index of fault ``index``; deterministic in the
        plan seed.  Random selection never picks node 0 (the driver)."""
        if fault.node_index is not None:
            return fault.node_index
        rng = seeded_rng(self.seed, "chaos-victim", index, fault.kind.value)
        return int(rng.integers(1, num_nodes))

    def resolve_peer(
        self, index: int, fault: FaultSpec, victim: int, num_nodes: int
    ) -> int:
        """The peer node index for a LINK_DOWN fault (distinct from the
        victim); deterministic in the plan seed."""
        if fault.peer_index is not None and fault.peer_index != victim:
            return fault.peer_index
        rng = seeded_rng(self.seed, "chaos-peer", index, fault.kind.value)
        candidates: List[int] = [n for n in range(num_nodes) if n != victim]
        return candidates[int(rng.integers(0, len(candidates)))]


def matrix_plan(kind: FaultKind, *, at_time: float = 1.0, seed: int = 0) -> ChaosPlan:
    """A canonical one-fault plan per kind, used by the failure-matrix
    test suite and the CI smoke: moderate severity, seeded victim."""
    presets = {
        FaultKind.NODE_CRASH: FaultSpec(kind, at_time=at_time, duration=4.0),
        FaultKind.SLOW_NODE: FaultSpec(kind, at_time=at_time, duration=8.0, severity=4.0),
        FaultKind.DISK_STALL: FaultSpec(kind, at_time=at_time, duration=8.0, severity=10.0),
        FaultKind.NET_DEGRADE: FaultSpec(kind, at_time=at_time, duration=8.0, severity=8.0),
        FaultKind.LINK_DOWN: FaultSpec(kind, at_time=at_time, duration=4.0),
        FaultKind.OBJECT_LOSS: FaultSpec(kind, at_time=at_time, severity=0.5),
        FaultKind.STRAGGLER: FaultSpec(
            kind, at_time=0.0, duration=60.0, severity=1.5, probability=0.3
        ),
        FaultKind.NODE_JOIN: FaultSpec(kind, at_time=at_time),
        FaultKind.NODE_DRAIN: FaultSpec(kind, at_time=at_time, duration=4.0),
        FaultKind.NODE_REMOVE: FaultSpec(kind, at_time=at_time),
    }
    return ChaosPlan(faults=(presets[kind],), seed=seed)
