"""A seeded shuffle workload for driving chaos experiments.

Every shuffle variant here computes the *same* pure function of the
seeded input data -- partition integers by residue, then sort each
partition -- so a run's output depends only on ``(seed, num_maps,
num_reduces)``, never on scheduling, retries, or injected faults.  That
makes the correctness oracle trivial: a chaos run must produce output
identical to the fault-free run of the same variant and seed, and the
failure-matrix test suite asserts exactly that for every (variant, fault
kind) pair.

Explicit per-task compute costs stretch the job over several simulated
seconds so that faults injected at t~=1s land mid-run rather than before
or after the interesting window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.spec import ChaosPlan
from repro.cluster import DiskSpec, NicSpec, NodeSpec
from repro.common.rng import seeded_rng
from repro.common.units import GIB, MIB
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.shuffle import (
    magnet_shuffle,
    push_based_shuffle,
    riffle_shuffle,
    riffle_shuffle_dynamic,
    simple_shuffle,
    streaming_shuffle,
)

#: The shuffle variants the failure matrix sweeps, in canonical order.
SHUFFLE_VARIANTS: Tuple[str, ...] = (
    "simple",
    "riffle",
    "riffle_dynamic",
    "magnet",
    "push",
    "streaming",
)

_MAP_COMPUTE_S = 1.0
_MERGE_COMPUTE_S = 0.8
_REDUCE_COMPUTE_S = 1.0


@dataclass
class ChaosRunReport:
    """What one chaos (or fault-free) run produced."""

    variant: str
    seed: int
    #: One sorted tuple of integers per reduce partition -- the pure
    #: function of the input data every variant computes.
    output: Tuple[Tuple[int, ...], ...]
    #: Simulated job completion time.
    duration: float
    #: ``runtime.stats()`` snapshot (counters + derived totals).
    stats: Dict[str, Any]
    #: The injector's fired-fault log: ``(time, kind, node_id)``.
    injected: List[tuple] = field(default_factory=list)
    #: Invariant violations found at quiesce (empty = healthy).
    violations: List[str] = field(default_factory=list)

    @property
    def retries(self) -> int:
        """How many task re-executions the run needed."""
        return int(self.stats.get("tasks_resubmitted", 0))


def make_inputs(seed: int, num_maps: int, values_per_part: int) -> List[List[int]]:
    """Seeded integer map inputs (plain values, so lineage is complete).

    Public so other workload builders (the multi-tenant jobs layer) can
    run the exact same oracle-checked sort jobs.
    """
    rng = seeded_rng(seed, "chaos-data")
    return [
        [int(rng.integers(0, 10_000)) for _ in range(values_per_part)]
        for _ in range(num_maps)
    ]


def expected_output(
    seed: int, num_maps: int = 8, num_reduces: int = 4, values_per_part: int = 24
) -> Tuple[Tuple[int, ...], ...]:
    """The oracle: what every variant must produce for these parameters,
    computed directly without the runtime."""
    inputs = make_inputs(seed, num_maps, values_per_part)
    return tuple(
        tuple(sorted(v for part in inputs for v in part if v % num_reduces == r))
        for r in range(num_reduces)
    )


def default_node_spec() -> NodeSpec:
    """The homogeneous node shape chaos runs (and the jobs smoke
    workload) build clusters from: small store, modest disk and NIC, so
    spilling and transfer effects show up at toy scales."""
    return NodeSpec(
        name="chaos-node",
        cores=4,
        memory_bytes=8 * GIB,
        object_store_bytes=256 * MIB,
        disk=DiskSpec(bandwidth_bytes_per_sec=200e6, seek_latency_s=5e-3),
        nic=NicSpec(bandwidth_bytes_per_sec=125e6),
    )


def submit_variant(
    variant: str, rt: Runtime, inputs: List[List[int]], num_reduces: int
) -> List[Any]:
    """Submit one variant's task graph; returns the reduce-output refs."""
    R = num_reduces

    def map_fn(part: List[int]) -> List[Tuple[int, ...]]:
        return [tuple(v for v in part if v % R == r) for r in range(R)]

    def reduce_fn(*blocks: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(sorted(v for block in blocks for v in block))

    def riffle_merge(*blocks: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        # F*R inputs laid out map-major; column r is blocks[r::R].
        return [
            tuple(sorted(v for block in blocks[r::R] for v in block))
            for r in range(R)
        ]

    def merge_one(*blocks: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(sorted(v for block in blocks for v in block))

    def streaming_reduce(
        state: Optional[Tuple[int, ...]], *blocks: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        merged = list(state or ())
        merged.extend(v for block in blocks for v in block)
        return tuple(sorted(merged))

    map_options = {"compute": _MAP_COMPUTE_S}
    merge_options = {"compute": _MERGE_COMPUTE_S}
    reduce_options = {"compute": _REDUCE_COMPUTE_S}
    if variant == "simple":
        return simple_shuffle(
            rt, inputs, map_fn, reduce_fn, R,
            map_options=map_options, reduce_options=reduce_options,
        )
    if variant == "riffle":
        return riffle_shuffle(
            rt, inputs, map_fn, riffle_merge, reduce_fn, R, merge_factor=2,
            map_options=map_options, merge_options=merge_options,
            reduce_options=reduce_options,
        )
    if variant == "riffle_dynamic":
        return riffle_shuffle_dynamic(
            rt, inputs, map_fn, riffle_merge, reduce_fn, R, merge_factor=2,
            map_options=map_options, merge_options=merge_options,
            reduce_options=reduce_options,
        )
    if variant == "magnet":
        return magnet_shuffle(
            rt, inputs, map_fn, merge_one, reduce_fn, R, merge_factor=2,
            map_options=map_options, merge_options=merge_options,
            reduce_options=reduce_options,
        )
    if variant == "push":
        return push_based_shuffle(
            rt, inputs, map_fn, merge_one, reduce_fn, R, map_parallelism=2,
            map_options=map_options, merge_options=merge_options,
            reduce_options=reduce_options,
        )
    if variant == "streaming":
        rounds = [inputs[: len(inputs) // 2], inputs[len(inputs) // 2:]]
        rounds = [rnd for rnd in rounds if rnd]
        return streaming_shuffle(
            rt, rounds, map_fn, streaming_reduce, R,
            map_options=map_options, reduce_options=reduce_options,
        )
    raise ValueError(
        f"unknown shuffle variant {variant!r}; expected one of {SHUFFLE_VARIANTS}"
    )


def run_chaos_shuffle(
    variant: str,
    plan: Optional[ChaosPlan] = None,
    *,
    seed: int = 0,
    num_nodes: int = 4,
    num_maps: int = 8,
    num_reduces: int = 4,
    values_per_part: int = 24,
    retry_policy: Optional[RetryPolicy] = None,
    blacklist_cooldown_s: float = 0.0,
    config: Optional[RuntimeConfig] = None,
    check_invariants: bool = True,
) -> ChaosRunReport:
    """Run one shuffle variant under an optional chaos plan.

    Builds a fresh homogeneous cluster, arms ``plan`` (if any), drives
    the variant to completion, drains every trailing simulation event
    (fault-window recoveries, node restarts), and -- unless disabled --
    runs the :class:`InvariantChecker` over the quiesced runtime.  Pass
    ``plan=None`` for the fault-free baseline the matrix tests compare
    against.
    """
    if config is None:
        config = RuntimeConfig(
            retry_policy=retry_policy or RetryPolicy(),
            blacklist_cooldown_s=blacklist_cooldown_s,
        )
    rt = Runtime.create(default_node_spec(), num_nodes, config=config)
    injector = ChaosInjector(rt, plan) if plan is not None else None
    inputs = make_inputs(seed, num_maps, values_per_part)

    def driver() -> List[Tuple[int, ...]]:
        refs = submit_variant(variant, rt, inputs, num_reduces)
        return rt.get(refs)

    values = rt.run(driver)
    duration = rt.now
    rt.env.run()  # drain recoveries/restarts so the runtime quiesces
    violations = InvariantChecker(rt).check() if check_invariants else []
    return ChaosRunReport(
        variant=variant,
        seed=seed,
        output=tuple(tuple(v) for v in values),
        duration=duration,
        stats=rt.stats(),
        injected=list(injector.injected) if injector is not None else [],
        violations=violations,
    )
