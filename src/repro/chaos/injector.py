"""Schedules a :class:`~repro.chaos.spec.ChaosPlan` against a live runtime.

The injector is the bridge between the declarative fault specs and the
data plane's degradation knobs: node ``fail``/``restart``, compute
dilation, disk/NIC rate factors, fabric link administration, and direct
object-store loss.  All events are armed at construction time (after the
whole plan validates -- an invalid plan arms nothing), fire via the
simulation clock, and are logged in :attr:`ChaosInjector.injected` for
test assertions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.chaos.spec import ChaosPlan, FaultKind, FaultSpec
from repro.common.ids import NodeId
from repro.common.rng import seeded_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.futures.runtime import Runtime
    from repro.futures.task import TaskSpec


class ChaosInjector:
    """Arms one :class:`ChaosPlan` against one :class:`Runtime`.

    Construction validates the *entire* plan first (raising ``ValueError``
    with zero events scheduled on any malformed fault), resolves every
    seeded victim, then schedules the fault onsets and recoveries on the
    runtime's simulation clock.  Straggler faults additionally install
    the runtime's ``task_delay_hook``.
    """

    def __init__(self, runtime: "Runtime", plan: ChaosPlan) -> None:
        self.runtime = runtime
        self.plan = plan
        self.env = runtime.env
        self.cluster = runtime.cluster
        num_nodes = len(self.cluster)
        plan.validate(num_nodes)
        #: Log of fired faults as ``(time, kind_value, node_id)`` tuples.
        self.injected: List[Tuple[float, str, Optional[NodeId]]] = []
        #: ``(fault_index, fault, victim_node_id_or_None)`` for straggler
        #: windows consulted by the task-delay hook.
        self._straggler_windows: List[
            Tuple[int, FaultSpec, Optional[NodeId]]
        ] = []
        for index, fault in enumerate(plan.faults):
            self._arm(index, fault, num_nodes)
        if self._straggler_windows:
            runtime.task_delay_hook = self._straggler_delay

    # -- scheduling ---------------------------------------------------------
    def _arm(self, index: int, fault: FaultSpec, num_nodes: int) -> None:
        if fault.kind is FaultKind.STRAGGLER:
            victim_id: Optional[NodeId] = None
            if fault.node_index is not None:
                victim_id = self.cluster.node_ids[fault.node_index]
            self._straggler_windows.append((index, fault, victim_id))
            self.env.call_later(
                fault.at_time,
                lambda: self._log(fault.kind, victim_id),
            )
            return
        if fault.kind is FaultKind.NODE_JOIN:
            self.env.call_later(fault.at_time, lambda: self._join(fault))
            return
        victim_index = self.plan.resolve_victim(index, fault, num_nodes)
        node = self.cluster.nodes[victim_index]
        if fault.kind is FaultKind.NODE_CRASH:
            self.env.call_later(fault.at_time, lambda: self._crash(fault, node))
        elif fault.kind is FaultKind.SLOW_NODE:
            self._arm_window(
                fault,
                node,
                start=lambda: node.set_compute_dilation(fault.severity),
                stop=lambda: node.set_compute_dilation(1.0),
            )
        elif fault.kind is FaultKind.DISK_STALL:
            self._arm_window(
                fault,
                node,
                start=lambda: node.degrade_disk(1.0 / fault.severity),
                stop=lambda: node.degrade_disk(1.0),
            )
        elif fault.kind is FaultKind.NET_DEGRADE:
            self._arm_window(
                fault,
                node,
                start=lambda: node.degrade_nic(1.0 / fault.severity),
                stop=lambda: node.degrade_nic(1.0),
            )
        elif fault.kind is FaultKind.LINK_DOWN:
            peer_index = self.plan.resolve_peer(
                index, fault, victim_index, num_nodes
            )
            peer = self.cluster.nodes[peer_index]
            self._arm_window(
                fault,
                node,
                start=lambda: self._set_link(node, peer, down=True),
                stop=lambda: self._set_link(node, peer, down=False),
            )
        elif fault.kind is FaultKind.OBJECT_LOSS:
            self.env.call_later(
                fault.at_time, lambda: self._lose_objects(index, fault, node)
            )
        elif fault.kind is FaultKind.NODE_DRAIN:
            self.env.call_later(fault.at_time, lambda: self._drain(fault, node))
        elif fault.kind is FaultKind.NODE_REMOVE:
            self.env.call_later(fault.at_time, lambda: self._remove(fault, node))
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ValueError(f"unhandled fault kind {fault.kind}")

    def _arm_window(self, fault: FaultSpec, node: "Node", start, stop) -> None:
        """Schedule a start/stop pair around the fault window."""

        def begin() -> None:
            self._log(fault.kind, node.node_id)
            start()

        self.env.call_later(fault.at_time, begin)
        self.env.call_later(fault.at_time + fault.duration, stop)

    def _log(self, kind: FaultKind, node_id: Optional[NodeId]) -> Optional[object]:
        """Record a fired fault; returns the bus event (for causal links)."""
        self.injected.append((self.env.now, kind.value, node_id))
        self.runtime.counters.add("chaos_faults_injected", 1)
        return self.runtime.bus.emit(
            "chaos.fault", node=node_id, fault=kind.value
        )

    # -- fault actions -------------------------------------------------------
    def _crash(self, fault: FaultSpec, node: "Node") -> None:
        event = self._log(fault.kind, node.node_id)
        # Note the fault's event seq so the ensuing node.death (and the
        # task.retry events it triggers) link back to this fault causally.
        self.runtime.note_fault_cause(
            node.node_id, getattr(event, "seq", None)
        )
        node.fail()
        self.env.call_later(fault.duration, lambda: self._restart(node))

    def _restart(self, node: "Node") -> None:
        node.restart()
        self.runtime.bus.emit("node.restart", node=node.node_id)

    # -- churn actions (cluster elasticity) -----------------------------------
    def _join(self, fault: FaultSpec) -> None:
        """A fresh node joins the running cluster (elastic scale-up)."""
        node_id = self.runtime.add_node()
        self._log(fault.kind, node_id)

    def _drain(self, fault: FaultSpec, node: "Node") -> None:
        """Drain the victim now; remove it when the window closes.

        If the victim is no longer active (a colliding fault already
        retired it), the fault fires as a logged no-op -- random plans
        may overlap churn on one node, and half-applying a transition
        would be worse than skipping it.
        """
        event = self._log(fault.kind, node.node_id)
        seq = getattr(event, "seq", None)
        runtime = self.runtime
        if not runtime.membership.is_active(node.node_id):
            return
        runtime.drain_node(node.node_id)

        def finish() -> None:
            if runtime.membership.is_draining(node.node_id):
                runtime.remove_node(node.node_id, cause=seq)

        self.env.call_later(fault.duration, finish)

    def _remove(self, fault: FaultSpec, node: "Node") -> None:
        """Remove the victim immediately (planned departure).

        Like :meth:`_drain`, a victim that already departed makes the
        fault a logged no-op.
        """
        event = self._log(fault.kind, node.node_id)
        runtime = self.runtime
        if runtime.membership.is_removed(node.node_id):
            return
        runtime.remove_node(node.node_id, cause=getattr(event, "seq", None))

    def _set_link(self, a: "Node", b: "Node", down: bool) -> None:
        # The fault models a broken cable: both directions go together.
        if down:
            self.cluster.set_link_down(a.node_id, b.node_id)
            self.cluster.set_link_down(b.node_id, a.node_id)
        else:
            self.cluster.set_link_up(a.node_id, b.node_id)
            self.cluster.set_link_up(b.node_id, a.node_id)

    def _lose_objects(self, index: int, fault: FaultSpec, node: "Node") -> None:
        """Silently drop a seeded fraction of the victim's resident objects.

        Pinned store entries are exempt: their bytes are mid-read by an
        executing task or in-flight transfer, and real corruption there
        surfaces as a task/transfer failure, not silent loss.  Lost
        primaries become directory-*lost* objects, reconstructed on demand
        by lineage (or surfacing ``ObjectLostError`` for ``put()`` data).
        """
        event = self._log(fault.kind, node.node_id)
        fault_seq = getattr(event, "seq", None)
        runtime = self.runtime
        manager = runtime.node_managers[node.node_id]
        rng = seeded_rng(self.plan.seed, "chaos-objloss", index)
        lost = 0
        for oid in manager.store.objects():
            if manager.store.is_pinned(oid):
                continue
            if rng.random() < fault.severity:
                manager.store.free(oid)
                runtime.directory.remove_memory_location(oid, node.node_id)
                runtime.maybe_drop_payload(oid)
                runtime.note_object_fault(oid, fault_seq)
                lost += 1
        for oid in manager.spill.spilled_objects():
            if rng.random() < fault.severity:
                manager.spill.forget(oid)
                runtime.maybe_drop_payload(oid)
                runtime.note_object_fault(oid, fault_seq)
                lost += 1
        runtime.counters.add("chaos_objects_lost", lost)

    # -- straggler hook ------------------------------------------------------
    def _straggler_delay(self, spec: "TaskSpec", node_id: NodeId) -> float:
        """The runtime's ``task_delay_hook``: extra seconds for one attempt.

        Deterministic in (plan seed, fault index, task index, attempt
        number) -- independent of wall-clock event ordering, so the same
        plan taxes the same attempts every run.
        """
        now = self.env.now
        total = 0.0
        for index, fault, victim_id in self._straggler_windows:
            if victim_id is not None and node_id != victim_id:
                continue
            if not fault.at_time <= now < fault.at_time + fault.duration:
                continue
            rng = seeded_rng(
                self.plan.seed,
                "chaos-straggler",
                index,
                spec.task_id.index,
                spec.attempts,
            )
            if rng.random() < fault.probability:
                total += fault.severity
        return total
