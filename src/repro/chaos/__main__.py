"""CLI entry point: ``python -m repro.chaos --smoke``.

The smoke mode runs a reduced failure matrix -- every fault kind against
the simple shuffle, plus a node crash against every variant -- and
verifies each run against the fault-free oracle and the invariant
checker.  Exit code 0 means every run produced correct output with zero
invariant violations; CI runs this as a fast end-to-end sanity gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.harness import SHUFFLE_VARIANTS, run_chaos_shuffle
from repro.chaos.spec import FaultKind, matrix_plan


def _smoke(seed: int) -> int:
    cases = [("simple", kind) for kind in FaultKind]
    cases += [
        (variant, FaultKind.NODE_CRASH)
        for variant in SHUFFLE_VARIANTS
        if variant != "simple"
    ]
    baselines = {}
    failures = 0
    for variant, kind in cases:
        if variant not in baselines:
            baselines[variant] = run_chaos_shuffle(variant, None, seed=seed)
        baseline = baselines[variant]
        report = run_chaos_shuffle(variant, matrix_plan(kind, seed=seed), seed=seed)
        ok = report.output == baseline.output and not report.violations
        failures += 0 if ok else 1
        status = "ok" if ok else "FAIL"
        print(
            f"{status:4s} {variant:15s} {kind.value:12s} "
            f"t={report.duration:7.2f}s retries={report.retries:3d} "
            f"violations={len(report.violations)}"
        )
        for violation in report.violations[:5]:
            print(f"       ! {violation}")
    print(f"{len(cases) - failures}/{len(cases)} chaos smoke cases passed")
    return 1 if failures else 0


def main(argv=None) -> int:
    """Parse arguments and run the requested chaos mode."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Chaos-harness smoke runner for the shuffle data plane.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the reduced failure matrix and exit nonzero on any "
        "incorrect output or invariant violation",
    )
    parser.add_argument("--seed", type=int, default=0, help="plan/workload seed")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    return _smoke(args.seed)


if __name__ == "__main__":
    sys.exit(main())
