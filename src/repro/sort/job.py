"""High-level sort job runner: what the Fig 4 benchmarks invoke.

Runs datagen (untimed, per the benchmark rules: input pre-exists on disk),
picks reducer boundaries, executes the chosen shuffle variant, optionally
injects node failures relative to the sort's start (§5.1.5), and validates
the output offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.blocks.real import DEFAULT_RECORD_BYTES
from repro.cluster import ClusterSpec, FailurePlan
from repro.common.errors import ObjectLostError
from repro.futures import Runtime
from repro.shuffle import (
    magnet_shuffle,
    push_based_shuffle,
    riffle_shuffle,
    simple_shuffle,
)
from repro.sort.datagen import generate_partitions
from repro.sort.ops import SortOps
from repro.sort.partitioner import sample_bounds, uniform_bounds
from repro.sort.validate import validate_sorted_output

#: The shuffle variants of §5.1.1, keyed by their paper names.
VARIANTS = ("simple", "merge", "magnet", "push", "push*")


#: Per-operator CPU throughputs (bytes of input+output per core-second).
#: Sorting runs at native memory-sort speed (gensort-style binary records
#: partition+sort at ~GB/s per core); merging pre-sorted runs is mostly
#: sequential memory movement and cheaper still.  With these rates, disk
#: is the bottleneck on the paper's HDD clusters (§5.1.1) and CPU is not.
SORT_THROUGHPUT = 1000 * 10**6
MERGE_THROUGHPUT = 2000 * 10**6


@dataclass
class SortJobConfig:
    """Parameters of one sort run."""

    variant: str = "simple"
    num_partitions: int = 16
    partition_bytes: int = 64 * 10**6
    num_reduces: Optional[int] = None  # defaults to num_partitions
    record_bytes: int = DEFAULT_RECORD_BYTES
    virtual: bool = True
    #: Persist reduce outputs to disk (external sort).  The in-memory
    #: experiment (Fig 4c) turns this off.
    output_to_disk: bool = True
    merge_factor: int = 4
    #: Concurrent map tasks per worker per round in the push variants.
    #: ``None`` auto-sizes so one round's working set (inputs + bundles +
    #: merged outputs) fits the object store, which is what keeps map
    #: bundles from spilling before their merge consumes them.
    map_parallelism: Optional[int] = None
    #: Rounds of merge tasks allowed in flight (push variants).
    pipeline_depth: int = 3
    validate: bool = True
    seed: int = 0
    failures: Sequence[FailurePlan] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; choose from {VARIANTS}"
            )
        if self.num_partitions < 1 or self.partition_bytes < self.record_bytes:
            raise ValueError("degenerate sort size")

    @property
    def total_bytes(self) -> int:
        return self.num_partitions * self.partition_bytes

    @property
    def reducers(self) -> int:
        return self.num_reduces or self.num_partitions


@dataclass
class SortResult:
    """Outcome and measurements of one sort run."""

    variant: str
    num_partitions: int
    total_bytes: int
    datagen_seconds: float
    sort_seconds: float
    stats: Dict[str, Any]
    validated: bool


def theoretical_sort_seconds(spec: ClusterSpec, data_bytes: int) -> float:
    """The paper's disk-bound lower bound: T = 4 D / B (§5.1.1).

    Each datum is read twice and written twice -- the external-sort
    minimum -- against the cluster's aggregate disk bandwidth.
    """
    return 4.0 * data_bytes / spec.aggregate_disk_bandwidth


def run_sort(rt: Runtime, config: SortJobConfig) -> SortResult:
    """Execute one sort job end to end on ``rt``; blocking."""

    def driver() -> SortResult:
        parts = generate_partitions(
            rt,
            config.num_partitions,
            config.partition_bytes,
            record_bytes=config.record_bytes,
            virtual=config.virtual,
            seed=config.seed,
        )
        if config.virtual:
            bounds = uniform_bounds(config.reducers)
        else:
            blocks = rt.get(parts)
            bounds = sample_bounds(blocks, config.reducers, seed=config.seed)
        ops = SortOps(bounds)
        expected_records = sum(
            rt.peek(ref).num_records for ref in parts
        )
        expected_checksum = (
            sum(rt.peek(ref).checksum() for ref in parts) % 2**64
        )

        datagen_seconds = rt.timestamp()
        sort_start = rt.timestamp()
        for plan in config.failures:
            _schedule_failure(rt, plan, offset=sort_start)

        out_refs = _submit_shuffle(rt, config, parts, ops)
        rt.wait(out_refs, num_returns=len(out_refs))
        sort_seconds = rt.timestamp() - sort_start

        validated = False
        if config.validate:
            outputs = []
            for ref in out_refs:
                try:
                    outputs.append(rt.peek(ref))
                except ObjectLostError:
                    # An output produced before a node failure died with
                    # the node; fetching it re-runs its lineage (post-
                    # timing, so the measurement is unaffected).
                    outputs.append(rt.get(ref))
            validate_sorted_output(
                outputs, bounds, expected_records, expected_checksum
            )
            validated = True
        return SortResult(
            variant=config.variant,
            num_partitions=config.num_partitions,
            total_bytes=config.total_bytes,
            datagen_seconds=datagen_seconds,
            sort_seconds=sort_seconds,
            stats=rt.stats(),
            validated=validated,
        )

    return rt.run(driver)


def _schedule_failure(rt: Runtime, plan: FailurePlan, offset: float) -> None:
    if plan.node_index is None:
        raise ValueError("sort failure plans must name a node_index")
    node = rt.cluster.nodes[plan.node_index]

    def kill() -> None:
        node.fail()
        rt.env.call_later(plan.downtime, node.restart)

    rt.env.call_later(offset - rt.env.now + plan.at_time, kill)


def _sort_cost(ctx: Any) -> float:
    return (ctx.input_bytes + ctx.output_bytes) / SORT_THROUGHPUT


def _merge_cost(ctx: Any) -> float:
    return (ctx.input_bytes + ctx.output_bytes) / MERGE_THROUGHPUT


def _submit_shuffle(
    rt: Runtime, config: SortJobConfig, parts: List[Any], ops: SortOps
) -> List[Any]:
    map_options = {"compute": _sort_cost}
    merge_options = {"compute": _merge_cost}
    reduce_options = {
        "compute": _merge_cost,
        "output_to_disk": config.output_to_disk,
    }
    if config.variant == "simple":
        return simple_shuffle(
            rt, parts, ops.map, ops.reduce, ops.num_reduces,
            map_options=map_options, reduce_options=reduce_options,
        )
    if config.variant == "merge":
        return riffle_shuffle(
            rt, parts, ops.map, ops.merge_columns, ops.reduce, ops.num_reduces,
            merge_factor=config.merge_factor, map_options=map_options,
            merge_options=merge_options, reduce_options=reduce_options,
        )
    if config.variant == "magnet":
        return magnet_shuffle(
            rt, parts, ops.map, ops.merge, ops.reduce, ops.num_reduces,
            merge_factor=config.merge_factor, map_options=map_options,
            merge_options=merge_options, reduce_options=reduce_options,
        )
    # push / push*: identical library, differing only in eager freeing of
    # map outputs (write amplification vs durability, §5.1.4).
    if config.map_parallelism is not None:
        map_parallelism = config.map_parallelism
    else:
        store_bytes = min(
            node.spec.object_store_bytes for node in rt.cluster.alive_nodes()
        )
        # A round's per-node working set is roughly (1 + pipeline_depth)
        # partition-sized pieces per concurrent map (input, outgoing
        # bundle, in-flight rounds of incoming bundles and merged
        # outputs); keep it inside the store.
        pieces = 2 * (1 + config.pipeline_depth)
        map_parallelism = max(
            1, min(8, store_bytes // (pieces * config.partition_bytes))
        )
    return push_based_shuffle(
        rt, parts, ops.map, ops.merge, ops.reduce, ops.num_reduces,
        map_parallelism=map_parallelism,
        pipeline_depth=config.pipeline_depth,
        free_map_outputs=(config.variant == "push*"),
        map_options=map_options, merge_options=merge_options,
        reduce_options=reduce_options,
    )
