"""The sort operator set plugged into the shuffle libraries.

One :class:`SortOps` instance binds the reducer boundaries and exposes the
map / merge / reduce callables each shuffle variant expects.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.blocks import (
    merge_sorted_blocks,
    partition_block,
    sort_block,
)
from repro.blocks.ops import Block


class SortOps:
    """Map/merge/reduce functions for a range-partitioned sort."""

    def __init__(self, bounds: Sequence[int]) -> None:
        self.bounds = list(bounds)
        self.num_reduces = len(self.bounds) + 1

    # -- operators ---------------------------------------------------------
    def map(self, part: Block) -> List[Block]:
        """Range-partition one input into per-reducer sorted runs."""
        return [sort_block(piece) for piece in partition_block(part, self.bounds)]

    def merge_columns(self, *blocks: Block) -> List[Block]:
        """Riffle merge: F x R map-major blocks -> R column-merged blocks."""
        num_reduces = self.num_reduces
        if len(blocks) % num_reduces != 0:
            raise ValueError(
                f"expected a multiple of {num_reduces} blocks, got {len(blocks)}"
            )
        rows = len(blocks) // num_reduces
        return [
            merge_sorted_blocks(
                [blocks[m * num_reduces + r] for m in range(rows)]
            )
            for r in range(num_reduces)
        ]

    def merge(self, *blocks: Block) -> Block:
        """Merge blocks destined for one reducer into one sorted run."""
        return merge_sorted_blocks(list(blocks))

    def reduce(self, *blocks: Block) -> Block:
        """Final reduce: merge a reducer's runs into its output partition."""
        return merge_sorted_blocks(list(blocks))
