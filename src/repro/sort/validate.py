"""Sort output validation (the benchmark's valsort equivalent).

For real blocks: every output sorted, outputs' key ranges respect the
reducer boundaries (so the concatenation is globally sorted), records and
content checksum conserved.  For virtual blocks: record conservation and
boundary containment (sortedness within a virtual block is a marker).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.blocks.ops import Block, total_records


class SortValidationError(AssertionError):
    """The sort output violates the benchmark's correctness rules."""


def validate_sorted_output(
    outputs: Sequence[Block],
    bounds: Sequence[int],
    expected_records: int,
    expected_checksum: int = None,
) -> None:
    """Raise :class:`SortValidationError` on any violation."""
    if len(outputs) != len(bounds) + 1:
        raise SortValidationError(
            f"expected {len(bounds) + 1} outputs, got {len(outputs)}"
        )
    got_records = total_records(outputs)
    if got_records != expected_records:
        raise SortValidationError(
            f"record count changed: expected {expected_records}, got {got_records}"
        )
    edges = [0] + [int(b) for b in bounds] + [None]
    for r, block in enumerate(outputs):
        lo_bound, hi_bound = edges[r], edges[r + 1]
        key_range = block.key_range
        if key_range is None:
            continue  # empty partition is fine
        lo, hi = key_range
        if lo < lo_bound:
            raise SortValidationError(
                f"output {r} has key {lo} below boundary {lo_bound}"
            )
        if hi_bound is not None and hi >= hi_bound:
            raise SortValidationError(
                f"output {r} has key {hi} at/above boundary {hi_bound}"
            )
        if not block.is_virtual:
            keys = block.keys
            if keys.size > 1 and np.any(keys[1:] < keys[:-1]):
                raise SortValidationError(f"output {r} is not sorted")
        elif not block.sorted:
            raise SortValidationError(f"virtual output {r} not marked sorted")
    if expected_checksum is not None:
        got = sum(block.checksum() for block in outputs) % 2**64
        if got != expected_checksum:
            raise SortValidationError(
                f"content checksum changed: {expected_checksum} -> {got}"
            )
