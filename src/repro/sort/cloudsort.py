"""CloudSort cost accounting.

The sort benchmark the paper runs has a cost-centric variant (CloudSort,
which Exoshuffle-on-Ray went on to win): the metric is *dollars to sort
the dataset* at public cloud prices.  Given a cluster of priced instance
types and a job completion time, this module computes the $/TB figure the
benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.units import TB

#: On-demand us-west-2-ish hourly prices for the paper's instance types
#: (absolute values matter less than their ratios; override per run).
DEFAULT_HOURLY_PRICES: Dict[str, float] = {
    "d3.2xlarge": 0.999,
    "i3.2xlarge": 0.624,
    "r6i.2xlarge": 0.504,
    "g4dn.4xlarge": 1.204,
}


@dataclass(frozen=True)
class CloudSortCost:
    """The cost report for one sort run."""

    instance_type: str
    num_nodes: int
    hourly_price: float
    job_seconds: float
    data_bytes: int

    @property
    def total_dollars(self) -> float:
        hours = self.job_seconds / 3600.0
        return self.num_nodes * self.hourly_price * hours

    @property
    def dollars_per_tb(self) -> float:
        return self.total_dollars / (self.data_bytes / TB)

    def __str__(self) -> str:
        return (
            f"{self.num_nodes}x {self.instance_type} for "
            f"{self.job_seconds:.0f}s: ${self.total_dollars:.2f} total, "
            f"${self.dollars_per_tb:.3f}/TB"
        )


def cloudsort_cost(
    instance_type: str,
    num_nodes: int,
    job_seconds: float,
    data_bytes: int,
    hourly_price: float = None,
) -> CloudSortCost:
    """Build the cost report, defaulting to the known price table."""
    if job_seconds <= 0 or num_nodes < 1 or data_bytes <= 0:
        raise ValueError("degenerate cost inputs")
    if hourly_price is None:
        try:
            hourly_price = DEFAULT_HOURLY_PRICES[instance_type]
        except KeyError:
            raise ValueError(
                f"no default price for {instance_type!r}; pass hourly_price"
            ) from None
    return CloudSortCost(
        instance_type=instance_type,
        num_nodes=num_nodes,
        hourly_price=hourly_price,
        job_seconds=job_seconds,
        data_bytes=data_bytes,
    )
