"""Range partitioning: choosing the reducer key boundaries.

TeraSort samples input keys to pick boundaries that balance reducer
sizes.  For real blocks we sample; for virtual blocks keys are uniform by
construction, so uniform cut points are exact.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.blocks.real import KEY_SPACE, RealBlock


def uniform_bounds(num_reduces: int, key_space: int = KEY_SPACE) -> List[int]:
    """Equal-width cut points: ``num_reduces - 1`` ascending boundaries."""
    if num_reduces < 1:
        raise ValueError("need at least one reducer")
    return [key_space * r // num_reduces for r in range(1, num_reduces)]


def sample_bounds(
    blocks: Sequence[RealBlock],
    num_reduces: int,
    samples_per_block: int = 100,
    seed: int = 0,
) -> List[int]:
    """Boundary keys from sampled quantiles of the actual data."""
    if num_reduces < 1:
        raise ValueError("need at least one reducer")
    rng = np.random.default_rng(seed)
    sampled = []
    for block in blocks:
        if block.num_records == 0:
            continue
        take = min(samples_per_block, block.num_records)
        sampled.append(rng.choice(block.keys, size=take, replace=False))
    if not sampled:
        return uniform_bounds(num_reduces)
    pool = np.sort(np.concatenate(sampled))
    quantiles = [
        pool[len(pool) * r // num_reduces] for r in range(1, num_reduces)
    ]
    # Boundaries must be strictly ascending for partition_block; nudge
    # duplicates (heavy skew) upward.
    bounds: List[int] = []
    previous = -1
    for q in quantiles:
        q = int(max(q, previous + 1))
        bounds.append(q)
        previous = q
    return bounds
