"""The Sort Benchmark (TeraSort/CloudSort) application (§5.1).

Provides dataset generation, range partitioning, the map/merge/reduce
operator set used by every shuffle variant, output validation, and a
high-level job runner that the Fig 4 benchmarks drive.
"""

from repro.sort.datagen import generate_partitions
from repro.sort.partitioner import sample_bounds, uniform_bounds
from repro.sort.ops import SortOps
from repro.sort.validate import SortValidationError, validate_sorted_output
from repro.sort.job import (
    SortJobConfig,
    SortResult,
    VARIANTS,
    run_sort,
    theoretical_sort_seconds,
)
from repro.sort.cloudsort import CloudSortCost, cloudsort_cost

__all__ = [
    "VARIANTS",
    "CloudSortCost",
    "cloudsort_cost",
    "generate_partitions",
    "uniform_bounds",
    "sample_bounds",
    "SortOps",
    "validate_sorted_output",
    "SortValidationError",
    "SortJobConfig",
    "SortResult",
    "run_sort",
    "theoretical_sort_seconds",
]
