"""Input generation: the benchmark's gensort equivalent.

Partitions are created by datagen *tasks* spread across the cluster, so
the input starts distributed (and, at TB scale, spilled to each node's
disk) exactly as a real sort benchmark's input sits in a distributed
filesystem.  Generation time is excluded from sort timings, matching the
benchmark rules.
"""

from __future__ import annotations

from typing import List

from repro.blocks import RealBlock, VirtualBlock
from repro.blocks.real import DEFAULT_RECORD_BYTES, KEY_SPACE
from repro.common.rng import derive_seed
from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import worker_nodes


def generate_partitions(
    rt: Runtime,
    num_partitions: int,
    partition_bytes: int,
    record_bytes: int = DEFAULT_RECORD_BYTES,
    virtual: bool = True,
    seed: int = 0,
) -> List[ObjectRef]:
    """Create the input partitions as distributed objects (blocking).

    Must be called from inside a driver.  Returns one ref per partition;
    partitions are pinned round-robin across workers like a distributed
    filesystem would place them.
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition")
    records_per_part = max(1, partition_bytes // record_bytes)
    nodes = worker_nodes(rt)

    def gen_virtual(index: int) -> VirtualBlock:
        del index
        return VirtualBlock(
            records_per_part,
            record_bytes=record_bytes,
            key_range=(0, KEY_SPACE - 1),
        )

    def gen_real(index: int) -> RealBlock:
        return RealBlock.generate(
            records_per_part,
            seed=derive_seed(seed, "datagen", index),
            record_bytes=record_bytes,
            key_space=KEY_SPACE,
        )

    gen_task = rt.remote(gen_virtual if virtual else gen_real)
    refs = [
        gen_task.options(node=nodes[i % len(nodes)]).remote(i)
        for i in range(num_partitions)
    ]
    rt.wait(refs, num_returns=len(refs))
    return refs
