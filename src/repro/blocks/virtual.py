"""Metadata-only blocks for TB-scale simulation."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.blocks.real import DEFAULT_RECORD_BYTES, KEY_SPACE


class VirtualBlock:
    """A block described by record count and key range, with no payload.

    Virtual blocks assume keys uniformly distributed over ``key_range``
    (true for the sort benchmark's generator); partitioning splits counts
    deterministically with exact conservation (largest-remainder rounding).
    """

    __slots__ = ("_num_records", "record_bytes", "_key_range", "sorted")

    def __init__(
        self,
        num_records: int,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        key_range: Optional[Tuple[int, int]] = (0, KEY_SPACE),
        is_sorted: bool = False,
    ) -> None:
        if num_records < 0:
            raise ValueError("negative record count")
        if record_bytes < 8:
            raise ValueError("records must be at least key-sized (8 bytes)")
        if key_range is not None and key_range[0] > key_range[1]:
            raise ValueError(f"inverted key range {key_range}")
        self._num_records = int(num_records)
        self.record_bytes = record_bytes
        self._key_range = key_range if num_records > 0 else None
        self.sorted = is_sorted

    # -- the Block interface ----------------------------------------------
    @property
    def num_records(self) -> int:
        return self._num_records

    @property
    def size_bytes(self) -> int:
        return self._num_records * self.record_bytes

    @property
    def key_range(self) -> Optional[Tuple[int, int]]:
        return self._key_range

    @property
    def is_virtual(self) -> bool:
        return True

    def checksum(self) -> int:
        """Virtual blocks fingerprint by record count only."""
        return self._num_records

    def __repr__(self) -> str:
        return (
            f"VirtualBlock(records={self.num_records}, "
            f"bytes={self.size_bytes}, range={self._key_range})"
        )
