"""Partition / merge / sort over blocks, real or virtual.

These are the building blocks of every map/merge/reduce function the
shuffle libraries use.  All operations conserve record counts exactly --
``sum(num_records)`` is invariant under any composition -- which is how
TB-scale virtual runs are validated.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.blocks.real import RealBlock
from repro.blocks.virtual import VirtualBlock

Block = Union[RealBlock, VirtualBlock]


def total_records(blocks: Sequence[Block]) -> int:
    """Total record count across ``blocks`` (the conserved invariant)."""
    return sum(block.num_records for block in blocks)


def _check_uniform(blocks: Sequence[Block]) -> bool:
    """All real or all virtual; returns True when virtual."""
    if not blocks:
        raise ValueError("no blocks given")
    kinds = {block.is_virtual for block in blocks}
    if len(kinds) != 1:
        raise TypeError("cannot mix real and virtual blocks in one operation")
    return blocks[0].is_virtual


def partition_block(block: Block, bounds: Sequence[int]) -> List[Block]:
    """Split ``block`` into ``len(bounds) + 1`` range partitions.

    ``bounds`` are ascending cut points; partition ``r`` receives keys in
    ``[bounds[r-1], bounds[r])`` (with open ends).  This is the map-side
    operation of a range-partitioned sort.
    """
    bounds = list(bounds)
    if any(a > b for a, b in zip(bounds, bounds[1:])):
        raise ValueError("partition bounds must be ascending")
    if block.is_virtual:
        return _partition_virtual(block, bounds)
    return _partition_real(block, bounds)


def _partition_real(block: RealBlock, bounds: List[int]) -> List[Block]:
    buckets = np.searchsorted(np.asarray(bounds, dtype=np.uint64), block.keys, "right")
    order = np.argsort(buckets, kind="stable")
    sorted_buckets = buckets[order]
    sorted_keys = block.keys[order]
    splits = np.searchsorted(sorted_buckets, np.arange(1, len(bounds) + 1))
    pieces = np.split(sorted_keys, splits)
    return [
        RealBlock(piece, record_bytes=block.record_bytes) for piece in pieces
    ]


def _partition_virtual(block: VirtualBlock, bounds: List[int]) -> List[Block]:
    num_parts = len(bounds) + 1
    if block.key_range is None:  # empty block
        return [
            VirtualBlock(0, record_bytes=block.record_bytes, key_range=None)
            for _ in range(num_parts)
        ]
    lo, hi = block.key_range
    span = hi - lo + 1
    edges = [lo] + [min(max(b, lo), hi + 1) for b in bounds] + [hi + 1]
    fractions = [(edges[i + 1] - edges[i]) / span for i in range(num_parts)]
    counts = _largest_remainder(block.num_records, fractions)
    out: List[Block] = []
    for i, count in enumerate(counts):
        if count == 0:
            key_range = None
        else:
            key_range = (edges[i], max(edges[i], edges[i + 1] - 1))
        out.append(
            VirtualBlock(count, record_bytes=block.record_bytes, key_range=key_range)
        )
    return out


def _largest_remainder(total: int, fractions: Sequence[float]) -> List[int]:
    """Apportion ``total`` by ``fractions`` with exact conservation."""
    raw = [total * f for f in fractions]
    counts = [int(x) for x in raw]
    shortfall = total - sum(counts)
    remainders = sorted(
        range(len(raw)), key=lambda i: (raw[i] - counts[i], -i), reverse=True
    )
    for i in remainders[:shortfall]:
        counts[i] += 1
    return counts


def sort_block(block: Block) -> Block:
    """Sort a single block by key."""
    if block.is_virtual:
        return VirtualBlock(
            block.num_records,
            record_bytes=block.record_bytes,
            key_range=block.key_range,
            is_sorted=True,
        )
    return RealBlock(
        np.sort(block.keys), record_bytes=block.record_bytes, is_sorted=True
    )


def merge_sorted_blocks(blocks: Sequence[Block]) -> Block:
    """K-way merge of blocks into one sorted block."""
    virtual = _check_uniform(blocks)
    if virtual:
        return _combine_virtual(blocks, is_sorted=True)
    keys = np.concatenate([block.keys for block in blocks])
    return RealBlock(
        np.sort(keys), record_bytes=blocks[0].record_bytes, is_sorted=True
    )


def concat_blocks(blocks: Sequence[Block]) -> Block:
    """Concatenate blocks without sorting."""
    virtual = _check_uniform(blocks)
    if virtual:
        return _combine_virtual(blocks, is_sorted=False)
    keys = np.concatenate([block.keys for block in blocks])
    return RealBlock(keys, record_bytes=blocks[0].record_bytes, is_sorted=False)


def _combine_virtual(blocks: Sequence[Block], is_sorted: bool) -> VirtualBlock:
    ranges = [block.key_range for block in blocks if block.key_range is not None]
    if ranges:
        key_range = (min(r[0] for r in ranges), max(r[1] for r in ranges))
    else:
        key_range = None
    return VirtualBlock(
        total_records(blocks),
        record_bytes=blocks[0].record_bytes,
        key_range=key_range,
        is_sorted=is_sorted,
    )
