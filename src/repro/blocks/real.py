"""Blocks backed by actual numpy key arrays."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: The sort benchmark's record layout: 10-byte key, 90-byte value.  Keys
#: are modelled as uint64 draws from a bounded key space.
DEFAULT_RECORD_BYTES = 100
KEY_SPACE = 2**32


class RealBlock:
    """A block of records with materialised keys.

    Only keys are materialised (values are never inspected by sort or
    aggregation), but ``size_bytes`` accounts for full records so the
    storage layer sees realistic volumes.
    """

    __slots__ = ("keys", "record_bytes", "sorted")

    def __init__(
        self,
        keys: np.ndarray,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        is_sorted: bool = False,
    ) -> None:
        if record_bytes < 8:
            raise ValueError("records must be at least key-sized (8 bytes)")
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        self.keys = keys
        self.record_bytes = record_bytes
        self.sorted = is_sorted

    @classmethod
    def generate(
        cls,
        num_records: int,
        seed: int,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        key_space: int = KEY_SPACE,
    ) -> "RealBlock":
        """Uniform random records, as the sort benchmark's gensort does."""
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, key_space, size=num_records, dtype=np.uint64)
        return cls(keys, record_bytes=record_bytes)

    # -- the Block interface -------------------------------------------------
    @property
    def num_records(self) -> int:
        return int(self.keys.size)

    @property
    def size_bytes(self) -> int:
        return self.num_records * self.record_bytes

    @property
    def key_range(self) -> Optional[Tuple[int, int]]:
        """(min, max) of present keys; None when empty."""
        if self.keys.size == 0:
            return None
        return int(self.keys.min()), int(self.keys.max())

    @property
    def is_virtual(self) -> bool:
        return False

    def checksum(self) -> int:
        """Additive content fingerprint, mod 2**64.

        Sums compose across any re-grouping of records, so the total over
        all blocks is conserved by partition/merge/sort.
        """
        with np.errstate(over="ignore"):
            key_sum = int(np.sum(self.keys, dtype=np.uint64))
        return (key_sum + self.num_records) % 2**64

    def __repr__(self) -> str:
        return (
            f"RealBlock(records={self.num_records}, "
            f"bytes={self.size_bytes}, sorted={self.sorted})"
        )
