"""Data-plane payloads: blocks of keyed records, real or virtual.

The paper moves terabytes of 100-byte records; this reproduction runs the
same algorithms over two interchangeable payload types:

- :class:`RealBlock` -- an actual numpy array of integer keys (plus a
  per-record payload width).  Used at MB scale to validate true
  end-to-end sortedness and aggregation correctness.
- :class:`VirtualBlock` -- size and key-range metadata only.  Used at
  TB scale so the runtime's allocation, spilling, transfer, and GC paths
  are exercised with realistic byte counts without materialising the data.

Both satisfy the same interface (``size_bytes``, ``num_records``,
``key_range``, ``sorted``), and :mod:`repro.blocks.ops` implements
partition/merge/sort over either, conserving record counts exactly --
the invariant the property-based tests check.
"""

from repro.blocks.real import RealBlock
from repro.blocks.virtual import VirtualBlock
from repro.blocks.ops import (
    concat_blocks,
    merge_sorted_blocks,
    partition_block,
    sort_block,
    total_records,
)

__all__ = [
    "RealBlock",
    "VirtualBlock",
    "partition_block",
    "merge_sorted_blocks",
    "sort_block",
    "concat_blocks",
    "total_records",
]
