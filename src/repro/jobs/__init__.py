"""Multi-tenant job control plane over the distributed-futures runtime.

The paper's architecture runs one shuffle job per driver program; real
clusters run many jobs from many tenants at once.  This package layers a
control plane on :class:`~repro.futures.Runtime` without touching the
shuffle libraries themselves:

- :class:`JobSpec` / :class:`Job` -- declarative job descriptions and
  lifecycle records (queued -> admitted -> running -> done / failed /
  cancelled / rejected), with typed errors in :mod:`repro.common.errors`;
- :class:`AdmissionController` -- per-tenant quotas (concurrent jobs,
  aggregate store bytes, task slots) with bounded queueing and
  backpressure;
- :class:`~repro.futures.FairShareScheduler` integration -- admitted
  jobs' tasks dispatch by weighted virtual-time fair queueing instead of
  global FIFO, composing with the existing locality/blacklist placement;
- :class:`ShufflePlanner` -- a cost model ranking every shuffle variant
  from the cluster profile and job shape (``variant="auto"``);
- per-job/per-tenant metrics -- every charge lands in the global
  counters *and* the owning job's bucket, an exact-sum invariant the
  chaos checker asserts.

``python -m repro.jobs --smoke`` runs a mixed multi-tenant workload
(including a quota rejection and a chaos plan under concurrent jobs) as
a CI gate; see ``docs/jobs.md`` for the full tour.
"""

from repro.jobs.admission import AdmissionController
from repro.jobs.manager import JobManager, job_runner, register_job_runner
from repro.jobs.planner import (
    ClusterProfile,
    JobShape,
    PlanEstimate,
    ShufflePlanner,
)
from repro.jobs.spec import (
    Job,
    JobSpec,
    JobState,
    StreamSpec,
    TERMINAL_STATES,
    TenantQuota,
    TenantSpec,
)
from repro.jobs.workload import (
    JobsRunReport,
    default_tenants,
    mixed_workload,
    run_jobs,
    verify_outputs,
)

__all__ = [
    "AdmissionController",
    "ClusterProfile",
    "Job",
    "JobManager",
    "JobShape",
    "JobSpec",
    "JobState",
    "JobsRunReport",
    "PlanEstimate",
    "ShufflePlanner",
    "StreamSpec",
    "TERMINAL_STATES",
    "TenantQuota",
    "TenantSpec",
    "default_tenants",
    "job_runner",
    "mixed_workload",
    "register_job_runner",
    "run_jobs",
    "verify_outputs",
]
