"""Admission control: per-tenant quotas with bounded queueing.

The controller is the gatekeeper between submission and execution.  It
answers three questions deterministically:

- **Reject now?**  A job whose declared footprint exceeds its tenant's
  quota outright can never be admitted, so it is rejected at submission
  with a typed error (:class:`~repro.common.errors.TenantQuotaExceededError`)
  rather than queued forever.
- **Queue or push back?**  Each tenant's admission queue is bounded
  (``TenantQuota.max_queued_jobs``); submission past the bound raises
  :class:`~repro.common.errors.AdmissionQueueFullError` -- backpressure
  to the submitter instead of unbounded buffering in the control plane.
- **Admit whom next?**  :meth:`AdmissionController.admit_ready` releases
  queued jobs in FIFO order per tenant while the tenant stays under its
  concurrent-job and aggregate store-byte limits; round-robin across
  tenants keeps one tenant's deep queue from starving another's.

The controller tracks only control-plane state (counts and byte
estimates); actually running jobs is the
:class:`~repro.jobs.manager.JobManager`'s business.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import (
    AdmissionQueueFullError,
    JobCancelledError,
    TenantQuotaExceededError,
    UnknownTenantError,
)
from repro.jobs.spec import Job, JobState, TenantSpec


class AdmissionController:
    """Quota enforcement and bounded queueing for job submission."""

    def __init__(self) -> None:
        self._tenants: Dict[str, TenantSpec] = {}
        self._queues: Dict[str, Deque[Job]] = {}
        self._running: Dict[str, int] = {}
        self._admitted_bytes: Dict[str, int] = {}
        #: Rotation order for round-robin admission across tenants.
        self._rotation: List[str] = []

    # -- tenant registry -----------------------------------------------------
    def register_tenant(self, tenant: TenantSpec) -> None:
        """Add a tenant; re-registering an existing name is an error."""
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} already registered")
        self._tenants[tenant.name] = tenant
        self._queues[tenant.name] = deque()
        self._running[tenant.name] = 0
        self._admitted_bytes[tenant.name] = 0
        self._rotation.append(tenant.name)

    def tenant(self, name: str) -> TenantSpec:
        """Look up a tenant spec by name (typed error when unknown)."""
        spec = self._tenants.get(name)
        if spec is None:
            raise UnknownTenantError(name)
        return spec

    def tenants(self) -> List[TenantSpec]:
        """All registered tenants in registration order."""
        return [self._tenants[name] for name in self._rotation]

    # -- submission ----------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Queue a job, or raise the typed rejection it deserves.

        Raises :class:`UnknownTenantError`,
        :class:`TenantQuotaExceededError` (footprint can never fit), or
        :class:`AdmissionQueueFullError` (bounded-queue backpressure).
        The caller marks the job REJECTED on exception.
        """
        tenant = self.tenant(job.spec.tenant)
        quota = tenant.quota
        needed = job.spec.estimated_store_bytes
        if quota.max_store_bytes is not None and needed > quota.max_store_bytes:
            raise TenantQuotaExceededError(
                tenant.name, "store bytes", needed, quota.max_store_bytes
            )
        queue = self._queues[tenant.name]
        if len(queue) >= quota.max_queued_jobs:
            raise AdmissionQueueFullError(tenant.name, len(queue))
        job.state = JobState.QUEUED
        queue.append(job)

    def cancel(self, job: Job) -> None:
        """Withdraw a still-queued job (CANCELLED with a typed error)."""
        queue = self._queues.get(job.spec.tenant)
        if queue is None or job not in queue:
            raise ValueError(f"job {job.job_id!r} is not queued")
        queue.remove(job)
        job.state = JobState.CANCELLED
        job.error = JobCancelledError(job.job_id)

    # -- admission -----------------------------------------------------------
    def _can_admit(self, tenant: TenantSpec, job: Job) -> bool:
        quota = tenant.quota
        if self._running[tenant.name] >= quota.max_concurrent_jobs:
            return False
        if quota.max_store_bytes is not None:
            footprint = self._admitted_bytes[tenant.name]
            if footprint + job.spec.estimated_store_bytes > quota.max_store_bytes:
                return False
        return True

    def admit_ready(self) -> List[Job]:
        """Release every job that now fits, round-robin across tenants.

        Each pass over the rotation admits at most one job per tenant
        (its queue head, FIFO within the tenant) until no tenant can
        admit more; the admitted jobs are returned in admission order.
        The caller transitions them to ADMITTED and starts them.
        """
        admitted: List[Job] = []
        progress = True
        while progress:
            progress = False
            for name in self._rotation:
                queue = self._queues[name]
                if not queue:
                    continue
                tenant = self._tenants[name]
                job = queue[0]
                if not self._can_admit(tenant, job):
                    continue
                queue.popleft()
                self._running[name] += 1
                self._admitted_bytes[name] += job.spec.estimated_store_bytes
                admitted.append(job)
                progress = True
        return admitted

    def release(self, job: Job) -> None:
        """Return an admitted job's quota (it reached a terminal state)."""
        name = job.spec.tenant
        if self._running.get(name, 0) > 0:
            self._running[name] -= 1
        held = self._admitted_bytes.get(name, 0)
        self._admitted_bytes[name] = max(
            0, held - job.spec.estimated_store_bytes
        )

    # -- introspection -------------------------------------------------------
    def queued_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        """Jobs awaiting admission (one tenant's, or all in rotation order)."""
        names = [tenant] if tenant is not None else self._rotation
        out: List[Job] = []
        for name in names:
            out.extend(self._queues.get(name, ()))
        return out

    def running_count(self, tenant: str) -> int:
        """How many of a tenant's jobs are currently admitted or running."""
        return self._running.get(tenant, 0)
