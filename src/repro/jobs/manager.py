"""The job manager: admission, fair sharing, planning, and execution.

:class:`JobManager` ties the control plane together around one
:class:`~repro.futures.Runtime`:

- jobs are submitted against registered tenants and pass through the
  :class:`~repro.jobs.admission.AdmissionController` (typed rejections,
  bounded queues);
- admitted jobs register with the runtime's
  :class:`~repro.futures.FairShareScheduler` (weight = tenant weight x
  job weight, tenant task-slot caps) and run as labeled cooperative
  subdrivers, so every task they submit is stamped with their job id and
  both scheduling and accounting see job boundaries;
- ``variant="auto"`` jobs are resolved by the
  :class:`~repro.jobs.planner.ShufflePlanner` cost model before launch;
- per-job metrics (queue wait, task-seconds, bytes) accumulate in the
  runtime's per-job counter buckets and a queue-wait
  :class:`~repro.metrics.Histogram`.

Job bodies never leak exceptions into the simulation: a failing job is
recorded as ``FAILED`` with its error and its quota is released, while
sibling jobs keep running.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.harness import make_inputs, submit_variant
from repro.common.errors import JobControlError
from repro.futures import DriverHandle, FairShareScheduler, Runtime
from repro.jobs.admission import AdmissionController
from repro.jobs.planner import JobShape, ShufflePlanner
from repro.jobs.spec import Job, JobSpec, JobState, TenantSpec
from repro.metrics import Histogram
from repro.plan import ShuffleExpr, planner_for_runtime


#: Pluggable job-runner bodies keyed by mode name.  A runner is called
#: inside the job's labeled subdriver as ``runner(manager, job)`` and
#: returns the job's output.  Higher tiers register themselves here on
#: import -- e.g. :mod:`repro.streaming` registers ``"streaming"`` -- so
#: the control plane dispatches to them without importing them (the
#: jobs layer stays below optional tiers in the layering order).
_JOB_RUNNERS: Dict[str, Callable[["JobManager", Job], Any]] = {}


def register_job_runner(
    mode: str, runner: Callable[["JobManager", Job], Any]
) -> None:
    """Register (or replace) the runner body for ``mode`` jobs."""
    _JOB_RUNNERS[mode] = runner


def job_runner(mode: str) -> Callable[["JobManager", Job], Any]:
    """Look up a registered runner; raises with an import hint when the
    providing tier has not been loaded."""
    runner = _JOB_RUNNERS.get(mode)
    if runner is None:
        raise JobControlError(
            f"no job runner registered for mode {mode!r}; import the tier "
            f"that provides it (e.g. repro.streaming for 'streaming')"
        )
    return runner


class JobManager:
    """Drives multi-tenant jobs through admission, fair-share execution,
    and per-job accounting on one runtime."""

    def __init__(
        self,
        runtime: Runtime,
        *,
        slots_per_core: float = 1.0,
        planner: Optional[ShufflePlanner] = None,
    ) -> None:
        self.runtime = runtime
        # Duck-typed: any scheduler whose dispatch policy supports jobs
        # works (e.g. RuntimeConfig(dispatch_policy="fair-share")); a
        # plain FIFO scheduler is upgraded to fair sharing in place.
        if getattr(runtime.scheduler, "supports_fair_share", False):
            self.fair = runtime.scheduler
        else:
            self.fair = FairShareScheduler(
                runtime, slots_per_core=slots_per_core
            )
            runtime.scheduler = self.fair
        self.admission = AdmissionController()
        # The planning surface behind ``variant="auto"``: by default the
        # runtime's shared :class:`repro.plan.AdaptivePlanner` (honouring
        # the ``planner=`` / ``replan=`` config knobs); a legacy
        # :class:`ShufflePlanner` passed explicitly still works.
        self.planner = planner or planner_for_runtime(runtime)
        #: Every job ever submitted, keyed by job id, in submission order.
        self.jobs: Dict[str, Job] = {}
        #: Queue-wait distribution (seconds from submission to admission).
        self.queue_wait = Histogram("job_queue_wait_s")
        self._ids = itertools.count()

    # -- registration ---------------------------------------------------------
    def add_tenant(self, tenant: TenantSpec) -> None:
        """Register a tenant before submitting its jobs."""
        self.admission.register_tenant(tenant)

    def submit(self, spec: JobSpec) -> Job:
        """Submit a job; returns its lifecycle record.

        Typed control-plane rejections
        (:class:`~repro.common.errors.JobControlError` subclasses) are
        recorded on the job as ``REJECTED`` and re-raised, so the caller
        both observes the typed error and can inspect the record later.
        """
        job_id = f"job-{next(self._ids)}"
        job = Job(spec=spec, job_id=job_id, submitted_at=self.runtime.now)
        self.jobs[job_id] = job
        bus = self.runtime.bus
        bus.emit(
            "job.submit", job=job_id, tenant=spec.tenant, name=spec.name
        )
        try:
            self.admission.submit(job)
        except JobControlError as exc:
            job.state = JobState.REJECTED
            job.error = exc
            job.finished_at = self.runtime.now
            bus.emit(
                "job.reject",
                job=job_id,
                tenant=spec.tenant,
                error=type(exc).__name__,
            )
            raise
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a still-queued job (typed error recorded on the job)."""
        self.admission.cancel(job)
        job.finished_at = self.runtime.now
        self.runtime.bus.emit(
            "job.cancel", job=job.job_id, tenant=job.spec.tenant
        )

    # -- execution ------------------------------------------------------------
    def run(self) -> List[Job]:
        """Run every submitted job to a terminal state; returns them all.

        This is the blocking entry point: it drives the runtime's
        simulation until each queued job has been admitted, executed as a
        fair-share subdriver, and reaped.
        """
        self.runtime.run(self.drive)
        return list(self.jobs.values())

    def drive(self) -> None:
        """The control-plane driver loop (already inside ``runtime.run``).

        Use this instead of :meth:`run` to compose the manager with other
        driver-side work (e.g. arming a chaos plan first).
        """
        rt = self.runtime
        live: Dict[str, DriverHandle] = {}
        while True:
            for job in self.admission.admit_ready():
                self._admit(job)
                live[job.job_id] = rt.spawn_driver(
                    self._run_job,
                    job,
                    name=f"job:{job.job_id}",
                    label=job.job_id,
                )
            if not live:
                if self.admission.queued_jobs():
                    raise RuntimeError(
                        "admission stalled with no running jobs"
                    )  # pragma: no cover - admission always releases idle tenants
                break
            # Sleep until at least one job finishes; _run_job never leaks
            # exceptions, so the completion events always succeed.
            rt.wait_event(rt.env.any_of([h.done for h in live.values()]))
            for job_id in [jid for jid, h in live.items() if h.finished]:
                handle = live.pop(job_id)
                job = self.jobs[job_id]
                rt.join_driver(handle)
                self.fair.unregister_job(job_id)
                self.admission.release(job)

    def _admit(self, job: Job) -> None:
        job.state = JobState.ADMITTED
        job.admitted_at = self.runtime.now
        self.queue_wait.record(job.queue_wait or 0.0)
        tenant = self.admission.tenant(job.spec.tenant)
        self.fair.register_job(
            job.job_id,
            weight=tenant.weight * job.spec.weight,
            tenant=tenant.name,
            tenant_task_slots=tenant.quota.max_task_slots,
        )
        self.runtime.bus.emit(
            "job.admit",
            job=job.job_id,
            tenant=tenant.name,
            weight=tenant.weight * job.spec.weight,
            queue_wait_s=job.queue_wait or 0.0,
        )

    def _resolve_variant(self, job: Job) -> str:
        """Resolve the job's variant through the plan surface.

        A ``spec.plan`` hook wins: an already-lowered plan is executed
        as-is, an expression is lowered by the manager's planner.  Then
        explicit variants pass straight through, and ``"auto"`` lowers
        the shape-derived expression -- with the cost model by default,
        exactly as the legacy :class:`ShufflePlanner` path did.
        """
        spec = job.spec
        if spec.plan is not None and hasattr(spec.plan, "estimate"):
            job.plan = spec.plan
            return spec.plan.variant
        if spec.plan is not None:
            expr = spec.plan
        elif spec.stream is not None:
            # Streaming jobs are pinned to the streaming tier, but still
            # lower through the plan surface so the shape and estimate
            # are recorded (and ``plan.lower`` emitted when re-planning
            # is on).  Total bytes = every record the sources will emit.
            expr = ShuffleExpr(
                shape=JobShape(
                    total_bytes=int(
                        spec.num_maps
                        * spec.stream.expected_records
                        * spec.stream.bytes_per_record
                    ),
                    num_maps=spec.num_maps,
                    num_reduces=spec.num_reduces,
                    streaming=True,
                ),
                backend="streaming",
                label=spec.name,
            )
        elif spec.variant != "auto":
            return spec.variant
        else:
            expr = ShuffleExpr(
                shape=JobShape(
                    total_bytes=spec.estimated_store_bytes,
                    num_maps=spec.num_maps,
                    num_reduces=spec.num_reduces,
                    streaming=False,
                ),
                label=spec.name,
            )
        if hasattr(self.planner, "plan"):
            plan = self.planner.plan(
                expr, default_rule="cost", job=job.job_id
            )
            job.plan = plan
            return plan.variant
        # Legacy planners (bare ShufflePlanner) only see the shape.
        if spec.stream is not None:
            return "streaming"
        return self.planner.choose(expr.shape)

    def _run_job(self, job: Job) -> Job:
        """The per-job subdriver body: plan, submit, block, record.

        Runs labeled with the job id, so every task it submits is
        stamped for fair sharing and accounting.  All errors -- including
        exhausted retries under chaos -- are captured on the job record;
        the body itself never raises, keeping sibling jobs unaffected.
        """
        rt = self.runtime
        job.state = JobState.RUNNING
        job.started_at = rt.now
        start = rt.bus.emit(
            "job.start", job=job.job_id, tenant=job.spec.tenant
        )
        start_seq = start.seq if start is not None else None
        try:
            if job.spec.stream is not None:
                job.planned_variant = self._resolve_variant(job)
                job.output = job_runner("streaming")(self, job)
            else:
                variant = self._resolve_variant(job)
                job.planned_variant = variant
                spec = job.spec
                inputs = make_inputs(
                    spec.seed, spec.num_maps, spec.values_per_part
                )
                refs = submit_variant(variant, rt, inputs, spec.num_reduces)
                values = rt.get(refs)
                job.output = tuple(tuple(v) for v in values)
            job.state = JobState.DONE
        except Exception as exc:  # noqa: BLE001 - captured on the record
            job.state = JobState.FAILED
            job.error = exc
        job.finished_at = rt.now
        if job.state is JobState.DONE:
            rt.bus.emit(
                "job.done",
                job=job.job_id,
                tenant=job.spec.tenant,
                cause=start_seq,
                variant=job.planned_variant,
            )
        else:
            rt.bus.emit(
                "job.fail",
                job=job.job_id,
                tenant=job.spec.tenant,
                cause=start_seq,
                error=type(job.error).__name__,
            )
        return job

    # -- metrics --------------------------------------------------------------
    def job_metrics(self, job_id: str) -> Dict[str, float]:
        """One job's counter bucket (task-seconds, bytes, retries, ...)."""
        bucket = self.runtime.job_counters.get(job_id)
        return bucket.snapshot() if bucket is not None else {}

    def tenant_metrics(self) -> Dict[str, Dict[str, float]]:
        """Counter buckets aggregated per tenant."""
        out: Dict[str, Dict[str, float]] = {}
        for job_id, job in self.jobs.items():
            bucket = self.runtime.job_counters.get(job_id)
            if bucket is None:
                continue
            agg = out.setdefault(job.spec.tenant, {})
            for key, value in bucket.snapshot().items():
                agg[key] = agg.get(key, 0.0) + value
        return out

    def completion_ratio(self) -> Optional[float]:
        """Max/min completion-time ratio across DONE jobs (the fairness
        figure of merit; ``None`` with fewer than two finished jobs)."""
        durations = [
            job.duration
            for job in self.jobs.values()
            if job.state is JobState.DONE and job.duration
        ]
        if len(durations) < 2:
            return None
        return max(durations) / min(durations)

    def report(self) -> List[Dict[str, Any]]:
        """One summary row per job (state, variant, timings, key counters)."""
        rows = []
        for job in self.jobs.values():
            metrics = self.job_metrics(job.job_id)
            rows.append(
                {
                    "job_id": job.job_id,
                    "name": job.spec.name,
                    "tenant": job.spec.tenant,
                    "state": job.state.value,
                    "variant": job.planned_variant or job.spec.variant,
                    "queue_wait_s": job.queue_wait,
                    "duration_s": job.duration,
                    "tasks_finished": metrics.get("tasks_finished", 0.0),
                    "compute_seconds": metrics.get("compute_seconds", 0.0),
                    "task_output_bytes": metrics.get("task_output_bytes", 0.0),
                    "error": repr(job.error) if job.error else None,
                }
            )
        return rows
