"""Mixed multi-tenant workloads and the chaos-under-jobs runner.

Builds deterministic fleets of oracle-checked sort jobs (the chaos
harness workload: partition integers by residue, sort each partition)
spread across tenants and shuffle variants, and runs them through a
:class:`~repro.jobs.manager.JobManager` -- optionally with a
:class:`~repro.chaos.ChaosPlan` firing underneath.  Because every job
computes a pure function of ``(seed, shape)``, correctness under
concurrency and faults reduces to comparing each job's output with
:func:`repro.chaos.expected_output`.

Job arrival order is drawn from the registered
:data:`~repro.common.rng.JOB_ARRIVAL_STREAM` RNG stream, so reordering
is a seed-controlled, reproducible property of the workload rather than
an accident of construction order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.harness import default_node_spec, expected_output
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.spec import ChaosPlan
from repro.common.rng import JOB_ARRIVAL_STREAM, named_rng
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.jobs.manager import JobManager
from repro.jobs.spec import Job, JobSpec, JobState, TenantQuota, TenantSpec


def default_tenants(
    count: int = 4, *, max_concurrent_jobs: int = 4
) -> List[TenantSpec]:
    """Equal-weight tenants with permissive quotas (fairness studies)."""
    quota = TenantQuota(max_concurrent_jobs=max_concurrent_jobs)
    return [
        TenantSpec(name=f"tenant-{i}", weight=1.0, quota=quota)
        for i in range(count)
    ]


def mixed_workload(
    seed: int,
    num_jobs: int = 16,
    tenants: Optional[List[TenantSpec]] = None,
    *,
    num_maps: int = 8,
    num_reduces: int = 4,
    values_per_part: int = 24,
    variants: Tuple[str, ...] = ("simple", "riffle", "push", "auto"),
) -> Tuple[List[TenantSpec], List[JobSpec]]:
    """A deterministic fleet of identical-shape sort jobs.

    Jobs cycle through ``variants`` and are dealt to tenants round-robin,
    then the *submission order* is shuffled by the registered job-arrival
    RNG stream -- every run of the same seed submits the same jobs in the
    same order.
    """
    if tenants is None:
        tenants = default_tenants()
    specs = [
        JobSpec(
            name=f"sort-{i}",
            tenant=tenants[i % len(tenants)].name,
            num_maps=num_maps,
            num_reduces=num_reduces,
            values_per_part=values_per_part,
            variant=variants[i % len(variants)],
            seed=seed + i,
        )
        for i in range(num_jobs)
    ]
    rng = named_rng(seed, JOB_ARRIVAL_STREAM)
    order = rng.permutation(len(specs))
    return tenants, [specs[i] for i in order]


@dataclass
class JobsRunReport:
    """What one multi-tenant run produced."""

    jobs: List[Job]
    #: Simulated makespan (time when the last job reached a terminal state).
    duration: float
    #: ``runtime.stats()`` snapshot (global counters + derived totals).
    stats: Dict[str, Any]
    #: Per-job counter buckets keyed by job id.
    job_stats: Dict[str, Dict[str, float]]
    #: Max/min completion-time ratio over DONE jobs (None if < 2 finished).
    completion_ratio: Optional[float]
    #: Invariant violations found at quiesce (empty = healthy).
    violations: List[str] = field(default_factory=list)
    #: Jobs whose output differed from the pure-function oracle.
    incorrect: List[str] = field(default_factory=list)
    #: The chaos injector's fired-fault log: ``(time, kind, node_id)``.
    injected: List[tuple] = field(default_factory=list)

    @property
    def all_done(self) -> bool:
        """True when every job finished successfully."""
        return all(job.state is JobState.DONE for job in self.jobs)

    @property
    def ok(self) -> bool:
        """True when every job is DONE with oracle-identical output and
        no invariant was violated."""
        return self.all_done and not self.violations and not self.incorrect


def verify_outputs(jobs: List[Job]) -> List[str]:
    """Job ids of DONE jobs whose output differs from the oracle."""
    bad = []
    for job in jobs:
        if job.state is not JobState.DONE:
            continue
        spec = job.spec
        oracle = expected_output(
            spec.seed, spec.num_maps, spec.num_reduces, spec.values_per_part
        )
        if job.output != oracle:
            bad.append(job.job_id)
    return bad


def run_jobs(
    specs: List[JobSpec],
    tenants: List[TenantSpec],
    plan: Optional[ChaosPlan] = None,
    *,
    num_nodes: int = 4,
    slots_per_core: float = 1.0,
    retry_policy: Optional[RetryPolicy] = None,
    config: Optional[RuntimeConfig] = None,
    check_invariants: bool = True,
) -> JobsRunReport:
    """Run a workload through a fresh cluster, optionally under chaos.

    Builds the same homogeneous cluster the chaos harness uses, arms
    ``plan`` (if any), submits every spec, drives the manager until all
    jobs are terminal, drains trailing events, and checks invariants --
    including per-job accounting summing to the global counters -- plus
    every finished job's output against the oracle.
    """
    if config is None:
        config = RuntimeConfig(retry_policy=retry_policy or RetryPolicy())
    rt = Runtime.create(default_node_spec(), num_nodes, config=config)
    injector = ChaosInjector(rt, plan) if plan is not None else None
    manager = JobManager(rt, slots_per_core=slots_per_core)
    for tenant in tenants:
        manager.add_tenant(tenant)
    for spec in specs:
        manager.submit(spec)
    jobs = manager.run()
    duration = rt.now
    rt.env.run()  # drain recoveries/restarts so the runtime quiesces
    violations = InvariantChecker(rt).check() if check_invariants else []
    return JobsRunReport(
        jobs=jobs,
        duration=duration,
        stats=rt.stats(),
        job_stats=rt.job_stats(),
        completion_ratio=manager.completion_ratio(),
        violations=violations,
        incorrect=verify_outputs(jobs),
        injected=list(injector.injected) if injector is not None else [],
    )
