"""CLI entry point: ``python -m repro.jobs --smoke``.

The smoke mode exercises the control plane end to end:

1. a 16-job / 4-tenant mixed workload must complete with every job's
   output matching the pure-function oracle, zero invariant violations
   (including per-job accounting summing to the global counters), and a
   max/min completion-time ratio within the fairness bound;
2. a job whose declared footprint exceeds its tenant quota must be
   rejected with a typed error;
3. the same workload at reduced scale must survive a chaos plan (node
   crash) firing underneath concurrent jobs.

Exit code 0 means all three held; CI runs this as the jobs-layer gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos.spec import FaultKind, matrix_plan
from repro.common.errors import TenantQuotaExceededError
from repro.futures import RetryPolicy
from repro.jobs.manager import JobManager
from repro.jobs.spec import JobSpec, JobState, TenantQuota, TenantSpec
from repro.jobs.workload import mixed_workload, run_jobs

#: Equal-weight jobs on an idle cluster should finish within this
#: max/min completion-time ratio (the acceptance bound).
FAIRNESS_BOUND = 2.0


def _check(ok: bool, message: str) -> int:
    print(f"{'ok  ' if ok else 'FAIL'} {message}")
    return 0 if ok else 1


def _smoke_fleet(seed: int) -> int:
    tenants, specs = mixed_workload(seed, num_jobs=16)
    report = run_jobs(specs, tenants)
    failures = 0
    failures += _check(
        report.all_done, f"16 jobs / 4 tenants all DONE (t={report.duration:.1f}s)"
    )
    failures += _check(not report.incorrect, "all outputs oracle-identical")
    failures += _check(
        not report.violations,
        f"zero invariant violations ({len(report.violations)} found)",
    )
    for violation in report.violations[:5]:
        print(f"       ! {violation}")
    ratio = report.completion_ratio
    failures += _check(
        ratio is not None and ratio <= FAIRNESS_BOUND,
        f"completion-time max/min ratio {ratio:.2f} <= {FAIRNESS_BOUND:g}"
        if ratio is not None
        else "completion-time ratio unavailable",
    )
    by_tenant: dict = {}
    for job_id, bucket in report.job_stats.items():
        job = next((j for j in report.jobs if j.job_id == job_id), None)
        if job is None:
            continue
        agg = by_tenant.setdefault(job.spec.tenant, {"tasks": 0.0, "cpu": 0.0})
        agg["tasks"] += bucket.get("tasks_finished", 0.0)
        agg["cpu"] += bucket.get("compute_seconds", 0.0)
    for tenant in sorted(by_tenant):
        agg = by_tenant[tenant]
        print(
            f"     {tenant}: tasks={agg['tasks']:.0f} "
            f"task-seconds={agg['cpu']:.1f}"
        )
    return failures


def _smoke_rejection(seed: int) -> int:
    from repro.chaos.harness import default_node_spec
    from repro.futures import Runtime

    rt = Runtime.create(default_node_spec(), 2)
    manager = JobManager(rt)
    manager.add_tenant(
        TenantSpec(
            name="capped", quota=TenantQuota(max_store_bytes=1024)
        )
    )
    try:
        manager.submit(
            JobSpec(name="too-big", tenant="capped", store_bytes_estimate=4096)
        )
    except TenantQuotaExceededError as exc:
        print(f"     typed rejection: {exc}")
        job = next(iter(manager.jobs.values()))
        return _check(
            job.state is JobState.REJECTED, "over-quota job rejected with typed error"
        )
    return _check(False, "over-quota job was accepted (expected rejection)")


def _smoke_chaos(seed: int) -> int:
    tenants, specs = mixed_workload(seed, num_jobs=4)
    report = run_jobs(
        specs,
        tenants,
        plan=matrix_plan(FaultKind.NODE_CRASH, seed=seed),
        retry_policy=RetryPolicy(max_attempts=8),
    )
    ok = report.all_done and not report.incorrect and not report.violations
    for violation in report.violations[:5]:
        print(f"       ! {violation}")
    return _check(
        ok,
        f"4 concurrent jobs under node-crash chaos "
        f"(faults={len(report.injected)}, "
        f"retries={report.stats.get('tasks_resubmitted', 0):.0f})",
    )


def main(argv=None) -> int:
    """Parse arguments and run the requested jobs-layer mode."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Multi-tenant job control plane smoke runner.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the mixed multi-tenant workload, a quota-rejection "
        "check, and a chaos-under-jobs run; exit nonzero on any failure",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    failures = _smoke_fleet(args.seed)
    failures += _smoke_rejection(args.seed)
    failures += _smoke_chaos(args.seed)
    print(("jobs smoke passed" if not failures else
           f"jobs smoke: {failures} check(s) failed"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
