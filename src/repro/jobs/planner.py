"""A cost-model shuffle planner ranking every variant for a job.

:mod:`repro.shuffle.select` encodes the paper's empirical two-way rule
(simple vs push).  The control plane needs more: given a cluster profile
and a job shape, rank *all* shuffle variants so ``variant="auto"`` jobs
pick sensibly and operators can inspect why.  The model is deliberately
coarse -- additive terms for task scheduling, per-block metadata/fetch
overhead, network transfer, and disk spill traffic, with push-style
variants overlapping network against disk -- but it reproduces the
qualitative orderings the paper measures:

- small in-memory jobs with few partitions: ``simple`` wins (merging
  only adds overhead, Fig 4c left);
- many partitions: per-block overhead grows with ``maps x reduces``, so
  block-coalescing variants (``push``) overtake ``simple`` even in
  memory (the Fig 4c crossover);
- larger-than-memory jobs: spill seeks dominate, and variants with
  fewer/larger blocks (``riffle``, ``magnet``, ``push``) beat ``simple``,
  with ``push`` first since it overlaps spill I/O with the network;
- ``streaming`` is only *feasible* for jobs declared as streaming
  (rounds of input), where its cross-round overlap makes it cheapest.

Absolute seconds from this model are not predictions; only the ordering
is meaningful, and the tests assert orderings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.shuffle.select import MEMORY_HEADROOM

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime

#: Scheduling overhead charged per task the variant launches.
_SCHEDULE_S = 5e-4

#: Metadata + fetch overhead charged per shuffle block (the per-object
#: cost that makes M x R blocks expensive at high partition counts).
_PER_BLOCK_S = 1e-4

#: Fixed coordination cost of push-style pipelines (merge scheduling,
#: pipeline spin-up).  Calibrated so the simple-vs-push crossover for the
#: harness job shape lands in the paper's 80-200 partition window.
_PUSH_SETUP_S = 0.06

#: Riffle's dynamic variant starts merges opportunistically as map
#: outputs appear, overlapping part of the merge pass's disk traffic
#: with map execution.  Applied to the disk term only: in memory there
#: is no merge I/O to hide, and dynamic merging buys nothing.
_DYNAMIC_DISCOUNT = 0.95

#: Streaming overlaps one round's reduce with the next round's map.
_STREAMING_DISCOUNT = 0.9


@dataclass(frozen=True)
class ClusterProfile:
    """The hardware facts the cost model consumes."""

    num_nodes: int
    total_cores: int
    store_bytes: int
    disk_bandwidth: float
    nic_bandwidth: float
    disk_seek_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.total_cores < 1:
            raise ValueError("cluster must have at least one node and core")
        if min(self.store_bytes, self.disk_bandwidth, self.nic_bandwidth) <= 0:
            raise ValueError("cluster capacities must be positive")

    @classmethod
    def from_runtime(cls, rt: "Runtime") -> "ClusterProfile":
        """Profile the *alive* portion of a runtime's cluster."""
        nodes = list(rt.cluster.alive_nodes())
        if not nodes:
            raise ValueError("no alive nodes to profile")
        return cls(
            num_nodes=len(nodes),
            total_cores=sum(node.spec.cores for node in nodes),
            store_bytes=sum(node.spec.object_store_bytes for node in nodes),
            disk_bandwidth=sum(
                node.spec.disk.bandwidth_bytes_per_sec for node in nodes
            ),
            nic_bandwidth=sum(
                node.spec.nic.bandwidth_bytes_per_sec for node in nodes
            ),
            disk_seek_s=max(
                node.spec.disk.effective_seek_latency_s for node in nodes
            ),
        )


@dataclass(frozen=True)
class JobShape:
    """The job facts the cost model consumes."""

    total_bytes: int
    num_maps: int
    num_reduces: int
    #: Whether the input arrives in rounds (makes ``streaming`` feasible).
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if self.num_maps < 1 or self.num_reduces < 1:
            raise ValueError("job shape dimensions must be >= 1")


@dataclass(frozen=True)
class PlanEstimate:
    """One variant's estimated cost and feasibility."""

    variant: str
    est_seconds: float
    feasible: bool
    #: The additive terms behind ``est_seconds`` (for explainability).
    breakdown: Tuple[Tuple[str, float], ...]

    def __repr__(self) -> str:
        flag = "" if self.feasible else " (infeasible)"
        return f"<PlanEstimate {self.variant} ~{self.est_seconds:.3f}s{flag}>"


class ShufflePlanner:
    """Ranks shuffle variants for a job on a profiled cluster."""

    #: Riffle merge factor assumed by the model (matches the harness).
    merge_factor: int = 2

    def __init__(self, profile: ClusterProfile) -> None:
        self.profile = profile

    @classmethod
    def for_runtime(cls, rt: "Runtime") -> "ShufflePlanner":
        """A planner profiled from a live runtime's alive nodes."""
        return cls(ClusterProfile.from_runtime(rt))

    # -- shared terms --------------------------------------------------------
    def _in_memory(self, shape: JobShape) -> bool:
        return shape.total_bytes <= MEMORY_HEADROOM * self.profile.store_bytes

    def _network_seconds(self, shape: JobShape) -> float:
        # Each node keeps 1/N of the data local; the rest crosses NICs
        # that transfer in parallel (aggregate bandwidth).
        p = self.profile
        crossing = shape.total_bytes * (p.num_nodes - 1) / max(1, p.num_nodes)
        return crossing / p.nic_bandwidth

    def _disk_seconds(self, shape: JobShape, blocks: int, passes: int) -> float:
        # Each spill pass writes and re-reads the dataset; every block
        # read pays a seek unless fused (coalescing is what `blocks`
        # captures).  Aggregate disk bandwidth: disks work in parallel.
        if self._in_memory(shape):
            return 0.0
        p = self.profile
        streamed = passes * 2 * shape.total_bytes / p.disk_bandwidth
        seeks = blocks * p.disk_seek_s / p.num_nodes
        return streamed + seeks

    def _meta_seconds(self, blocks: int, tasks: int) -> float:
        return blocks * _PER_BLOCK_S + tasks * _SCHEDULE_S

    # -- per-variant models --------------------------------------------------
    def _estimate(self, variant: str, shape: JobShape) -> PlanEstimate:
        p = self.profile
        M, R, W = shape.num_maps, shape.num_reduces, p.num_nodes
        F = self.merge_factor
        net = self._network_seconds(shape)
        feasible = True
        overlap = False
        extra = 0.0
        if variant == "simple":
            blocks = M * R
            tasks = M + R
            disk = self._disk_seconds(shape, blocks, passes=1)
        elif variant in ("riffle", "riffle_dynamic"):
            merges = max(1, M // F)
            blocks = merges * R
            tasks = M + merges + R
            # The merge pass re-reads and re-writes map output once more
            # when spilling, in exchange for F-times-larger blocks.
            disk = self._disk_seconds(shape, blocks, passes=2)
            if variant == "riffle_dynamic":
                disk *= _DYNAMIC_DISCOUNT
        elif variant == "magnet":
            blocks = W * R
            tasks = M + W * R // max(1, F) + R
            disk = self._disk_seconds(shape, blocks, passes=2)
        elif variant == "push":
            blocks = W * R
            tasks = M + W * R + R
            disk = self._disk_seconds(shape, blocks, passes=1)
            overlap = True
            extra = _PUSH_SETUP_S
        elif variant == "streaming":
            blocks = M * R
            tasks = M + R
            disk = self._disk_seconds(shape, blocks, passes=1)
            overlap = True
            feasible = shape.streaming
        else:
            raise ValueError(f"unknown shuffle variant {variant!r}")
        meta = self._meta_seconds(blocks, tasks)
        if overlap:
            moved = max(net, disk)
            breakdown = (("meta", meta), ("overlap(net,disk)", moved),
                         ("setup", extra))
        else:
            moved = net + disk
            breakdown = (("meta", meta), ("net", net), ("disk", disk),
                         ("setup", extra))
        seconds = meta + moved + extra
        if variant == "streaming":
            seconds *= _STREAMING_DISCOUNT
        return PlanEstimate(
            variant=variant,
            est_seconds=seconds,
            feasible=feasible,
            breakdown=breakdown,
        )

    # -- public API ----------------------------------------------------------
    def rank(self, shape: JobShape) -> List[PlanEstimate]:
        """Every variant's estimate, cheapest first; infeasible ones last."""
        from repro.chaos.harness import SHUFFLE_VARIANTS

        estimates = [self._estimate(v, shape) for v in SHUFFLE_VARIANTS]
        return sorted(
            estimates,
            key=lambda e: (not e.feasible, e.est_seconds, e.variant),
        )

    def choose(self, shape: JobShape) -> str:
        """The cheapest feasible variant's name."""
        ranked = self.rank(shape)
        best = ranked[0]
        if not best.feasible:
            raise ValueError("no feasible shuffle variant for this job shape")
        return best.variant

    def explain(self, shape: JobShape) -> Dict[str, Dict[str, float]]:
        """Per-variant cost breakdowns keyed by variant name."""
        return {
            est.variant: dict(est.breakdown, total=est.est_seconds)
            for est in self.rank(shape)
        }
