"""The cost-model shuffle planner -- now a lowering backend.

The six-variant cost model this module introduced (additive terms for
task scheduling, per-block metadata, network transfer, and disk spill
traffic, with push-style variants overlapping network against disk)
moved verbatim into the plan layer as the ``rule="cost"`` lowering rule
(:mod:`repro.plan.cost`), where the expression IR and the adaptive
re-planner consume it alongside the empirical rule.  See that module
for the model's derivation and the qualitative orderings it reproduces.

:class:`ShufflePlanner` remains the control plane's historical facade
over the model -- profile a cluster, ``rank``/``choose``/``explain`` a
:class:`~repro.plan.JobShape` -- and the value types
(:class:`~repro.plan.ClusterProfile`, :class:`~repro.plan.JobShape`,
:class:`~repro.plan.PlanEstimate`) are re-exported from their new home
so existing imports keep working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.plan import (
    ClusterProfile,
    JobShape,
    PlanEstimate,
    cheapest_feasible,
    rank_variants,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime

__all__ = ["ClusterProfile", "JobShape", "PlanEstimate", "ShufflePlanner"]


class ShufflePlanner:
    """Ranks shuffle variants for a job on a profiled cluster.

    A thin facade over :func:`repro.plan.rank_variants`: one profile,
    bound at construction, and the model's public verbs.  New code
    should build :class:`~repro.plan.ShuffleExpr` nodes and lower them
    through :class:`~repro.plan.AdaptivePlanner` instead; this class
    stays for callers that want the bare cost model.
    """

    #: Riffle merge factor assumed by the model (matches the harness).
    merge_factor: int = 2

    def __init__(self, profile: ClusterProfile) -> None:
        self.profile = profile

    @classmethod
    def for_runtime(cls, rt: "Runtime") -> "ShufflePlanner":
        """A planner profiled from a live runtime's alive nodes."""
        return cls(ClusterProfile.from_runtime(rt))

    def rank(self, shape: JobShape) -> List[PlanEstimate]:
        """Every variant's estimate, cheapest first; infeasible ones last."""
        return rank_variants(self.profile, shape, self.merge_factor)

    def choose(self, shape: JobShape) -> str:
        """The cheapest feasible variant's name."""
        return cheapest_feasible(self.rank(shape)).variant

    def explain(self, shape: JobShape) -> Dict[str, Dict[str, float]]:
        """Per-variant cost breakdowns keyed by variant name."""
        return {
            est.variant: dict(est.breakdown, total=est.est_seconds)
            for est in self.rank(shape)
        }
