"""Job and tenant declarations for the multi-tenant control plane.

A :class:`JobSpec` describes one shuffle job (shape, variant, seed); a
:class:`TenantSpec` groups jobs under a shared :class:`TenantQuota` and a
fair-share weight.  :class:`Job` is the mutable lifecycle record the
:class:`~repro.jobs.manager.JobManager` drives through
:class:`JobState`: submitted jobs queue, are admitted when quota allows,
run as cooperative subdrivers, and end done, failed, cancelled, or
rejected (a rejection is terminal at submission -- queueing could never
have helped).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class JobState(enum.Enum):
    """Where a job currently is in its lifecycle."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    REJECTED = "rejected"


#: States a job can no longer leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.REJECTED}
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (``None`` = unlimited).

    ``max_concurrent_jobs`` bounds jobs running at once;
    ``max_store_bytes`` bounds the summed store-byte estimates of the
    tenant's *admitted* jobs; ``max_task_slots`` caps the tenant's
    concurrently dispatched tasks (enforced by the fair-share
    scheduler); ``max_queued_jobs`` bounds the admission queue --
    submission past it fails with backpressure rather than buffering
    unboundedly.
    """

    max_concurrent_jobs: int = 2
    max_store_bytes: Optional[int] = None
    max_task_slots: Optional[int] = None
    max_queued_jobs: int = 8

    def __post_init__(self) -> None:
        if self.max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        if self.max_queued_jobs < 1:
            raise ValueError("max_queued_jobs must be >= 1")
        if self.max_store_bytes is not None and self.max_store_bytes <= 0:
            raise ValueError("max_store_bytes must be positive when set")
        if self.max_task_slots is not None and self.max_task_slots < 1:
            raise ValueError("max_task_slots must be >= 1 when set")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a name, a fair-share weight, and a quota."""

    name: str
    weight: float = 1.0
    quota: TenantQuota = field(default_factory=TenantQuota)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be positive")


#: Bytes-per-value heuristic used to estimate a job's store footprint
#: when the spec gives no explicit estimate (integer payloads plus the
#: simulated object envelope, doubled for the shuffled copy).
_BYTES_PER_VALUE_ESTIMATE = 64


@dataclass(frozen=True)
class StreamSpec:
    """The streaming arm of a :class:`JobSpec`.

    When a job carries one, the manager dispatches it to the streaming
    tier's registered runner (:mod:`repro.streaming`) instead of the
    batch shuffle path: the job becomes a long-lived subdriver fed by
    ``JobSpec.num_maps`` Poisson sources, repartitioning each tumbling
    window across ``JobSpec.num_reduces`` stateful reducers.

    ``rate_hz`` is the mean open-loop arrival rate *per source*;
    arrivals stop at ``duration_s`` of event time, closing the source.
    ``max_inflight_windows`` bounds windows that are closed but whose
    aggregate is not yet visible -- the backpressure knob; set
    ``backpressure=False`` to let in-flight windows grow unboundedly
    (the bench's contrast arm).
    """

    rate_hz: float = 2.0
    duration_s: float = 30.0
    window_s: float = 5.0
    keys: int = 16
    bytes_per_record: int = 64
    max_inflight_windows: int = 2
    backpressure: bool = True

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.keys < 1:
            raise ValueError("keys must be >= 1")
        if self.bytes_per_record < 1:
            raise ValueError("bytes_per_record must be >= 1")
        if self.max_inflight_windows < 1:
            raise ValueError("max_inflight_windows must be >= 1")

    @property
    def expected_records(self) -> float:
        """Mean records one source emits before closing."""
        return self.rate_hz * self.duration_s


@dataclass(frozen=True)
class JobSpec:
    """A declarative description of one shuffle job.

    ``variant`` names a :data:`repro.chaos.SHUFFLE_VARIANTS` entry or
    ``"auto"`` to let the :class:`~repro.jobs.planner.ShufflePlanner`
    choose from the cost model.  ``weight`` multiplies the owning
    tenant's weight for fair sharing.  ``store_bytes_estimate`` feeds
    admission control; when ``None`` a size heuristic from the job shape
    is used.
    """

    name: str
    tenant: str
    num_maps: int = 8
    num_reduces: int = 4
    values_per_part: int = 24
    variant: str = "auto"
    weight: float = 1.0
    seed: int = 0
    store_bytes_estimate: Optional[int] = None
    #: When set, the job runs on the streaming tier: ``num_maps``
    #: sources, ``num_reduces`` repartition width, ``variant`` ignored.
    stream: Optional[StreamSpec] = None
    #: Optional pre-built plan hook: a :class:`repro.plan.ShuffleExpr`
    #: to lower in place of the shape-derived one (callers that want
    #: custom variant restrictions or expression rewrites), or an
    #: already-lowered :class:`repro.plan.ShufflePlan` to execute as-is.
    #: Duck-typed so the spec layer stays plan-free.
    plan: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.num_maps < 1 or self.num_reduces < 1 or self.values_per_part < 1:
            raise ValueError("job shape dimensions must be >= 1")
        if self.weight <= 0:
            raise ValueError("job weight must be positive")

    @property
    def estimated_store_bytes(self) -> int:
        """The admission-control footprint: the explicit estimate when
        given; for streaming jobs, the bytes resident with every allowed
        window in flight; otherwise a heuristic of twice the input bytes
        (input plus shuffled copy)."""
        if self.store_bytes_estimate is not None:
            return self.store_bytes_estimate
        if self.stream is not None:
            window_bytes = (
                self.num_maps
                * self.stream.rate_hz
                * self.stream.window_s
                * self.stream.bytes_per_record
            )
            return int(2 * window_bytes * (self.stream.max_inflight_windows + 1))
        values = self.num_maps * self.values_per_part
        return 2 * values * _BYTES_PER_VALUE_ESTIMATE


@dataclass
class Job:
    """The mutable lifecycle record of one submitted job."""

    spec: JobSpec
    job_id: str
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    admitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Once DONE: the reduce outputs (one sorted tuple per partition)
    #: for batch jobs, or the runner's result record for streaming jobs.
    output: Optional[Any] = None
    #: The exception that ended the job (FAILED or REJECTED).
    error: Optional[BaseException] = None
    #: The variant the planner resolved ``"auto"`` to (or the explicit one).
    planned_variant: Optional[str] = None
    #: The lowered :class:`repro.plan.ShufflePlan` behind
    #: ``planned_variant`` when the resolution went through the plan
    #: surface (None for explicit variants; streaming jobs carry their
    #: pinned streaming plan).
    plan: Optional[Any] = None

    @property
    def terminal(self) -> bool:
        """True once the job can no longer change state."""
        return self.state in TERMINAL_STATES

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds between submission and admission (None while queued)."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.submitted_at

    @property
    def duration(self) -> Optional[float]:
        """Seconds from submission to a terminal state (None until then)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} {self.spec.name!r} tenant={self.spec.tenant} "
            f"{self.state.value}>"
        )
