"""A numpy SGD classifier standing in for TabNet.

The paper's convergence claims (§5.2.2) are about *data order*, not
architecture: SGD over biased mini-batches (windowed / partial shuffle of
label-clustered data) converges slower and to lower accuracy than SGD
over fully reshuffled data.  Plain logistic regression with mini-batch
SGD exhibits exactly this, deterministically, which makes the effect
testable.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.common.rng import seeded_rng


class SGDClassifier:
    """Mini-batch SGD logistic regression."""

    def __init__(
        self,
        num_features: int,
        learning_rate: float = 0.05,
        batch_size: int = 256,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or batch_size < 1:
            raise ValueError("bad hyperparameters")
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        rng = seeded_rng(seed, "model-init")
        self.weights = (0.01 * rng.normal(size=num_features + 1)).astype(
            np.float64
        )
        self.samples_seen = 0

    # -- parameter vector (for distributed averaging) ------------------------
    def get_params(self) -> np.ndarray:
        """A copy of the parameter vector (weights + bias)."""
        return self.weights.copy()

    def set_params(self, params: np.ndarray) -> None:
        """Replace the parameter vector."""
        self.weights = np.asarray(params, dtype=np.float64).copy()

    @staticmethod
    def average(params_list) -> np.ndarray:
        return np.mean(np.stack(list(params_list)), axis=0)

    # -- training ------------------------------------------------------------
    def _logits(self, features: np.ndarray) -> np.ndarray:
        return features @ self.weights[:-1] + self.weights[-1]

    def train_batch(self, features: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step; returns the batch's logistic loss."""
        logits = self._logits(features)
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        error = probs - labels
        grad_w = features.T @ error / len(labels)
        grad_b = float(error.mean())
        self.weights[:-1] -= self.learning_rate * grad_w
        self.weights[-1] -= self.learning_rate * grad_b
        self.samples_seen += len(labels)
        eps = 1e-9
        return float(
            -np.mean(
                labels * np.log(probs + eps)
                + (1 - labels) * np.log(1 - probs + eps)
            )
        )

    def train_block(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Consume one data block as consecutive mini-batches (in the
        order given -- order is the experiment)."""
        last_loss = 0.0
        for start in range(0, len(labels), self.batch_size):
            stop = start + self.batch_size
            last_loss = self.train_batch(features[start:stop], labels[start:stop])
        return last_loss

    # -- evaluation ------------------------------------------------------------
    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on the given set."""
        predictions = (self._logits(features) > 0).astype(np.float64)
        return float((predictions == labels).mean())


def iterate_batches(
    features: np.ndarray, labels: np.ndarray, batch_size: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Consecutive mini-batches over an array pair."""
    for start in range(0, len(labels), batch_size):
        stop = start + batch_size
        yield features[start:stop], labels[start:stop]
