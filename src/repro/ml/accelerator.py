"""The modelled training accelerator.

The GPU itself is not simulated as a device; a trainer charges
``seconds_for(bytes)`` of simulated time per consumed block, which is how
long the accelerator crunches it.  Loading is fast enough when the data
plane keeps blocks arriving at or above this rate -- the pipelining
experiments (Figs 8, 9) are about whether the loader can.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import MB


@dataclass(frozen=True)
class AcceleratorSpec:
    """Training throughput of one accelerator."""

    name: str
    train_bytes_per_sec: float

    def __post_init__(self) -> None:
        if self.train_bytes_per_sec <= 0:
            raise ValueError("accelerator throughput must be positive")

    def seconds_for(self, nbytes: int) -> float:
        """Simulated training time for ``nbytes`` of consumed data."""
        return nbytes / self.train_bytes_per_sec


#: Roughly a T4 running TabNet-scale tabular training: several hundred
#: MB/s of consumed training data.
T4_LIKE = AcceleratorSpec(name="t4-like", train_bytes_per_sec=600 * MB)
