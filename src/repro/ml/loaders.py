"""Data loaders: how training blocks reach the trainer each epoch.

:class:`ExoshuffleLoader` performs a *full* distributed random reshuffle
per epoch through the shuffle library, returning refs immediately so the
trainer pipelines consumption with the shuffle (Fig 2d, Listing 2).

:class:`LocalBatchLoader` is the "partial shuffle" strategy of Fig 9: no
data movement, each block's rows are permuted in place -- fully local and
cheap, but inter-block order (and therefore batch composition) never
changes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.common.rng import derive_seed, seeded_rng
from repro.futures import ObjectRef, Runtime
from repro.ml.dataset import TabularBlock
from repro.shuffle import simple_shuffle


def stage_blocks(rt: Runtime, blocks: List[TabularBlock]) -> List[ObjectRef]:
    """Place dataset blocks round-robin across the cluster (blocking;
    call from a driver).  Staging stands in for the dataset already
    sitting in distributed storage and is not part of epoch timings."""
    from repro.shuffle.common import worker_nodes

    nodes = worker_nodes(rt)
    put_task = rt.remote(lambda block: block)
    refs = [
        put_task.options(node=nodes[i % len(nodes)]).remote(block)
        for i, block in enumerate(blocks)
    ]
    rt.wait(refs, num_returns=len(refs))
    return refs


def make_shuffle_map(num_out: int, epoch_seed: int) -> Callable[[TabularBlock], List[TabularBlock]]:
    """Map fn: scatter a block's rows uniformly over ``num_out`` outputs."""

    def shuffle_map(block: TabularBlock) -> List[TabularBlock]:
        rng = seeded_rng(epoch_seed, "scatter", block.index)
        assignment = rng.integers(0, num_out, size=block.num_records)
        return [
            block.take(np.flatnonzero(assignment == r), index=r)
            for r in range(num_out)
        ]

    return shuffle_map


def make_shuffle_reduce(epoch_seed: int) -> Callable[..., TabularBlock]:
    """Reduce fn: gather sub-blocks and permute rows within the output."""

    def shuffle_reduce(*blocks: TabularBlock) -> TabularBlock:
        merged = TabularBlock.concat(blocks, index=blocks[0].index)
        rng = seeded_rng(epoch_seed, "permute", merged.index)
        order = rng.permutation(merged.num_records)
        return merged.take(order, index=merged.index)

    return shuffle_reduce


class ExoshuffleLoader:
    """Per-epoch full random reshuffle, consumed block-by-block.

    ``submit_epoch`` is non-blocking; the trainer calls it for epoch
    ``e+1`` before consuming epoch ``e``'s refs, overlapping the next
    shuffle with training exactly as Listing 2's ``model_training`` does.
    """

    def __init__(
        self,
        rt: Runtime,
        partition_refs: List[ObjectRef],
        num_blocks_out: Optional[int] = None,
        seed: int = 0,
        map_options: Optional[Dict[str, Any]] = None,
        reduce_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not partition_refs:
            raise ValueError("loader needs at least one partition")
        self.rt = rt
        self.partition_refs = list(partition_refs)
        self.num_blocks_out = num_blocks_out or len(partition_refs)
        self.seed = seed
        self.map_options = map_options or {}
        self.reduce_options = reduce_options or {}

    def submit_epoch(self, epoch: int) -> List[ObjectRef]:
        """Submit the shuffle DAG for one epoch; returns block refs."""
        epoch_seed = derive_seed(self.seed, "epoch", epoch)
        return simple_shuffle(
            self.rt,
            self.partition_refs,
            make_shuffle_map(self.num_blocks_out, epoch_seed),
            make_shuffle_reduce(epoch_seed),
            self.num_blocks_out,
            map_options=self.map_options,
            reduce_options=self.reduce_options,
        )


class WindowedExoshuffleLoader:
    """Shuffle in windows (Fig 2d-iii): each epoch reshuffles *groups* of
    ``window_partitions`` partitions rather than the whole dataset.

    Sits between the full reshuffle (best mixing, most data movement) and
    the purely local permutation: a tunable performance/accuracy knob the
    paper describes applications choosing per their needs.
    """

    def __init__(
        self,
        rt: Runtime,
        partition_refs: List[ObjectRef],
        window_partitions: int = 4,
        seed: int = 0,
    ) -> None:
        if not partition_refs:
            raise ValueError("loader needs at least one partition")
        if window_partitions < 1:
            raise ValueError("window must be at least one partition")
        self.rt = rt
        self.partition_refs = list(partition_refs)
        self.window_partitions = window_partitions
        self.seed = seed

    def submit_epoch(self, epoch: int) -> List[ObjectRef]:
        """Submit the windowed shuffles for one epoch; returns block refs."""
        epoch_seed = derive_seed(self.seed, "epoch", epoch)
        refs: List[ObjectRef] = []
        window = self.window_partitions
        for start in range(0, len(self.partition_refs), window):
            group = self.partition_refs[start : start + window]
            refs.extend(
                simple_shuffle(
                    self.rt,
                    group,
                    make_shuffle_map(
                        len(group), derive_seed(epoch_seed, "window", start)
                    ),
                    make_shuffle_reduce(
                        derive_seed(epoch_seed, "window", start)
                    ),
                    len(group),
                )
            )
        return refs


class LocalBatchLoader:
    """Partial shuffle: permute rows within each block, move nothing."""

    def __init__(
        self,
        rt: Runtime,
        partition_refs: List[ObjectRef],
        seed: int = 0,
    ) -> None:
        if not partition_refs:
            raise ValueError("loader needs at least one partition")
        self.rt = rt
        self.partition_refs = list(partition_refs)
        self.seed = seed

    def submit_epoch(self, epoch: int) -> List[ObjectRef]:
        """Submit per-block permutations for one epoch (no data movement)."""
        epoch_seed = derive_seed(self.seed, "epoch", epoch)

        def permute(block: TabularBlock) -> TabularBlock:
            rng = seeded_rng(epoch_seed, "local", block.index)
            return block.take(
                rng.permutation(block.num_records), index=block.index
            )

        # Permutation is in-place-cheap: charge only a memcpy-rate pass.
        task = self.rt.remote(
            permute,
            compute=lambda ctx: ctx.output_bytes / 2e9,
        )
        return [task.remote(ref) for ref in self.partition_refs]
