"""Synthetic HIGGS-like dataset with an adversarial on-disk order.

The real HIGGS file (7.5 GB, 28 features, binary labels) is unavailable;
what matters for the paper's claims is that (a) the data has realistic
volume for I/O accounting and (b) the *storage order* is non-random, so
a loader that only shuffles within a small window trains on biased
batches.  We generate a linearly-separable-with-noise problem and store
it sorted by label with a slow feature drift -- the worst case for
windowed shuffling, and a common one in practice (logs sorted by time or
class).

``io_scale`` inflates the declared ``size_bytes`` of each block so the
simulated data plane moves HIGGS-scale bytes while numpy holds only a
small array (the same real/virtual duality as :mod:`repro.blocks`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import seeded_rng


class TabularBlock:
    """A chunk of (features, labels) rows with declared I/O size."""

    __slots__ = ("features", "labels", "io_scale", "index")

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        io_scale: float = 1.0,
        index: int = 0,
    ) -> None:
        if len(features) != len(labels):
            raise ValueError("features and labels must have equal length")
        self.features = features
        self.labels = labels
        self.io_scale = io_scale
        self.index = index

    @property
    def num_records(self) -> int:
        return int(len(self.labels))

    @property
    def size_bytes(self) -> int:
        raw = int(self.features.nbytes + self.labels.nbytes)
        return int(raw * self.io_scale)

    def take(self, row_indices: np.ndarray, index: int = 0) -> "TabularBlock":
        """A new block containing the given rows, in the given order."""
        return TabularBlock(
            self.features[row_indices],
            self.labels[row_indices],
            io_scale=self.io_scale,
            index=index,
        )

    @staticmethod
    def concat(blocks: Sequence["TabularBlock"], index: int = 0) -> "TabularBlock":
        if not blocks:
            raise ValueError("cannot concat zero blocks")
        return TabularBlock(
            np.concatenate([b.features for b in blocks]),
            np.concatenate([b.labels for b in blocks]),
            io_scale=blocks[0].io_scale,
            index=index,
        )

    def __repr__(self) -> str:
        return f"TabularBlock(rows={self.num_records}, bytes={self.size_bytes})"


class SyntheticHiggs:
    """Generator for the training/validation data and its partitioning."""

    def __init__(
        self,
        num_samples: int = 40_000,
        num_features: int = 28,
        noise: float = 1.2,
        seed: int = 0,
        io_scale: float = 1.0,
    ) -> None:
        if num_samples < 2:
            raise ValueError("need at least two samples")
        self.num_samples = num_samples
        self.num_features = num_features
        self.noise = noise
        self.seed = seed
        self.io_scale = io_scale

    def _generate(self, n: int, stream: str) -> Tuple[np.ndarray, np.ndarray]:
        rng = seeded_rng(self.seed, "higgs", stream)
        true_w = seeded_rng(self.seed, "higgs", "weights").normal(
            size=self.num_features
        )
        features = rng.normal(size=(n, self.num_features)).astype(np.float32)
        logits = features @ true_w
        labels = (logits + rng.normal(scale=self.noise, size=n) > 0).astype(
            np.float32
        )
        return features, labels

    def training_blocks(self, num_blocks: int) -> List[TabularBlock]:
        """The dataset in *storage order*: sorted by label, then by score.

        This is the ordering a windowed shuffle cannot fix; a full random
        shuffle can.
        """
        if num_blocks < 1:
            raise ValueError("need at least one block")
        features, labels = self._generate(self.num_samples, "train")
        order = np.lexsort((features[:, 0], labels))
        features, labels = features[order], labels[order]
        pieces = np.array_split(np.arange(self.num_samples), num_blocks)
        return [
            TabularBlock(
                features[idx], labels[idx], io_scale=self.io_scale, index=i
            )
            for i, idx in enumerate(pieces)
        ]

    def validation_set(
        self, num_samples: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """An i.i.d. held-out (features, labels) pair for evaluation."""
        return self._generate(num_samples or max(2000, self.num_samples // 10), "val")
