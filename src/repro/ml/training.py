"""Training loops: single-node (Fig 8) and distributed (Fig 9).

Timing and learning are both real: simulated time comes from the data
plane (shuffle/decode tasks) plus the modelled accelerator, while the SGD
updates run on actual numpy arrays, so accuracy curves genuinely depend
on how well each loader shuffles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.ids import NodeId
from repro.futures import ObjectRef, Runtime
from repro.ml.accelerator import AcceleratorSpec, T4_LIKE
from repro.ml.dataset import TabularBlock
from repro.ml.model import SGDClassifier


@dataclass
class TrainingResult:
    """Measured outcome of one training run."""

    label: str
    epoch_seconds: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0

    @property
    def mean_epoch_seconds(self) -> float:
        return (
            sum(self.epoch_seconds) / len(self.epoch_seconds)
            if self.epoch_seconds
            else 0.0
        )


def train_single_node(
    rt: Runtime,
    loader,
    model: SGDClassifier,
    validation: Tuple[np.ndarray, np.ndarray],
    epochs: int,
    accelerator: AcceleratorSpec = T4_LIKE,
    label: str = "training",
    order_override: Optional[Callable[[int], Sequence[TabularBlock]]] = None,
) -> TrainingResult:
    """Listing 2's ``model_training``: consume shuffled blocks as they
    arrive, submitting the next epoch's shuffle before training starts so
    it overlaps (double buffering).

    ``order_override(epoch)`` substitutes the *learning* order of the
    epoch's data (used by the Petastorm comparison, whose window order is
    computed stream-side) while timing still follows the loader's refs.
    """
    if epochs < 1:
        raise ValueError("need at least one epoch")
    result = TrainingResult(label=label)
    val_x, val_y = validation

    def driver() -> None:
        current = loader.submit_epoch(0)
        for epoch in range(epochs):
            upcoming = (
                loader.submit_epoch(epoch + 1) if epoch + 1 < epochs else None
            )
            epoch_start = rt.timestamp()
            for ref in current:
                block = rt.get(ref)
                # Accelerator crunches the block; background tasks (the
                # rest of this epoch's shuffle and all of the next's)
                # keep running during this simulated time.
                rt.sleep(accelerator.seconds_for(block.size_bytes))
                if order_override is None:
                    model.train_block(block.features, block.labels)
            if order_override is not None:
                for block in order_override(epoch):
                    model.train_block(block.features, block.labels)
            result.epoch_seconds.append(rt.timestamp() - epoch_start)
            result.accuracies.append(model.accuracy(val_x, val_y))
            current = upcoming
        return None

    rt.run(driver)
    result.total_seconds = rt.now
    return result


def _sgd_task_fn(learning_rate: float, batch_size: int):
    """A remote-function body: params + block -> updated params."""

    def train_step(params: np.ndarray, block: TabularBlock) -> np.ndarray:
        worker = SGDClassifier(
            num_features=len(params) - 1,
            learning_rate=learning_rate,
            batch_size=batch_size,
        )
        worker.set_params(params)
        worker.train_block(block.features, block.labels)
        return worker.get_params()

    return train_step


def train_distributed(
    rt: Runtime,
    loader,
    model: SGDClassifier,
    validation: Tuple[np.ndarray, np.ndarray],
    epochs: int,
    trainer_nodes: Sequence[NodeId],
    accelerator: AcceleratorSpec = T4_LIKE,
    label: str = "distributed",
) -> TrainingResult:
    """Data-parallel training: each trainer chains ``train_step`` tasks
    over its shard (fetch of block k+1 prefetches during step k), and
    epoch boundaries average parameters across trainers.
    """
    if epochs < 1 or not trainer_nodes:
        raise ValueError("need >= 1 epoch and >= 1 trainer")
    result = TrainingResult(label=label)
    val_x, val_y = validation
    step_fn = _sgd_task_fn(model.learning_rate, model.batch_size)

    def gpu_cost(ctx) -> float:
        return accelerator.seconds_for(ctx.input_bytes)

    def driver() -> None:
        params = model.get_params()
        current = loader.submit_epoch(0)
        for epoch in range(epochs):
            upcoming = (
                loader.submit_epoch(epoch + 1) if epoch + 1 < epochs else None
            )
            epoch_start = rt.timestamp()
            shards = [
                current[t :: len(trainer_nodes)]
                for t in range(len(trainer_nodes))
            ]
            final_refs: List[ObjectRef] = []
            for node, shard in zip(trainer_nodes, shards):
                step = rt.remote(step_fn, compute=gpu_cost, node=node)
                carried: object = params
                for block_ref in shard:
                    carried = step.remote(carried, block_ref)
                if isinstance(carried, ObjectRef):
                    final_refs.append(carried)
            # Parameter averaging at the epoch barrier (all-reduce).
            finals = rt.get(final_refs) if final_refs else [params]
            params = SGDClassifier.average(finals)
            model.set_params(params)
            result.epoch_seconds.append(rt.timestamp() - epoch_start)
            result.accuracies.append(model.accuracy(val_x, val_y))
            current = upcoming
        return None

    rt.run(driver)
    result.total_seconds = rt.now
    return result
