"""Distributed ML training with pipelined shuffle (§3.2.2, §5.2.2).

The paper trains TabNet on HIGGS with Ludwig; the reproduction trains a
numpy SGD classifier on a synthetic HIGGS-like dataset whose on-disk
ordering is adversarial (label-clustered), so per-epoch shuffle quality
visibly affects convergence.  Three loading strategies are compared:

- :class:`ExoshuffleLoader` -- full per-epoch distributed shuffle through
  the shuffle library, consumed block-by-block with fine-grained
  pipelining (Fig 2d-ii / Listing 2 ``model_training``).
- the Petastorm-style windowed buffer loader
  (:mod:`repro.baselines.petastorm`) -- sequential reads into a bounded
  in-memory window, shuffled only within the window.
- :class:`LocalBatchLoader` -- "partial shuffle": shuffling only within
  each trainer's in-memory batches (the Fig 9 comparison).
"""

from repro.ml.dataset import SyntheticHiggs, TabularBlock
from repro.ml.model import SGDClassifier
from repro.ml.accelerator import AcceleratorSpec, T4_LIKE
from repro.ml.loaders import ExoshuffleLoader, LocalBatchLoader
from repro.ml.training import (
    TrainingResult,
    train_distributed,
    train_single_node,
)

__all__ = [
    "SyntheticHiggs",
    "TabularBlock",
    "SGDClassifier",
    "AcceleratorSpec",
    "T4_LIKE",
    "ExoshuffleLoader",
    "LocalBatchLoader",
    "TrainingResult",
    "train_single_node",
    "train_distributed",
]
