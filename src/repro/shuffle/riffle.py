"""Riffle-style pre-shuffle merge (§3.1.2).

Map tasks are pinned round-robin to workers; as soon as a group of F maps
on the same worker finishes, a *local* merge task coalesces their F x R
small blocks into R larger ones, converting small random disk I/O into
large sequential I/O before the network shuffle.  Reduce tasks then pull
the merged columns.

The cost is extra disk writes for the merged copies, so -- as Fig 4a
shows -- this loses to simple shuffle at few partitions and wins at many.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import chunks, unwrap_single_return, worker_nodes


def riffle_shuffle(
    rt: Runtime,
    inputs: Sequence[Any],
    map_fn: Callable[[Any], List[Any]],
    merge_fn: Callable[..., List[Any]],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    merge_factor: int = 4,
    map_options: Optional[Dict[str, Any]] = None,
    merge_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Pull-based shuffle with pre-shuffle merge; one ref per reducer.

    ``merge_fn`` receives ``F * R`` blocks laid out map-major
    (``m0r0, m0r1, ..., m1r0, ...``) and returns R merged blocks.
    """
    num_maps = len(inputs)
    if num_maps == 0:
        raise ValueError("shuffle needs at least one map input")
    if merge_factor < 1:
        raise ValueError("merge factor must be >= 1")
    nodes = worker_nodes(rt)
    map_task = rt.remote(
        unwrap_single_return(map_fn, num_reduces),
        num_returns=num_reduces,
        **(map_options or {}),
    )
    merge_task = rt.remote(
        unwrap_single_return(merge_fn, num_reduces),
        num_returns=num_reduces,
        **(merge_options or {}),
    )
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))

    # Pin maps round-robin so merge groups are co-located with their
    # inputs (Riffle merges per executor node; locality is the point).
    map_out: List[List[ObjectRef]] = []
    for m in range(num_maps):
        refs = map_task.options(node=nodes[m % len(nodes)]).remote(inputs[m])
        map_out.append([refs] if num_reduces == 1 else refs)

    merge_out: List[List[ObjectRef]] = []
    for w, node in enumerate(nodes):
        local_maps = [m for m in range(num_maps) if m % len(nodes) == w]
        for group in chunks(local_maps, merge_factor):
            args = [map_out[m][r] for m in group for r in range(num_reduces)]
            refs = merge_task.options(node=node).remote(*args)
            merge_out.append([refs] if num_reduces == 1 else refs)

    return [
        reduce_task.remote(*[column[r] for column in merge_out])
        for r in range(num_reduces)
    ]

