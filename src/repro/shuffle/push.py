"""The pipelined two-stage push shuffle of Listing 3 / §4.1.

This is the paper's most optimised library (ES-push / ES-push*):

- Maps run in *rounds* of ``num_workers * map_parallelism`` tasks, so the
  library applies its own backpressure with ``wait`` (§4.3.2): at most one
  round of merge tasks is in flight, overlapping the next round's maps.
- Each map task returns one bundle per worker (``num_returns=W``) holding
  that worker's reducer blocks, so only the needed bytes move (§4.3.1
  "multiple returns").
- Merge tasks are *generators* pinned per worker (node affinity): they
  yield one merged block per local reducer slot, bounding executor memory
  and letting spilling proceed per block (§4.3.1 "pipelining with
  generators").
- With ``free_map_outputs=True`` (ES-push*), the round's map bundles are
  released as soon as merges consume them, so they are evicted from
  memory instead of spilled -- trading recovery speed for less write
  amplification (§4.3.1, §5.1.4).  ES-push keeps them for durability.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import assign_reducers, chunks, worker_nodes


def push_based_shuffle(
    rt: Runtime,
    inputs: Sequence[Any],
    map_fn: Callable[[Any], List[Any]],
    merge_fn: Callable[..., Any],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    map_parallelism: int = 2,
    pipeline_depth: int = 1,
    free_map_outputs: bool = True,
    map_options: Optional[Dict[str, Any]] = None,
    merge_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Two-stage pipelined push shuffle; returns one ref per reducer.

    ``merge_fn(*blocks)`` combines the blocks destined for one reducer
    from one round of maps into a single block; ``reduce_fn(*blocks)``
    combines one reducer's merged blocks across all rounds.
    """
    num_maps = len(inputs)
    if num_maps == 0:
        raise ValueError("shuffle needs at least one map input")
    if map_parallelism < 1:
        raise ValueError("map parallelism must be >= 1")
    if pipeline_depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    nodes = worker_nodes(rt)
    num_workers = len(nodes)
    assignment = assign_reducers(num_reduces, nodes)

    def push_map(part: Any) -> List[List[Any]]:
        blocks = map_fn(part)
        bundles = [[blocks[r] for r in slots] for slots in assignment]
        return bundles[0] if num_workers == 1 else bundles

    def push_merge(*bundles: List[Any]):
        for slot_blocks in zip(*bundles):
            yield merge_fn(*slot_blocks)

    map_task = rt.remote(push_map, num_returns=num_workers, **(map_options or {}))
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))
    retained: List[ObjectRef] = []

    rounds = chunks(list(inputs), num_workers * map_parallelism)
    # merge_results[w][rnd] is the list of merged refs for worker w's slots.
    merge_results: List[List[List[ObjectRef]]] = [[] for _ in nodes]
    in_flight: List[List[ObjectRef]] = []
    for round_inputs in rounds:
        map_results = [map_task.remote(part) for part in round_inputs]
        if num_workers == 1:
            map_results = [[ref] for ref in map_results]
        # Backpressure (Listing 3 L22): keep at most ``pipeline_depth``
        # rounds of merges in flight so map outputs are consumed directly
        # instead of piling up in (and spilling out of) the store.
        while len(in_flight) >= pipeline_depth:
            oldest = in_flight.pop(0)
            rt.wait(oldest, num_returns=len(oldest))
        current_round: List[ObjectRef] = []
        for w, node in enumerate(nodes):
            slots = assignment[w]
            if not slots:
                continue
            merge_task = rt.remote(
                push_merge, num_returns=len(slots), node=node,
                **(merge_options or {})
            )
            refs = merge_task.remote(*[bundle[w] for bundle in map_results])
            if len(slots) == 1:
                refs = [refs]
            merge_results[w].append(refs)
            current_round.extend(refs)
        if free_map_outputs:
            # ES-push*: drop the round's map bundles; merges hold their own
            # references until they finish, after which the bundles are
            # evicted without ever touching disk.
            for bundle in map_results:
                rt.free(bundle)
        else:
            # ES-push: keep the un-merged bundles alive for the whole job,
            # so they spill to disk and survive as recovery redundancy.
            for bundle in map_results:
                retained.extend(bundle)
        in_flight.append(current_round)
        del map_results

    results: List[Optional[ObjectRef]] = [None] * num_reduces
    for w, node in enumerate(nodes):
        for j, r in enumerate(assignment[w]):
            per_round = [round_refs[j] for round_refs in merge_results[w]]
            results[r] = reduce_task.options(node=node).remote(*per_round)
    final = [ref for ref in results if ref is not None]
    if retained:
        rt.retain_until(retained, final)
    return final
