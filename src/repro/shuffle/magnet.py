"""Magnet-style push-based shuffle (§3.1.3).

Map output blocks are *pushed* to the node that will run their reduce
task and merged there, so the final reduce reads locally and disk I/O on
the reduce side is sequential.  Each reducer is pinned round-robin to a
worker; merge tasks for reducer r run on r's worker.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import chunks, unwrap_single_return, worker_nodes


def magnet_shuffle(
    rt: Runtime,
    inputs: Sequence[Any],
    map_fn: Callable[[Any], List[Any]],
    merge_fn: Callable[..., Any],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    merge_factor: int = 4,
    map_options: Optional[Dict[str, Any]] = None,
    merge_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Push-based shuffle with reduce-side merge; one ref per reducer.

    ``merge_fn`` receives F blocks destined for one reducer and returns a
    single merged block.
    """
    num_maps = len(inputs)
    if num_maps == 0:
        raise ValueError("shuffle needs at least one map input")
    if merge_factor < 1:
        raise ValueError("merge factor must be >= 1")
    nodes = worker_nodes(rt)
    map_task = rt.remote(
        unwrap_single_return(map_fn, num_reduces),
        num_returns=num_reduces,
        **(map_options or {}),
    )
    merge_task = rt.remote(merge_fn, **(merge_options or {}))
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))

    map_out: List[List[ObjectRef]] = []
    for part in inputs:
        refs = map_task.remote(part)
        map_out.append([refs] if num_reduces == 1 else refs)

    groups = chunks(list(range(num_maps)), merge_factor)
    results: List[ObjectRef] = []
    for r in range(num_reduces):
        home = nodes[r % len(nodes)]
        merged = [
            merge_task.options(node=home).remote(
                *[map_out[m][r] for m in group]
            )
            for group in groups
        ]
        results.append(reduce_task.options(node=home).remote(*merged))
    return results
