"""Streaming shuffle for online aggregation (§3.2.1, Listing 2).

The shuffle runs in rounds; reduce tasks carry state from round to round,
and after each round an application hook sees the current reducer states
(as refs) so it can compute and surface a partial aggregate -- no
modification of the underlying system required, which is the point of
the section.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import unwrap_single_return

RoundHook = Callable[[int, List[ObjectRef]], None]


def streaming_shuffle(
    rt: Runtime,
    input_rounds: Sequence[Sequence[Any]],
    map_fn: Callable[[Any], List[Any]],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    on_round: Optional[RoundHook] = None,
    map_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Round-based shuffle with stateful reducers.

    ``reduce_fn(state, *blocks)`` folds one round's blocks into the
    reducer's state (``state`` is ``None`` on the first round).  Returns
    the final reducer-state refs.  ``on_round`` is invoked after each
    round's reduce tasks are submitted -- this is where online aggregation
    hooks in its asynchronous partial-aggregate computation.
    """
    if not input_rounds:
        raise ValueError("streaming shuffle needs at least one round")
    map_task = rt.remote(
        unwrap_single_return(map_fn, num_reduces),
        num_returns=num_reduces,
        **(map_options or {}),
    )
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))

    reduce_states: List[Optional[ObjectRef]] = [None] * num_reduces
    for rnd, round_inputs in enumerate(input_rounds):
        map_results = [map_task.remote(part) for part in round_inputs]
        if num_reduces == 1:
            map_results = [[ref] for ref in map_results]
        if rnd > 0:
            # Throttle: one round of reducers in flight at a time.
            live = [ref for ref in reduce_states if ref is not None]
            rt.wait(live, num_returns=len(live))
        reduce_states = [
            reduce_task.remote(
                reduce_states[r], *[column[r] for column in map_results]
            )
            for r in range(num_reduces)
        ]
        if on_round is not None:
            on_round(rnd, list(reduce_states))
    return list(reduce_states)
