"""Riffle with runtime introspection (the §4.3.2 extension).

Instead of pinning maps statically, the library observes where map
outputs actually land (``rt.locations_of``) as tasks finish and builds
per-node merge groups dynamically, flushing on Riffle's block-size
threshold -- the introspection-driven variant the paper sketches.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import unwrap_single_return

def riffle_shuffle_dynamic(
    rt: Runtime,
    inputs: Sequence[Any],
    map_fn: Callable[[Any], List[Any]],
    merge_fn: Callable[..., List[Any]],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    merge_factor: int = 4,
    merge_threshold_bytes: Optional[int] = None,
    map_options: Optional[Dict[str, Any]] = None,
    merge_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Riffle with *runtime introspection* instead of static placement.

    Maps are scheduled freely; as each finishes, the library asks the
    system where its outputs landed (``rt.locations_of``, §4.3.2) and
    accumulates per-node merge groups -- Riffle's "as soon as F map tasks
    finish on an executor node".  A group is flushed when it reaches
    ``merge_factor`` maps or, if ``merge_threshold_bytes`` is given,
    Riffle's dynamic block-size policy: when the group's accumulated
    output bytes cross the threshold.
    """
    num_maps = len(inputs)
    if num_maps == 0:
        raise ValueError("shuffle needs at least one map input")
    if merge_factor < 1:
        raise ValueError("merge factor must be >= 1")
    map_task = rt.remote(
        unwrap_single_return(map_fn, num_reduces),
        num_returns=num_reduces,
        **(map_options or {}),
    )
    merge_task = rt.remote(
        unwrap_single_return(merge_fn, num_reduces),
        num_returns=num_reduces,
        **(merge_options or {}),
    )
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))

    map_out: List[List[ObjectRef]] = []
    for part in inputs:
        refs = map_task.remote(part)
        map_out.append([refs] if num_reduces == 1 else refs)

    merge_out: List[List[ObjectRef]] = []

    def flush(node: Any, group: List[int]) -> None:
        args = [map_out[m][r] for m in group for r in range(num_reduces)]
        refs = merge_task.options(node=node).remote(*args)
        merge_out.append([refs] if num_reduces == 1 else refs)

    # Track completion via each map's first output block.
    pending: Dict[ObjectRef, int] = {row[0]: m for m, row in enumerate(map_out)}
    groups: Dict[Any, List[int]] = {}
    group_bytes: Dict[Any, int] = {}
    while pending:
        ready, _ = rt.wait(list(pending), num_returns=1)
        for ref in ready:
            m = pending.pop(ref, None)
            if m is None:
                continue
            locations = rt.locations_of(ref)
            node = locations[0] if locations else None
            groups.setdefault(node, []).append(m)
            group_bytes[node] = group_bytes.get(node, 0) + sum(
                rt.object_size(out) for out in map_out[m]
            )
            full = len(groups[node]) >= merge_factor or (
                merge_threshold_bytes is not None
                and group_bytes[node] >= merge_threshold_bytes
            )
            if full:
                flush(node, groups.pop(node))
                group_bytes.pop(node, None)
    for node, group in groups.items():
        flush(node, group)

    return [
        reduce_task.remote(*[column[r] for column in merge_out])
        for r in range(num_reduces)
    ]
