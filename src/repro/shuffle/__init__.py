"""Shuffle as an application-level library over distributed futures (§3).

This package is the paper's contribution: each module re-implements a
previously *monolithic* shuffle design as a short program against the
distributed-futures API, sharing the same data plane:

- :mod:`repro.shuffle.simple` -- pull-based MapReduce shuffle (§3.1.1).
- :mod:`repro.shuffle.riffle` -- pre-shuffle merge a la Riffle (§3.1.2).
- :mod:`repro.shuffle.magnet` -- push-based shuffle a la Magnet (§3.1.3).
- :mod:`repro.shuffle.push` -- the pipelined two-stage push shuffle of
  Listing 3 / §4.1, in ES-push and ES-push* (eager-free) variants.
- :mod:`repro.shuffle.streaming` -- round-based streaming shuffle for
  online aggregation (§3.2.1).

All take the same shape of arguments: a runtime, a list of map inputs
(object refs or plain values), a ``map_fn(input) -> [R blocks]``, a
``reduce_fn(*blocks) -> output``, and return one object ref per reduce
partition without blocking -- callers pipeline on the refs with
``rt.get`` / ``rt.wait`` exactly as the paper's applications do.
"""

from repro.shuffle.simple import simple_shuffle
from repro.shuffle.riffle import riffle_shuffle
from repro.shuffle.riffle_dynamic import riffle_shuffle_dynamic
from repro.shuffle.magnet import magnet_shuffle
from repro.shuffle.push import push_based_shuffle
from repro.shuffle.streaming import streaming_shuffle
from repro.shuffle.select import choose_shuffle

__all__ = [
    "simple_shuffle",
    "riffle_shuffle",
    "riffle_shuffle_dynamic",
    "magnet_shuffle",
    "push_based_shuffle",
    "streaming_shuffle",
    "choose_shuffle",
]
