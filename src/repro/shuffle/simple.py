"""Simple (pull-based) shuffle: the MapReduce baseline of §3.1.1.

Every map task returns one block per reduce partition; every reduce task
pulls its column of blocks.  Block count is M x R, which is what makes
this variant degrade as partitions shrink (Fig 4a/4b).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.futures import ObjectRef, Runtime
from repro.shuffle.common import unwrap_single_return


def simple_shuffle(
    rt: Runtime,
    inputs: Sequence[Any],
    map_fn: Callable[[Any], List[Any]],
    reduce_fn: Callable[..., Any],
    num_reduces: int,
    map_options: Optional[Dict[str, Any]] = None,
    reduce_options: Optional[Dict[str, Any]] = None,
) -> List[ObjectRef]:
    """Submit a full pull-based shuffle; returns one ref per reducer.

    Non-blocking: the entire task graph is submitted eagerly and the
    caller consumes the returned refs with ``rt.get``/``rt.wait``.
    """
    num_maps = len(inputs)
    if num_maps == 0:
        raise ValueError("shuffle needs at least one map input")
    map_task = rt.remote(
        unwrap_single_return(map_fn, num_reduces),
        num_returns=num_reduces,
        **(map_options or {}),
    )
    reduce_task = rt.remote(reduce_fn, **(reduce_options or {}))

    map_out = [map_task.remote(part) for part in inputs]
    if num_reduces == 1:
        map_out = [[ref] for ref in map_out]
    return [
        reduce_task.remote(*[map_out[m][r] for m in range(num_maps)])
        for r in range(num_reduces)
    ]
