"""Shared plumbing for the shuffle libraries."""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from repro.common.ids import NodeId
from repro.futures import Runtime

T = TypeVar("T")


def worker_nodes(rt: Runtime) -> List[NodeId]:
    """The nodes a shuffle spreads work across (all alive nodes)."""
    nodes = [node.node_id for node in rt.cluster.alive_nodes()]
    if not nodes:
        raise RuntimeError("no alive nodes for shuffle")
    return nodes


def assign_reducers(num_reduces: int, nodes: Sequence[NodeId]) -> List[List[int]]:
    """Round-robin reducer ids onto workers; entry w lists worker w's
    reducer partitions (the paper's NUM_REDUCERS_PER_WORKER grouping)."""
    assignment: List[List[int]] = [[] for _ in nodes]
    for r in range(num_reduces):
        assignment[r % len(nodes)].append(r)
    return assignment


def unwrap_single_return(fn, num_returns: int):
    """Adapt an R-way function for ``num_returns=1`` submission.

    Shuffle map/merge functions return a *list* of R blocks; when R == 1
    the runtime stores a task's single return value as-is, so the
    one-element list must be unwrapped to keep block types uniform.
    """
    if num_returns > 1:
        return fn

    def adapted(*args):
        blocks = fn(*args)
        if not isinstance(blocks, (list, tuple)) or len(blocks) != 1:
            raise ValueError(
                f"{getattr(fn, '__name__', 'map_fn')} must return exactly "
                f"one block when there is a single partition"
            )
        return blocks[0]

    adapted.__name__ = getattr(fn, "__name__", "adapted")
    return adapted


def chunks(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]
