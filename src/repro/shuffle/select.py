"""Runtime shuffle selection (§5.1.3, §7) -- now a thin wrapper.

The paper's closing observation: the best shuffle depends on data size,
layout, and hardware, and a library architecture lets the application
pick *at run time* without deploying another system.  The empirical
two-way rule this module historically encoded --

- data fits comfortably in aggregate object-store memory and partitions
  are few  -> simple shuffle (merging would only add overhead, Fig 4c);
- otherwise -> push-based shuffle (I/O efficiency and pipelining win)

-- now lives in the plan layer as the ``rule="empirical"`` lowering
rule (:func:`repro.plan.empirical_variant`), alongside the cost model
that generalises it.  This module keeps the historical entry points
(callable-returning selection against a live runtime) and re-exports
the shared constants, so existing callers and tests are untouched.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.futures import Runtime
from repro.plan import MEMORY_HEADROOM, PARTITION_CROSSOVER, empirical_variant
from repro.shuffle.push import push_based_shuffle
from repro.shuffle.simple import simple_shuffle

__all__ = [
    "MEMORY_HEADROOM",
    "PARTITION_CROSSOVER",
    "aggregate_store_bytes",
    "choose_shuffle",
    "describe_choice",
]


def aggregate_store_bytes(rt: Runtime) -> int:
    """Total object-store capacity across *alive* nodes.

    The single source of the capacity figure used by the selection rule:
    :func:`choose_shuffle` decides against it and :func:`describe_choice`
    reports it, so the logged number is always the one that drove the
    decision (previously each recomputed it independently, and the report
    could disagree with the choice if a node died in between).
    """
    return sum(node.spec.object_store_bytes for node in rt.cluster.alive_nodes())


def _decide(
    total_data_bytes: int, num_partitions: int, store_bytes: int
) -> Callable[..., Any]:
    """The crossover rule against an already-sampled capacity figure."""
    variant = empirical_variant(store_bytes, total_data_bytes, num_partitions)
    return simple_shuffle if variant == "simple" else push_based_shuffle


def choose_shuffle(
    rt: Runtime,
    total_data_bytes: int,
    num_partitions: int,
) -> Callable[..., Any]:
    """Pick ``simple_shuffle`` or ``push_based_shuffle`` for this job."""
    return _decide(total_data_bytes, num_partitions, aggregate_store_bytes(rt))


def describe_choice(rt: Runtime, total_data_bytes: int, num_partitions: int) -> Dict[str, Any]:
    """The decision plus the inputs that drove it (for logging/tests)."""
    store_bytes = aggregate_store_bytes(rt)
    chosen = _decide(total_data_bytes, num_partitions, store_bytes)
    return {
        "algorithm": chosen.__name__,
        "total_data_bytes": total_data_bytes,
        "num_partitions": num_partitions,
        "aggregate_store_bytes": store_bytes,
    }
