"""Per-node lifecycle state for mid-run cluster elasticity.

The paper's clusters are fixed for the lifetime of a job; real
deployments add capacity under load and retire nodes when idle (or when
the cloud provider reclaims them).  :class:`ClusterMembership` is the
bookkeeping half of that story: a map from node id to lifecycle state

``active``
    A full member: the scheduler may place new work on it.
``draining``
    Leaving gracefully: it keeps running what it already has, but the
    scheduler avoids it like a blacklisted node.  When its last task
    finishes the runtime removes it.
``removed``
    Departed: no longer schedulable; its local objects are gone and the
    runtime has already arranged reconstruction (or shared-tier reads)
    for anything stranded there.

This class is deliberately *pure state*: no simulation environment, no
event bus, no side effects beyond the dict it owns.  The runtime's
``add_node`` / ``drain_node`` / ``remove_node`` drive the transitions
and own every mechanism consequence (killing managers, cleaning the
directory, emitting ``cluster.membership`` events).  Keeping the record
inert is what makes elasticity zero-cost when unused -- constructing
one for a static cluster touches nothing observable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.common.ids import NodeId

#: The three lifecycle states a member node moves through.
MEMBER_STATES = ("active", "draining", "removed")


class ClusterMembership:
    """Tracks each node's lifecycle state (active / draining / removed)."""

    def __init__(self, node_ids: Iterable[NodeId]) -> None:
        #: Current state per node, insertion-ordered (founding members
        #: first, joiners after), so iteration order is deterministic.
        self._states: Dict[NodeId, str] = {
            node_id: "active" for node_id in node_ids
        }

    # -- transitions --------------------------------------------------------
    def add(self, node_id: NodeId) -> None:
        """A new node joined the cluster as an active member."""
        if node_id in self._states:
            raise ValueError(f"node {node_id} is already a member")
        self._states[node_id] = "active"

    def drain(self, node_id: NodeId) -> None:
        """Begin a graceful departure: stop placing new work on the node."""
        state = self._require(node_id)
        if state != "active":
            raise ValueError(f"cannot drain node {node_id} in state {state!r}")
        self._states[node_id] = "draining"

    def remove(self, node_id: NodeId) -> None:
        """The node has left (from active or draining)."""
        state = self._require(node_id)
        if state == "removed":
            raise ValueError(f"node {node_id} was already removed")
        self._states[node_id] = "removed"

    def _require(self, node_id: NodeId) -> str:
        state = self._states.get(node_id)
        if state is None:
            raise ValueError(f"node {node_id} is not a cluster member")
        return state

    # -- queries ------------------------------------------------------------
    def state_of(self, node_id: NodeId) -> str:
        """The node's lifecycle state (ValueError for non-members)."""
        return self._require(node_id)

    def is_member(self, node_id: NodeId) -> bool:
        """True if the node ever joined (any state, including removed)."""
        return node_id in self._states

    def is_active(self, node_id: NodeId) -> bool:
        """True while the node is a full, schedulable member."""
        return self._states.get(node_id) == "active"

    def is_draining(self, node_id: NodeId) -> bool:
        """True while the node is leaving gracefully."""
        return self._states.get(node_id) == "draining"

    def is_removed(self, node_id: NodeId) -> bool:
        """True once the node has departed."""
        return self._states.get(node_id) == "removed"

    def schedulable(self, node_id: NodeId) -> bool:
        """True if the scheduler may still *run* work here (active or
        draining -- draining nodes finish their queue but are avoided for
        new placements the way blacklisted nodes are)."""
        return self._states.get(node_id) in ("active", "draining")

    def active_nodes(self) -> List[NodeId]:
        """Ids of all active members, in join order."""
        return [nid for nid, s in self._states.items() if s == "active"]

    def draining_nodes(self) -> List[NodeId]:
        """Ids of all draining members, in join order."""
        return [nid for nid, s in self._states.items() if s == "draining"]

    def removed_nodes(self) -> List[NodeId]:
        """Ids of all departed members, in join order."""
        return [nid for nid, s in self._states.items() if s == "removed"]

    def active_count(self) -> int:
        """How many members are active."""
        return len(self.active_nodes())

    def draining_count(self) -> int:
        """How many members are draining."""
        return len(self.draining_nodes())

    def snapshot(self) -> Dict[str, str]:
        """State per node id (stringified), for run summaries and tests."""
        return {str(nid): state for nid, state in self._states.items()}

    def __repr__(self) -> str:
        return (
            f"<ClusterMembership active={self.active_count()} "
            f"draining={self.draining_count()} "
            f"removed={len(self.removed_nodes())}>"
        )
