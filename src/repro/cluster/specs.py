"""Hardware specifications and the instance-type presets from §5.1.1.

A :class:`DiskSpec` describes an aggregate disk array by sequential
bandwidth, per-spindle seek latency, and spindle count.  The simulation
serves the array as a single FIFO byte server whose per-operation latency
is ``seek_latency / spindles``: with many spindles, seeks overlap, but a
workload of small random operations still hits an IOPS wall while large
sequential operations approach full bandwidth.  This is the property the
paper's I/O-efficiency arguments (§2.1, Fig 4, Fig 7) rest on.

The presets translate the paper's EC2 instances.  Published aggregate IOPS
figures for HDD instances reflect burst behaviour, so HDD presets instead
use mechanical seek times (~8 ms), which is what sustained shuffle I/O
experiences; SSD presets use the published IOPS directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List

from repro.common.units import GIB, MIB


@dataclass(frozen=True)
class DiskSpec:
    """An aggregate disk array on one node."""

    bandwidth_bytes_per_sec: float
    seek_latency_s: float
    spindles: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("disk bandwidth must be positive")
        if self.seek_latency_s < 0:
            raise ValueError("seek latency must be non-negative")
        if self.spindles < 1:
            raise ValueError("need at least one spindle")

    @property
    def effective_seek_latency_s(self) -> float:
        """Per-operation latency of the aggregate FIFO server."""
        return self.seek_latency_s / self.spindles


@dataclass(frozen=True)
class NicSpec:
    """A full-duplex network interface."""

    bandwidth_bytes_per_sec: float
    per_message_latency_s: float = 0.25e-3

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("NIC bandwidth must be positive")
        if self.per_message_latency_s < 0:
            raise ValueError("NIC latency must be non-negative")


@dataclass(frozen=True)
class NodeSpec:
    """One machine: cores, memory, object-store share, disk, NIC."""

    name: str
    cores: int
    memory_bytes: int
    object_store_bytes: int
    disk: DiskSpec
    nic: NicSpec

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if self.memory_bytes <= 0:
            raise ValueError("memory must be positive")
        if not 0 < self.object_store_bytes <= self.memory_bytes:
            raise ValueError(
                "object store must be positive and fit inside node memory"
            )

    def with_object_store(self, object_store_bytes: int) -> "NodeSpec":
        """A copy with a different object-store capacity (microbenches)."""
        return replace(self, object_store_bytes=object_store_bytes)


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous or heterogeneous collection of node specs."""

    nodes: List[NodeSpec] = field(default_factory=list)

    @classmethod
    def homogeneous(cls, spec: NodeSpec, count: int) -> "ClusterSpec":
        if count < 1:
            raise ValueError("cluster needs at least one node")
        return cls(nodes=[spec] * count)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes)

    @property
    def aggregate_disk_bandwidth(self) -> float:
        return sum(node.disk.bandwidth_bytes_per_sec for node in self.nodes)

    @property
    def total_object_store_bytes(self) -> int:
        return sum(node.object_store_bytes for node in self.nodes)


def _gbps(gigabits: float) -> float:
    return gigabits * 1e9 / 8


# d3.2xlarge: 8 cores, 64 GiB, 6x HDD with 1100 MiB/s aggregate sequential
# throughput, 6 Gbps baseline networking (we model the baseline, not burst).
D3_2XLARGE = NodeSpec(
    name="d3.2xlarge",
    cores=8,
    memory_bytes=64 * GIB,
    object_store_bytes=19 * GIB,  # Ray default: ~30% of RAM
    disk=DiskSpec(
        bandwidth_bytes_per_sec=1100 * MIB, seek_latency_s=8e-3, spindles=6
    ),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(6)),
)

# i3.2xlarge: 8 cores, 61 GiB, NVMe SSD 720 MB/s, 180K write IOPS,
# 2.5 Gbps baseline networking.
I3_2XLARGE = NodeSpec(
    name="i3.2xlarge",
    cores=8,
    memory_bytes=61 * GIB,
    object_store_bytes=18 * GIB,
    disk=DiskSpec(
        bandwidth_bytes_per_sec=720e6, seek_latency_s=1 / 180_000, spindles=1
    ),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(2.5)),
)

# r6i.2xlarge: 8 cores, 64 GiB, EBS-backed; used for the online-aggregation
# experiment where data streams in from S3 (modelled via the NIC).
R6I_2XLARGE = NodeSpec(
    name="r6i.2xlarge",
    cores=8,
    memory_bytes=64 * GIB,
    object_store_bytes=19 * GIB,
    disk=DiskSpec(bandwidth_bytes_per_sec=500e6, seek_latency_s=1e-4, spindles=1),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(12.5)),
)

# g4dn.4xlarge: 16 cores, 64 GiB, NVMe, T4 GPU (the accelerator itself is
# modelled in repro.ml), 20 Gbps networking.
G4DN_4XLARGE = NodeSpec(
    name="g4dn.4xlarge",
    cores=16,
    memory_bytes=64 * GIB,
    object_store_bytes=19 * GIB,
    disk=DiskSpec(bandwidth_bytes_per_sec=1000e6, seek_latency_s=1e-5, spindles=1),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(20)),
)

# The single fat node used in the Dask-vs-Ray comparison (Fig 6):
# 32 vCPUs, 244 GB RAM.  The object store is sized generously (a tuned
# single-node data-processing configuration, as in the Dask-on-Ray
# experiments) rather than Ray's conservative 30% default -- Dask's
# executors get the whole 244 GB as heap, so parity demands it.
LOCAL_32CPU = NodeSpec(
    name="local-32cpu",
    cores=32,
    memory_bytes=244 * 10**9,
    object_store_bytes=170 * 10**9,
    disk=DiskSpec(bandwidth_bytes_per_sec=1000e6, seek_latency_s=1e-5, spindles=1),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(10)),
)

# The sc1 cold-HDD volume used for the Fig 7 spilling microbenchmark:
# very low throughput and a single slow spindle, so the small-I/O penalty
# is pronounced.
SC1_MICROBENCH = NodeSpec(
    name="sc1-microbench",
    cores=8,
    memory_bytes=32 * GIB,
    object_store_bytes=1 * GIB,
    disk=DiskSpec(bandwidth_bytes_per_sec=90 * MIB, seek_latency_s=12e-3, spindles=1),
    nic=NicSpec(bandwidth_bytes_per_sec=_gbps(10)),
)
