"""Failure injection for the §5.1.5 fault-tolerance experiments.

The paper's methodology: "we fail and restart a random worker node 30
seconds after the start of the run", losing both the executors and the
node's object store.  :class:`FailurePlan` describes such events
declaratively; :class:`FailureInjector` schedules them on the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.rng import seeded_rng
from repro.cluster.fabric import Cluster


@dataclass(frozen=True)
class FailurePlan:
    """Kill one node at ``at_time``; restart it ``downtime`` later.

    ``node_index`` picks the victim among the cluster's nodes; ``None``
    selects pseudo-randomly from ``seed`` (never node 0, which by
    convention hosts the driver -- the paper fails a *worker* node).
    """

    at_time: float
    downtime: float = 10.0
    node_index: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.at_time < 0:
            raise ValueError("failure time must be non-negative")
        if self.downtime < 0:
            raise ValueError("downtime must be non-negative")


class FailureInjector:
    """Schedules :class:`FailurePlan` events against a cluster."""

    def __init__(self, cluster: Cluster, plans: Sequence[FailurePlan] = ()) -> None:
        self.cluster = cluster
        self.plans = list(plans)
        self.injected: List[tuple] = []  # (time, node_id) log, for assertions
        # Resolve every victim *before* scheduling anything: an invalid
        # plan (e.g. random selection on a 1-node cluster) must raise with
        # zero events scheduled, not after some plans are already armed.
        victims = [self._choose_victim_index(plan) for plan in self.plans]
        for plan, victim_index in zip(self.plans, victims):
            self._schedule(plan, victim_index)

    def _choose_victim_index(self, plan: FailurePlan) -> int:
        num_nodes = len(self.cluster)
        if plan.node_index is not None:
            if not 0 <= plan.node_index < num_nodes:
                raise ValueError(
                    f"node_index {plan.node_index} out of range "
                    f"(cluster has {num_nodes} nodes)"
                )
            return plan.node_index
        if num_nodes < 2:
            raise ValueError("random victim selection needs >= 2 nodes")
        rng = seeded_rng(plan.seed, "failure", plan.at_time)
        return int(rng.integers(1, num_nodes))

    def _schedule(self, plan: FailurePlan, victim_index: int) -> None:
        node = self.cluster.nodes[victim_index]

        def kill() -> None:
            self.injected.append((self.cluster.env.now, node.node_id))
            node.fail()
            self.cluster.env.call_later(plan.downtime, node.restart)

        self.cluster.env.call_later(plan.at_time, kill)
