"""The cluster object: nodes wired together by a network fabric.

Transfers between nodes occupy the sender's egress NIC and the receiver's
ingress NIC; completion requires both, so whichever side is more contended
becomes the bottleneck.  Same-node "transfers" are free (the object store
provides zero-copy shared-memory reads, §4.2.1).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.common.ids import IdGenerator, NodeId
from repro.cluster.node import Node
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.simcore import Environment, Event


class NodeFailure(Exception):
    """Raised into processes running on (or transferring via) a dead node."""

    def __init__(self, node_id: NodeId) -> None:
        super().__init__(f"node {node_id} failed")
        self.node_id = node_id


class LinkDown(IOError):
    """A transfer was attempted over an administratively-dropped link.

    Subclasses :class:`IOError` so the data plane's fetch-retry paths
    treat a dropped link exactly like any other transient I/O fault:
    back off and try again (possibly from another source).
    """

    def __init__(self, src: NodeId, dst: NodeId) -> None:
        super().__init__(f"link {src} -> {dst} is down")
        self.src = src
        self.dst = dst


class Cluster:
    """All nodes plus the fabric connecting them."""

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        ids: Optional[IdGenerator] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.ids = ids or IdGenerator()
        self._nodes: Dict[NodeId, Node] = {}
        for node_spec in spec.nodes:
            node_id = self.ids.next_node_id()
            self._nodes[node_id] = Node(env, node_id, node_spec)
        # Cumulative fabric statistics.
        self.network_bytes_sent = 0
        # Directed node pairs whose link is administratively down (the
        # chaos layer's LINK_DOWN fault); transfers over them fail with
        # :class:`LinkDown` until restored.
        self._down_links: Set[Tuple[NodeId, NodeId]] = set()

    # -- topology -----------------------------------------------------------
    @property
    def node_ids(self) -> List[NodeId]:
        return list(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def node(self, node_id: NodeId) -> Node:
        """Look a node up by id."""
        return self._nodes[node_id]

    def alive_nodes(self) -> List[Node]:
        """The nodes currently up."""
        return [node for node in self._nodes.values() if node.alive]

    def add_node(self, node_spec: NodeSpec) -> Node:
        """Provision a new node mid-run (cluster elasticity).

        Mints a fresh node id from the cluster's id generator, creates
        the node, and registers it in the fabric so transfers to and
        from it work immediately.  The caller (the runtime's
        ``add_node``) is responsible for the control-plane side: a node
        manager, death listeners, and membership state.
        """
        node_id = self.ids.next_node_id()
        node = Node(self.env, node_id, node_spec)
        self._nodes[node_id] = node
        return node

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    # -- link administration (chaos hooks) ----------------------------------
    def set_link_down(self, src: NodeId, dst: NodeId) -> None:
        """Drop the directed link ``src -> dst`` (idempotent)."""
        self._down_links.add((src, dst))

    def set_link_up(self, src: NodeId, dst: NodeId) -> None:
        """Restore the directed link ``src -> dst`` (idempotent)."""
        self._down_links.discard((src, dst))

    def link_is_down(self, src: NodeId, dst: NodeId) -> bool:
        """True while the directed link is administratively dropped."""
        return (src, dst) in self._down_links

    # -- data movement --------------------------------------------------------
    def send(self, src: NodeId, dst: NodeId, nbytes: int) -> Event:
        """Move ``nbytes`` from ``src`` to ``dst``; completes when both
        NIC directions have carried the payload."""
        if src == dst:
            done = self.env.event()
            done.succeed()
            return done
        src_node, dst_node = self._nodes[src], self._nodes[dst]
        if not src_node.alive:
            return self._failed_event(src)
        if not dst_node.alive:
            return self._failed_event(dst)
        if (src, dst) in self._down_links:
            event = self.env.event()
            event.fail(LinkDown(src, dst))
            return event
        self.network_bytes_sent += nbytes
        egress = src_node.nic_out.transfer(nbytes)
        ingress = dst_node.nic_in.transfer(nbytes)
        return self.env.all_of([egress, ingress])

    def _failed_event(self, node_id: NodeId) -> Event:
        event = self.env.event()
        event.fail(NodeFailure(node_id))
        return event

    # -- construction helpers ---------------------------------------------
    @classmethod
    def homogeneous(
        cls, env: Environment, node_spec: NodeSpec, count: int
    ) -> "Cluster":
        return cls(env, ClusterSpec.homogeneous(node_spec, count))
