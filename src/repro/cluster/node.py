"""A simulated machine: resources plus liveness state."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

from repro.common.ids import NodeId
from repro.simcore import BandwidthResource, Environment, Event, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.specs import NodeSpec


class Node:
    """One cluster node with CPU, disk, and NIC resources.

    Liveness: :meth:`fail` marks the node dead, fails its I/O devices, and
    notifies registered death listeners (the runtime uses these to
    interrupt resident tasks and drop store contents).  :meth:`restart`
    brings the node back with empty state, incrementing ``incarnation`` so
    stale references to the previous life can be detected.

    Degradation: the chaos layer (:mod:`repro.chaos`) drives partial
    faults through :meth:`set_compute_dilation` (CPU slowdown),
    :meth:`degrade_disk`, and :meth:`degrade_nic` (bandwidth collapse);
    :meth:`clear_degradations` restores a healthy node.
    """

    def __init__(self, env: Environment, node_id: NodeId, spec: "NodeSpec") -> None:
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.alive = True
        self.incarnation = 0
        #: Multiplier on task compute time (>= 1 models a slow/contended
        #: CPU); driven by the chaos layer's SLOW_NODE fault.
        self.compute_dilation = 1.0
        self.cpu = Resource(env, spec.cores, name=f"{node_id}.cpu")
        self.disk = BandwidthResource(
            env,
            spec.disk.bandwidth_bytes_per_sec,
            per_op_latency=spec.disk.effective_seek_latency_s,
            name=f"{node_id}.disk",
        )
        self.nic_in = BandwidthResource(
            env,
            spec.nic.bandwidth_bytes_per_sec,
            per_op_latency=spec.nic.per_message_latency_s,
            name=f"{node_id}.nic_in",
        )
        self.nic_out = BandwidthResource(
            env,
            spec.nic.bandwidth_bytes_per_sec,
            per_op_latency=spec.nic.per_message_latency_s,
            name=f"{node_id}.nic_out",
        )
        self._death_listeners: List[Callable[["Node"], None]] = []
        self._restart_listeners: List[Callable[["Node"], None]] = []

    # -- I/O convenience ---------------------------------------------------
    def disk_write(self, nbytes: int, sequential: bool = True) -> Event:
        """Write ``nbytes`` to the local disk array.

        Sequential writes skip the seek penalty (the head is already
        positioned); random writes pay it.
        """
        latency = 0.0 if sequential else None
        return self.disk.transfer(nbytes, latency=latency)

    def disk_read(self, nbytes: int, sequential: bool = False) -> Event:
        """Read ``nbytes``; shuffle-block reads are random by default."""
        latency = 0.0 if sequential else None
        return self.disk.transfer(nbytes, latency=latency)

    # -- degradation (chaos hooks) ------------------------------------------
    def set_compute_dilation(self, factor: float) -> None:
        """Dilate task compute time by ``factor`` (1.0 = healthy)."""
        if factor <= 0:
            raise ValueError(f"compute dilation must be positive, got {factor}")
        self.compute_dilation = float(factor)

    def degrade_disk(self, rate_factor: float) -> None:
        """Scale disk service rate by ``rate_factor`` (1.0 = healthy)."""
        self.disk.set_rate_factor(rate_factor)

    def degrade_nic(self, rate_factor: float) -> None:
        """Scale both NIC directions' service rate (1.0 = healthy)."""
        self.nic_in.set_rate_factor(rate_factor)
        self.nic_out.set_rate_factor(rate_factor)

    def clear_degradations(self) -> None:
        """Restore compute, disk, and NIC to their healthy rates."""
        self.compute_dilation = 1.0
        self.disk.set_rate_factor(1.0)
        self.nic_in.set_rate_factor(1.0)
        self.nic_out.set_rate_factor(1.0)

    # -- liveness -----------------------------------------------------------
    def on_death(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback invoked when this node fails."""
        self._death_listeners.append(listener)

    def on_restart(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback invoked when this node comes back up."""
        self._restart_listeners.append(listener)

    def fail(self) -> None:
        """Kill the node: I/O fails, listeners fire. Idempotent."""
        if not self.alive:
            return
        self.alive = False
        error = IOError(f"node {self.node_id} failed")
        self.disk.set_failed(error)
        self.nic_in.set_failed(error)
        self.nic_out.set_failed(error)
        for listener in list(self._death_listeners):
            listener(self)

    def retire(self) -> None:
        """Take the node out of service *without* firing death listeners.

        Used for planned departures (cluster membership's
        ``remove_node``): the caller has already interrupted resident
        work and cleaned up state, so the failure-handling listeners --
        which would start a heartbeat-timeout recovery for an
        *unplanned* death -- must not run.  I/O devices still fail so
        in-flight transfers touching this node error out and retry
        elsewhere.  Idempotent; a no-op on an already-dead node.
        """
        if not self.alive:
            return
        self.alive = False
        error = IOError(f"node {self.node_id} retired")
        self.disk.set_failed(error)
        self.nic_in.set_failed(error)
        self.nic_out.set_failed(error)

    def restart(self) -> None:
        """Revive the node with empty state. Idempotent while alive."""
        if self.alive:
            return
        self.alive = True
        self.incarnation += 1
        self.disk.set_failed(None)
        self.nic_in.set_failed(None)
        self.nic_out.set_failed(None)
        for listener in list(self._restart_listeners):
            listener(self)

    def __repr__(self) -> str:
        status = "up" if self.alive else "DOWN"
        return f"<Node {self.node_id} {self.spec.name} {status}>"
