"""Cluster hardware model: nodes, disks, NICs, network fabric, failures.

The paper evaluates on AWS instance families (§5.1.1).  This package models
each node as a bundle of contended resources on the simulation engine:

- CPU cores -- a counted :class:`~repro.simcore.Resource`.
- An aggregate disk array -- a :class:`~repro.simcore.BandwidthResource`
  whose per-operation latency models seek time, so random small I/O pays
  the IOPS wall while large sequential I/O runs at full bandwidth.
- A full-duplex NIC -- independent ingress and egress byte servers.

Failure injection (`FailureInjector`) kills a node at a chosen time (losing
its memory contents and interrupting resident work) and restarts it after a
delay, reproducing the §5.1.5 fault-tolerance experiments.
"""

from repro.cluster.node import Node
from repro.cluster.specs import (
    ClusterSpec,
    DiskSpec,
    NicSpec,
    NodeSpec,
    D3_2XLARGE,
    G4DN_4XLARGE,
    I3_2XLARGE,
    LOCAL_32CPU,
    R6I_2XLARGE,
    SC1_MICROBENCH,
)
from repro.cluster.fabric import Cluster, NodeFailure
from repro.cluster.failures import FailureInjector, FailurePlan
from repro.cluster.membership import ClusterMembership
from repro.cluster.shared_store import SharedStoreBackend

__all__ = [
    "Node",
    "ClusterMembership",
    "SharedStoreBackend",
    "NodeSpec",
    "DiskSpec",
    "NicSpec",
    "ClusterSpec",
    "Cluster",
    "NodeFailure",
    "FailureInjector",
    "FailurePlan",
    "D3_2XLARGE",
    "I3_2XLARGE",
    "R6I_2XLARGE",
    "G4DN_4XLARGE",
    "LOCAL_32CPU",
    "SC1_MICROBENCH",
]
