"""A disaggregated (remote) object store for durable spill.

The paper spills to node-local disk, so a node's death loses its
spilled shuffle blocks and recovery must re-execute lineage (§5.1.5).
Production shuffle systems instead externalize intermediate data to a
shared service (FuxiShuffle's shuffle workers, BlobShuffle's blob
storage) so that node loss costs only re-reads, never recompute.

:class:`SharedStoreBackend` models that tier: one cluster-wide byte
server (a :class:`~repro.simcore.BandwidthResource` with aggregate
bandwidth and per-request latency) plus a registry of the objects it
holds.  It is node-agnostic by construction -- nothing here references a
node id -- which is exactly the durability property: killing any node
changes nothing about what the tier can serve.

Writers and readers pay *both* their own NIC direction and this
resource, so a single hot store can become the bottleneck under fan-in,
as it does in real disaggregated deployments.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.ids import ObjectId
from repro.simcore import BandwidthResource, Environment, Event


class SharedStoreBackend:
    """The simulated remote spill tier: bandwidth, latency, contents."""

    def __init__(
        self,
        env: Environment,
        bandwidth_bytes_per_sec: float,
        per_op_latency_s: float = 0.0,
        name: str = "shared-store",
    ) -> None:
        self.env = env
        #: The tier's aggregate byte server; every read and write queues
        #: here, so concurrent spills from many nodes contend.
        self.resource = BandwidthResource(
            env,
            bandwidth_bytes_per_sec,
            per_op_latency=per_op_latency_s,
            name=name,
        )
        self._objects: Dict[ObjectId, int] = {}
        #: Total bytes ever written into the tier.
        self.bytes_written = 0
        #: Total bytes ever served back out of the tier.
        self.bytes_read = 0

    # -- contents -------------------------------------------------------------
    def contains(self, object_id: ObjectId) -> bool:
        """True while the tier holds a copy of the object."""
        return object_id in self._objects

    def size_of(self, object_id: ObjectId) -> int:
        """Stored size of an object the tier holds (KeyError if absent)."""
        return self._objects[object_id]

    def objects(self) -> List[ObjectId]:
        """Object ids currently held, in insertion order."""
        return list(self._objects)

    @property
    def used_bytes(self) -> int:
        """Bytes currently held across all objects."""
        return sum(self._objects.values())

    def add(self, object_id: ObjectId, size: int) -> None:
        """Record an object whose write has completed."""
        self._objects[object_id] = size

    def forget(self, object_id: ObjectId) -> None:
        """Drop an object (its cluster-wide refcount hit zero)."""
        self._objects.pop(object_id, None)

    # -- I/O -----------------------------------------------------------------
    def write(self, nbytes: int) -> Event:
        """Charge one write of ``nbytes`` through the tier's resource."""
        self.bytes_written += nbytes
        return self.resource.transfer(nbytes)

    def read(self, nbytes: int) -> Event:
        """Charge one read of ``nbytes`` through the tier's resource."""
        self.bytes_read += nbytes
        return self.resource.transfer(nbytes)
