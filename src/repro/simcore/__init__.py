"""A small deterministic discrete-event simulation engine.

The engine is in the style of SimPy but purpose-built: processes are Python
generators that yield *events* (timeouts, bare events, other processes, or
combinators) and are resumed when those events trigger.  Everything the
reproduction simulates -- disks, NICs, CPU cores, the distributed-futures
runtime, failures -- is built from these primitives.

Determinism: the event queue breaks time ties by a monotonically increasing
sequence number, and no wall-clock or OS randomness is consulted anywhere,
so a simulation with the same inputs always produces the same trace.
"""

from repro.simcore.engine import Environment, Process
from repro.simcore.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.simcore.resources import BandwidthResource, Resource

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "BandwidthResource",
]
