"""Event primitives for the simulation engine.

An :class:`Event` moves through three states: *pending* (created),
*triggered* (a value or error has been set and callback delivery is
scheduled), and *processed* (callbacks have run).  Processes that yield an
already-processed event are resumed on the next queue step at the current
simulated time, so "wait on a done event" is always safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simcore.engine import Environment


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` is whatever the interrupter passed -- for example the
    failure record of the node a task was running on.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on."""

    _PENDING = 0
    _TRIGGERED = 1
    _PROCESSED = 2

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._state = Event._PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state != Event._PENDING

    @property
    def processed(self) -> bool:
        return self._state == Event._PROCESSED

    @property
    def ok(self) -> bool:
        """True once the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise RuntimeError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._value = value
        self._state = Event._TRIGGERED
        self.env._schedule(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an error; waiters will see it raised."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._state = Event._TRIGGERED
        self.env._schedule(0.0, self)
        return self

    # -- engine internals --------------------------------------------------
    def _process_callbacks(self) -> None:
        """Run callbacks exactly once; invoked by the engine."""
        if self._state == Event._PROCESSED:
            return
        self._state = Event._PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately-ish if already processed."""
        if self._state == Event._PROCESSED:
            # Deliver on the next engine step at the current time so that
            # callback ordering stays deterministic.
            self.env._schedule_callback(0.0, lambda: callback(self))
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        states = {0: "pending", 1: "triggered", 2: "processed"}
        return f"<{type(self).__name__} {states[self._state]}>"


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = Event._TRIGGERED
        env._schedule(delay, self)


class _Condition(Event):
    """Base for AllOf / AnyOf combinators."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                self._pending += 1
                event.add_callback(self._on_child)
        self._check_empty()

    def _check_empty(self) -> None:
        if not self._events and not self.triggered:
            self.succeed(self._result())

    def _result(self) -> Any:
        raise NotImplementedError

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails, with that child's exception.  The
    success value is the list of child values in construction order.
    """

    def _result(self) -> Any:
        return [event.value for event in self._events]

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending <= 0 and all(e.triggered for e in self._events):
            self.succeed(self._result())


class AnyOf(_Condition):
    """Succeeds when the first child succeeds (value: that child's value).

    Fails only if *all* children fail, with the first failure observed.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        self._first_error: Optional[BaseException] = None
        self._failed = 0
        super().__init__(env, events)

    def _result(self) -> Any:
        return None

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
            return
        self._failed += 1
        if self._first_error is None:
            self._first_error = event.exception
        if self._failed == len(self._events):
            self.fail(self._first_error)  # type: ignore[arg-type]
