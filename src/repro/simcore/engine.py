"""The event loop and generator-based processes."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.simcore.events import AllOf, AnyOf, Event, Interrupt, Timeout

ProcessGenerator = Generator[Event, Any, Any]


class _CallbackEvent(Event):
    """Internal event used to run a bare callable at a scheduled time."""

    def __init__(self, env: "Environment", fn: Callable[[], None]) -> None:
        super().__init__(env)
        self._state = Event._TRIGGERED
        self.add_callback(lambda _event: fn())


class Environment:
    """Holds simulated time and the pending-event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()

    # -- scheduling -------------------------------------------------------
    def _schedule(self, delay: float, event: Event) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), event))

    def _schedule_callback(self, delay: float, fn: Callable[[], None]) -> None:
        event = _CallbackEvent(self, fn)
        heapq.heappush(self._queue, (self.now + delay, next(self._seq), event))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._schedule_callback(delay, fn)

    # -- factory helpers ----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that succeeds when every child has succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that succeeds with the first child that succeeds."""
        return AnyOf(self, events)

    def process(self, generator: ProcessGenerator, name: str = "") -> "Process":
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next queued event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Pop and process one event.

        ``run``/``run_until_event`` call ``self.step()``, so an
        *instance* attribute shadowing this method takes effect for a
        whole run -- the self-profiler (``repro.obs.profile``) attaches
        exactly that way and restores the class method on detach.  Any
        shadow must preserve this body's semantics bit-for-bit: pop,
        monotonicity check, clock advance, callback processing.
        """
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise RuntimeError("event queue went backwards in time")
        self.now = when
        event._process_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        When ``until`` is given, time is advanced to exactly ``until`` even
        if the queue drains earlier, mirroring SimPy semantics.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        if until < self.now:
            raise ValueError(f"run(until={until}) is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= until:
            self.step()
        self.now = until

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Drive the simulation until ``event`` is processed; return its value.

        Raises ``RuntimeError`` if the queue drains (deadlock) or the time
        ``limit`` passes before the event triggers -- both indicate bugs in
        the simulated program rather than expected outcomes.
        """
        while not event.processed:
            if not self._queue:
                raise RuntimeError(
                    f"deadlock: event queue drained at t={self.now} "
                    f"while waiting for {event!r}"
                )
            if self.peek() > limit:
                raise RuntimeError(
                    f"time limit {limit} exceeded waiting for {event!r}"
                )
            self.step()
        return event.value


class Process(Event):
    """A running generator; also an event that triggers on completion.

    The generator yields events; the process resumes when each triggers,
    receiving the event's value (or having its exception thrown in).  The
    process's own completion value is the generator's return value.
    """

    def __init__(
        self, env: Environment, generator: ProcessGenerator, name: str = ""
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start executing on the next engine step.
        env._schedule_callback(0.0, self._start)

    def __repr__(self) -> str:
        return f"<Process {self.name} waiting_on={self._waiting_on!r}>"

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _start(self) -> None:
        if self.triggered:  # interrupted before it ever ran
            return
        self._advance(lambda: self._generator.send(None))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A no-op if the process already finished.  The event the process was
        waiting on is abandoned: its trigger will be ignored.
        """
        if self.triggered:
            return
        self._waiting_on = None
        self.env._schedule_callback(
            0.0, lambda: self._advance(lambda: self._generator.throw(Interrupt(cause)))
        )

    # -- internals --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered or event is not self._waiting_on:
            return  # stale wakeup (we were interrupted past this wait)
        self._waiting_on = None
        if event.ok:
            value = event.value
            self._advance(lambda: self._generator.send(value))
        else:
            exception = event.exception
            assert exception is not None
            self._advance(lambda: self._generator.throw(exception))

    def _advance(self, step: Callable[[], Any]) -> None:
        if self.triggered:
            return
        try:
            target = step()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # The process did not catch its own interrupt: treat as failure.
            self.fail(RuntimeError(f"process {self.name} died of interrupt"))
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via the event
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    f"process {self.name} yielded {target!r}; processes may "
                    "only yield Event instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
