"""Contended resources: counted slots (CPU cores) and byte servers (I/O).

Two models cover everything the reproduction needs:

- :class:`Resource` -- a fixed number of interchangeable slots with a FIFO
  wait queue.  Used for CPU cores and executor slots.
- :class:`BandwidthResource` -- a FIFO byte server with a fixed service
  rate plus an optional per-operation latency.  Used for disks (where the
  per-op latency models seek time / IOPS limits) and NIC directions.  A
  transfer of *n* bytes occupies the server for ``latency + n/bandwidth``
  seconds; queued transfers are served in arrival order, which is how
  contention between, say, spill writes and shuffle reads arises.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Set

from repro.simcore.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.engine import Environment


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw the claim (whether queued or already granted)."""
        self.resource._cancel(self)


class Resource:
    """``capacity`` interchangeable slots with FIFO granting."""

    def __init__(self, env: "Environment", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._users: Set[Request] = set()
        self._waiting: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event succeeds when granted."""
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot and wake the next waiter, if any."""
        if request not in self._users:
            raise ValueError("release of a request that does not hold a slot")
        self._users.discard(request)
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            self._users.discard(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<Resource {self.name or id(self)} {self.in_use}/{self.capacity}"
            f" queued={self.queue_length}>"
        )


class _Transfer(Event):
    def __init__(
        self, env: "Environment", nbytes: int, latency: float
    ) -> None:
        super().__init__(env)
        self.nbytes = nbytes
        self.latency = latency


class BandwidthResource:
    """A FIFO byte server: ``service_time = latency + nbytes / bandwidth``.

    Tracks utilisation statistics (busy seconds, bytes served, operation
    count) for the metrics layer.  ``set_failed`` models a device on a dead
    node: queued and future transfers fail with the given exception until
    the device is revived.  ``set_rate_factor`` degrades (or restores) the
    effective service rate without failing anything -- the chaos layer uses
    it to model slow disks and cut NIC bandwidth.
    """

    def __init__(
        self,
        env: "Environment",
        bandwidth_bytes_per_sec: float,
        per_op_latency: float = 0.0,
        name: str = "",
    ) -> None:
        if bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if per_op_latency < 0:
            raise ValueError("per-op latency must be non-negative")
        self.env = env
        self.bandwidth = float(bandwidth_bytes_per_sec)
        self.per_op_latency = float(per_op_latency)
        self.name = name
        #: Multiplier on the effective service rate; 1.0 is healthy, values
        #: in (0, 1) model a degraded device.  Applied when a transfer is
        #: *served*, so a factor change mid-queue affects waiting transfers.
        self.rate_factor = 1.0
        self._queue: Deque[_Transfer] = deque()
        self._busy = False
        self._failure: Optional[BaseException] = None
        # statistics
        self.busy_seconds = 0.0
        self.bytes_served = 0
        self.ops_served = 0

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        return self._busy

    def transfer(self, nbytes: int, latency: Optional[float] = None) -> Event:
        """Enqueue a transfer of ``nbytes``; event succeeds on completion."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        op_latency = self.per_op_latency if latency is None else latency
        xfer = _Transfer(self.env, nbytes, op_latency)
        if self._failure is not None:
            xfer.fail(self._failure)
            return xfer
        self._queue.append(xfer)
        if not self._busy:
            self._serve_next()
        return xfer

    def set_rate_factor(self, factor: float) -> None:
        """Scale the effective service rate by ``factor`` (must be > 0).

        Affects transfers served from now on, including queued ones; a
        transfer already in service completes at the rate it started with.
        """
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        self.rate_factor = float(factor)

    def set_failed(self, exc: Optional[BaseException]) -> None:
        """Fail all queued transfers; ``None`` revives the device."""
        self._failure = exc
        if exc is None:
            return
        while self._queue:
            pending = self._queue.popleft()
            if not pending.triggered:
                pending.fail(exc)

    # -- internals --------------------------------------------------------
    def _serve_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        xfer = self._queue.popleft()
        duration = xfer.latency + xfer.nbytes / (self.bandwidth * self.rate_factor)
        self.busy_seconds += duration
        self.bytes_served += xfer.nbytes
        self.ops_served += 1
        self.env.call_later(duration, lambda: self._complete(xfer))

    def _complete(self, xfer: _Transfer) -> None:
        if not xfer.triggered:
            xfer.succeed()
        self._serve_next()

    def __repr__(self) -> str:
        return (
            f"<BandwidthResource {self.name or id(self)} "
            f"{self.bandwidth / 1e6:.0f}MB/s queued={self.queue_length}>"
        )
