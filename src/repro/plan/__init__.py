"""The expression-level shuffle planning layer.

``repro.plan`` is the single surface every ``variant="auto"`` decision
flows through: :class:`JobSpec <repro.jobs.JobSpec>` resolution, the
dataframe's repartition/join/sort shuffles, the aggregation app, and
streaming jobs.  Applications build an abstract :class:`ShuffleExpr`,
optionally :meth:`~PlanNode.simplify` it, and lower it against a
:class:`ClusterProfile` to a concrete :class:`ShufflePlan`; the two
pre-existing planning surfaces -- the empirical two-way rule of
:mod:`repro.shuffle.select` and the six-variant cost model of
:mod:`repro.jobs.planner` -- survive as this layer's *lowering rules*
(and those modules as thin wrappers).

The :class:`AdaptivePlanner` closes the loop: subscribed to the event
bus, it can re-lower the remaining plan at stage/round boundaries when
observed spill throughput, memory pressure, or membership changes say
the original estimates were wrong -- emitting a causal ``plan.replan``
chain.  See ``docs/planner.md``.

Layering: this package consumes profiles and obs *events* only -- it
never imports the futures runtime, and the shuffle variants never
import it (``tools/check_layering.py check_plan_isolation``).
"""

from repro.plan.adaptive import AdaptivePlanner, PlanSignals, planner_for_runtime
from repro.plan.cost import (
    DEFAULT_MERGE_FACTOR,
    PLAN_VARIANTS,
    PlanEstimate,
    cheapest_feasible,
    empirical_variant,
    estimate_variant,
    rank_variants,
)
from repro.plan.ir import LOWERING_RULES, PlanNode, ShuffleExpr, ShufflePlan
from repro.plan.profile import (
    MEMORY_HEADROOM,
    PARTITION_CROSSOVER,
    ClusterProfile,
    JobShape,
    fits_in_memory,
)

__all__ = [
    "AdaptivePlanner",
    "ClusterProfile",
    "DEFAULT_MERGE_FACTOR",
    "JobShape",
    "LOWERING_RULES",
    "MEMORY_HEADROOM",
    "PARTITION_CROSSOVER",
    "PLAN_VARIANTS",
    "PlanEstimate",
    "PlanNode",
    "PlanSignals",
    "ShuffleExpr",
    "ShufflePlan",
    "cheapest_feasible",
    "empirical_variant",
    "estimate_variant",
    "fits_in_memory",
    "planner_for_runtime",
    "rank_variants",
]
