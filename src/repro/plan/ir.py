"""The expression IR: abstract shuffles, rewrites, and lowering.

A tiny dask-expr-style layer (SNIPPETS.md Snippet 1): applications build
an *abstract* :class:`ShuffleExpr` -- "shuffle this shape, backend
unspecified" -- call :meth:`~PlanNode.simplify` to apply cheap algebraic
rewrites (e.g. a repartition feeding another shuffle is dead layout
work), and :meth:`ShuffleExpr.lower` against a
:class:`~repro.plan.profile.ClusterProfile` to obtain a concrete
:class:`ShufflePlan` naming one executable variant plus the ranked
estimates that justified it.

Lowering is where the two legacy planning surfaces became rules of one
layer: ``rule="cost"`` runs the six-variant cost model
(:func:`~repro.plan.cost.rank_variants`, previously
``jobs.planner.ShufflePlanner``), ``rule="empirical"`` runs the paper's
two-way crossover (previously ``shuffle.select``).  A non-``"auto"``
``backend`` pins the variant explicitly and skips both.

The IR is deliberately pure: nodes are frozen dataclasses, lowering is
a function of (expression, profile), and nothing here touches the
runtime -- which is what lets the :class:`~repro.plan.adaptive.
AdaptivePlanner` re-lower the *remaining* work mid-job against an
updated profile without re-entering the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.plan.cost import (
    DEFAULT_MERGE_FACTOR,
    PLAN_VARIANTS,
    PlanEstimate,
    cheapest_feasible,
    empirical_variant,
    estimate_variant,
    rank_variants,
)
from repro.plan.profile import ClusterProfile, JobShape

#: The lowering rules an expression can be lowered with.
LOWERING_RULES = ("cost", "empirical")


@dataclass(frozen=True)
class PlanNode:
    """Base class of every IR node: immutable, rewritable, lowerable."""

    def children(self) -> Tuple["PlanNode", ...]:
        """This node's input expressions (leaves return none)."""
        return ()

    def _rewrite(self) -> "PlanNode":
        """One local rewrite step; return ``self`` when at fixpoint."""
        return self

    def simplify(self) -> "PlanNode":
        """Apply rewrites bottom-up until the expression stops changing."""
        node = self._simplify_children()
        while True:
            rewritten = node._rewrite()
            if rewritten is node:
                return node
            node = rewritten._simplify_children()

    def _simplify_children(self) -> "PlanNode":
        """Return a copy with simplified children (leaves: ``self``)."""
        return self


@dataclass(frozen=True)
class ShuffleExpr(PlanNode):
    """An abstract all-to-all exchange awaiting a concrete variant.

    ``backend`` is ``"auto"`` (let lowering decide) or an explicit
    :data:`~repro.plan.cost.PLAN_VARIANTS` name.  ``variants`` restricts
    the candidate set to what the call site can actually execute (the
    dataframe only wires simple and push operators).  ``input`` is an
    optional upstream expression, giving rewrites like repartition
    collapse something to act on; ``label`` names the operation for
    rewrites and reports (``"repartition"`` marks pure layout changes).
    """

    shape: JobShape
    backend: str = "auto"
    variants: Optional[Tuple[str, ...]] = None
    merge_factor: int = DEFAULT_MERGE_FACTOR
    label: str = "shuffle"
    input: Optional[PlanNode] = None

    def __post_init__(self) -> None:
        if self.backend != "auto" and self.backend not in PLAN_VARIANTS:
            raise ValueError(
                f"unknown shuffle backend {self.backend!r}; expected 'auto' "
                f"or one of {PLAN_VARIANTS}"
            )
        if self.variants is not None:
            unknown = [v for v in self.variants if v not in PLAN_VARIANTS]
            if unknown or not self.variants:
                raise ValueError(
                    f"unsupported variant restriction {self.variants!r}"
                )

    def children(self) -> Tuple[PlanNode, ...]:
        """The upstream expression, when one was attached."""
        return () if self.input is None else (self.input,)

    def _simplify_children(self) -> "ShuffleExpr":
        if self.input is None:
            return self
        simplified = self.input.simplify()
        return self if simplified is self.input else replace(self, input=simplified)

    def _rewrite(self) -> PlanNode:
        inner = self.input
        # Repartition collapse: a pure layout change feeding another
        # shuffle is dead work -- the outer exchange destroys the inner
        # one's partitioning anyway, so read the original input directly.
        if isinstance(inner, ShuffleExpr) and inner.label == "repartition":
            merged = JobShape(
                total_bytes=inner.shape.total_bytes,
                num_maps=inner.shape.num_maps,
                num_reduces=self.shape.num_reduces,
                streaming=self.shape.streaming,
            )
            return replace(self, shape=merged, input=inner.input)
        return self

    def lower(
        self, profile: ClusterProfile, rule: str = "cost"
    ) -> "ShufflePlan":
        """Choose a concrete variant for this profile.

        ``rule`` picks the lowering rule for ``backend="auto"``
        expressions; an explicit backend wins outright.  The chosen
        variant's estimate is computed under the cost model either way,
        so every plan can explain itself.
        """
        if rule not in LOWERING_RULES:
            raise ValueError(
                f"unknown lowering rule {rule!r}; expected one of "
                f"{LOWERING_RULES}"
            )
        expr = self.simplify()
        assert isinstance(expr, ShuffleExpr)
        shape = expr.shape
        ranking: Tuple[PlanEstimate, ...] = ()
        if expr.backend != "auto":
            variant = expr.backend
            decided_by = "explicit"
        elif rule == "empirical":
            variant = empirical_variant(
                profile.store_bytes,
                shape.total_bytes,
                max(shape.num_maps, shape.num_reduces),
            )
            decided_by = "empirical"
        else:
            ranked = rank_variants(
                profile, shape, expr.merge_factor, expr.variants
            )
            variant = cheapest_feasible(ranked).variant
            decided_by = "cost"
            ranking = tuple(ranked)
        if expr.variants is not None and variant not in expr.variants:
            raise ValueError(
                f"lowering chose {variant!r} but this expression only "
                f"supports {expr.variants}"
            )
        return ShufflePlan(
            variant=variant,
            shape=shape,
            profile=profile,
            estimate=estimate_variant(
                profile, shape, variant, expr.merge_factor
            ),
            ranking=ranking,
            decided_by=decided_by,
            rule=rule,
            variants=expr.variants,
            merge_factor=expr.merge_factor,
            label=expr.label,
        )


@dataclass(frozen=True)
class ShufflePlan(PlanNode):
    """A lowered, executable plan: one variant plus its justification."""

    variant: str
    shape: JobShape
    profile: ClusterProfile
    #: The chosen variant's cost-model estimate (always computed, even
    #: for empirical/explicit decisions, so plans can explain themselves).
    estimate: PlanEstimate
    #: The full ranking that drove a ``decided_by="cost"`` decision
    #: (empty for empirical/explicit plans).
    ranking: Tuple[PlanEstimate, ...] = ()
    #: How the variant was chosen: ``"cost"``, ``"empirical"``, or
    #: ``"explicit"``.
    decided_by: str = "cost"
    #: The lowering rule the plan was produced under (what a re-lowering
    #: of the remaining work should use).
    rule: str = "cost"
    variants: Optional[Tuple[str, ...]] = None
    merge_factor: int = DEFAULT_MERGE_FACTOR
    label: str = "shuffle"

    def explain(self) -> Dict[str, Dict[str, float]]:
        """Per-variant cost breakdowns keyed by variant name (the
        chosen variant alone when no ranking was computed)."""
        ranked = self.ranking or (self.estimate,)
        return {
            est.variant: dict(est.breakdown, total=est.est_seconds)
            for est in ranked
        }

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe summary (event attrs, reports, explorer data)."""
        return {
            "variant": self.variant,
            "decided_by": self.decided_by,
            "rule": self.rule,
            "label": self.label,
            "est_seconds": self.estimate.est_seconds,
            "shape": {
                "total_bytes": self.shape.total_bytes,
                "num_maps": self.shape.num_maps,
                "num_reduces": self.shape.num_reduces,
                "streaming": self.shape.streaming,
            },
            "ranking": [
                {
                    "variant": est.variant,
                    "est_seconds": est.est_seconds,
                    "feasible": est.feasible,
                }
                for est in self.ranking
            ],
        }

    def __repr__(self) -> str:
        return (
            f"<ShufflePlan {self.variant} ({self.decided_by}) "
            f"~{self.estimate.est_seconds:.3f}s {self.label}>"
        )
