"""Closing the loop: re-lowering the remaining plan from live signals.

The :class:`AdaptivePlanner` is the session object behind
``variant="auto"``: call sites hand it abstract
:class:`~repro.plan.ir.ShuffleExpr` nodes and get concrete
:class:`~repro.plan.ir.ShufflePlan` objects back.  When re-planning is
enabled it also *watches the run*: subscribed to the event bus, it
accumulates the signals the obs plane already publishes -- spill write
spans (measured disk throughput and seek pressure), spill/restore and
object-creation byte counts (spill amplification), ``store.pressure``
parks and ``stream.backpressure`` stalls (memory pressure), chaos
faults and membership changes -- and at stage/round boundaries may
re-lower the remaining work against an *effective* profile that folds
those observations into the nominal hardware numbers.

Every verdict emits a ``policy.decision`` event; an accepted switch
additionally emits a causal ``plan.replan`` whose ``cause`` is the
original ``plan.lower`` (or the previous replan), so a run's planning
history reads as one chain.  With ``replan`` disabled (the default) the
planner never subscribes and never emits: runs are bit-for-bit
identical to the pre-plan-layer behaviour, which the golden digest
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.plan.cost import estimate_variant
from repro.plan.ir import ShuffleExpr, ShufflePlan
from repro.plan.profile import ClusterProfile, JobShape


@dataclass
class PlanSignals:
    """Mutable accumulator of the obs signals re-planning consumes."""

    #: Bytes written by spill (and direct disk) writes, and the summed
    #: begin->end span seconds behind them (measured disk throughput).
    disk_bytes: float = 0.0
    disk_busy_s: float = 0.0
    disk_writes: int = 0
    #: Bytes of objects created (the denominator of spill amplification).
    produced_bytes: float = 0.0
    #: Bytes that went through spill writes specifically.
    spill_bytes: float = 0.0
    #: Allocation parks in the store queue (memory pressure).
    store_pressure: int = 0
    #: Streaming backpressure throttles and windows closed.
    backpressure_stalls: int = 0
    windows_closed: int = 0
    #: Chaos faults observed, and how many were disk faults.
    faults: int = 0
    disk_faults: int = 0
    #: Node deaths + membership changes (the profile may be stale).
    membership_changes: int = 0

    def spill_amplification(self) -> Optional[float]:
        """Spilled bytes per produced byte (``None`` before any output)."""
        if self.produced_bytes <= 0:
            return None
        return self.spill_bytes / self.produced_bytes

    def measured_disk_bandwidth(self) -> Optional[float]:
        """Observed bytes/second across spill and disk write spans
        (``None`` until a write has completed)."""
        if self.disk_busy_s <= 0 or self.disk_writes == 0:
            return None
        return self.disk_bytes / self.disk_busy_s

    def stall_rate(self) -> float:
        """Backpressure stalls per closed window."""
        return self.backpressure_stalls / max(1, self.windows_closed)


class AdaptivePlanner:
    """The one planning surface behind ``variant="auto"`` everywhere.

    ``rule`` selects the default lowering rule: ``"default"`` keeps each
    call site's legacy rule (jobs lower with the cost model, the
    dataframe with the empirical crossover), while ``"cost"`` or
    ``"empirical"`` force one rule for every surface.  ``replan``
    enables signal accumulation and mid-job re-lowering; off (the
    default) the planner is a pure, silent lowering function.
    """

    def __init__(
        self,
        profile: ClusterProfile,
        *,
        rule: str = "default",
        replan: bool = False,
        bus: Optional[Any] = None,
        profile_source: Optional[Callable[[], ClusterProfile]] = None,
        min_gain: float = 0.05,
        stall_threshold: int = 2,
        pressure_threshold: int = 8,
    ) -> None:
        if rule not in ("default", "cost", "empirical"):
            raise ValueError(
                f"unknown planner rule {rule!r}; expected 'default', "
                f"'cost', or 'empirical'"
            )
        self.profile = profile
        self.rule = rule
        self.replan = replan
        self.bus = bus
        self.profile_source = profile_source
        #: Fractional improvement of the re-lowered estimate over the
        #: current variant's re-estimate required to switch mid-job.
        self.min_gain = min_gain
        #: Backpressure stalls since the last round boundary that count
        #: as memory pressure (shrink the in-flight window bound).
        self.stall_threshold = stall_threshold
        #: ``store.pressure`` parks since the last boundary that do.
        self.pressure_threshold = pressure_threshold
        self.signals = PlanSignals()
        #: Every plan this planner produced, in order (lowered + replanned).
        self.plans: List[ShufflePlan] = []
        self._plan_seq: Dict[int, Optional[int]] = {}
        self._write_begins: Dict[int, Any] = {}
        self._stalls_mark = 0
        self._pressure_mark = 0
        self._unsubscribe: Optional[Callable[[], None]] = None

    # -- wiring ---------------------------------------------------------------
    def attach(self, bus: Any) -> Callable[[], None]:
        """Subscribe to a bus for signal accumulation and event emission;
        returns the unsubscribe callable."""
        self.bus = bus
        self._unsubscribe = bus.subscribe(self.on_event)
        return self._unsubscribe

    def detach(self) -> None:
        """Stop watching the bus (plans already made stay valid)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- signal accumulation --------------------------------------------------
    def on_event(self, event: Any) -> None:
        """Fold one obs event into the running signals."""
        kind = event.kind
        s = self.signals
        if kind in ("spill.write.begin", "disk.write.begin"):
            self._write_begins[event.seq] = event
        elif kind in ("spill.write.end", "disk.write.end"):
            begin = (
                self._write_begins.pop(event.cause, None)
                if event.cause is not None
                else None
            )
            if begin is not None:
                bytes_written = float(begin.attrs.get("bytes", 0.0))
                s.disk_bytes += bytes_written
                s.disk_busy_s += max(0.0, event.ts - begin.ts)
                s.disk_writes += 1
                if kind == "spill.write.end":
                    s.spill_bytes += bytes_written
        elif kind == "object.create":
            s.produced_bytes += float(event.attrs.get("bytes", 0.0))
        elif kind == "store.pressure":
            s.store_pressure += 1
        elif kind == "stream.backpressure":
            s.backpressure_stalls += 1
        elif kind == "stream.window.close":
            s.windows_closed += 1
        elif kind == "chaos.fault":
            s.faults += 1
            if "disk" in str(event.attrs.get("fault", "")):
                s.disk_faults += 1
        elif kind in ("node.death", "cluster.membership"):
            s.membership_changes += 1

    # -- profiles -------------------------------------------------------------
    def effective_profile(self) -> ClusterProfile:
        """The nominal profile corrected by what the run has shown.

        Starts from a fresh sample of the (possibly shrunk) alive
        cluster when a ``profile_source`` was given, then folds in the
        measured disk throughput: when completed spill/disk writes ran
        slower than one nominal disk, both the aggregate bandwidth and
        the seek latency are scaled by the observed degradation --
        a stalled disk seeks as slowly as it streams.
        """
        profile = (
            self.profile_source() if self.profile_source is not None
            else self.profile
        )
        measured = self.signals.measured_disk_bandwidth()
        if measured is not None and profile.num_nodes > 0:
            per_node = profile.disk_bandwidth / profile.num_nodes
            if 0 < measured < per_node:
                scale = measured / per_node
                profile = replace(
                    profile,
                    disk_bandwidth=profile.disk_bandwidth * scale,
                    disk_seek_s=profile.disk_seek_s / scale,
                )
        return profile

    def _rule_for(self, default_rule: str) -> str:
        return default_rule if self.rule == "default" else self.rule

    # -- planning -------------------------------------------------------------
    def plan(
        self,
        expr: ShuffleExpr,
        *,
        default_rule: str = "cost",
        job: Optional[str] = None,
    ) -> ShufflePlan:
        """Lower an expression to a concrete plan.

        ``default_rule`` is the call site's legacy rule, used when the
        planner was built with ``rule="default"``.  With re-planning on,
        lowering runs against the effective (observed) profile and a
        ``plan.lower`` event records the decision; off, it runs against
        the static profile and emits nothing.
        """
        rule = self._rule_for(default_rule)
        profile = self.effective_profile() if self.replan else self.profile
        plan = expr.lower(profile, rule=rule)
        seq: Optional[int] = None
        if self.replan and self.bus is not None:
            event = self.bus.emit(
                "plan.lower", job=job, **plan.to_dict()
            )
            if event is not None:
                seq = event.seq
            self.bus.emit(
                "policy.decision",
                job=job,
                policy="planner",
                decision=plan.variant,
                rule=rule,
                decided_by=plan.decided_by,
                est_seconds=plan.estimate.est_seconds,
            )
        self.plans.append(plan)
        self._plan_seq[id(plan)] = seq
        return plan

    def maybe_replan(
        self,
        plan: ShufflePlan,
        *,
        remaining_shape: Optional[JobShape] = None,
        boundary: str = "stage",
        job: Optional[str] = None,
    ) -> Optional[ShufflePlan]:
        """Re-lower the remaining work at a stage/round boundary.

        Returns a new plan only when the re-lowered variant differs and
        its estimate beats re-estimating the *current* variant under the
        same observed conditions by at least ``min_gain``; otherwise
        ``None`` (keep going).  Either way the verdict is a
        ``policy.decision``; a switch also emits ``plan.replan`` caused
        by the plan's original ``plan.lower``.
        """
        if not self.replan:
            return None
        shape = remaining_shape if remaining_shape is not None else plan.shape
        profile = self.effective_profile()
        expr = ShuffleExpr(
            shape=shape,
            variants=plan.variants,
            merge_factor=plan.merge_factor,
            label=plan.label,
        )
        candidate = expr.lower(profile, rule=plan.rule)
        current = estimate_variant(
            profile, shape, plan.variant, plan.merge_factor
        )
        est_before = current.est_seconds
        est_after = candidate.estimate.est_seconds
        gain = (
            (est_before - est_after) / est_before if est_before > 0 else 0.0
        )
        switch = candidate.variant != plan.variant and gain >= self.min_gain
        if self.bus is not None:
            self.bus.emit(
                "policy.decision",
                job=job,
                policy="replan",
                decision="switch" if switch else "keep",
                boundary=boundary,
                variant_before=plan.variant,
                variant_after=candidate.variant,
                est_before=est_before,
                est_after=est_after,
                gain=gain,
            )
        if not switch:
            return None
        seq: Optional[int] = None
        if self.bus is not None:
            event = self.bus.emit(
                "plan.replan",
                job=job,
                cause=self._plan_seq.get(id(plan)),
                boundary=boundary,
                variant_before=plan.variant,
                variant_after=candidate.variant,
                est_before=est_before,
                est_after=est_after,
                gain=gain,
                spill_amplification=self.signals.spill_amplification(),
                measured_disk_bandwidth=(
                    self.signals.measured_disk_bandwidth()
                ),
                membership_changes=self.signals.membership_changes,
                disk_faults=self.signals.disk_faults,
            )
            if event is not None:
                seq = event.seq
        self.plans.append(candidate)
        self._plan_seq[id(candidate)] = seq
        return candidate

    def maybe_shrink_inflight(
        self,
        current: int,
        *,
        job: Optional[str] = None,
    ) -> Optional[int]:
        """Shrink a streaming job's in-flight window bound under memory
        pressure.

        Consulted at round boundaries: when the stalls or store parks
        since the last check cross their thresholds, returns the reduced
        bound (floor 1) and records the verdict; otherwise ``None``.
        """
        if not self.replan:
            return None
        stalls = self.signals.backpressure_stalls - self._stalls_mark
        parks = self.signals.store_pressure - self._pressure_mark
        self._stalls_mark = self.signals.backpressure_stalls
        self._pressure_mark = self.signals.store_pressure
        pressured = (
            stalls >= self.stall_threshold or parks >= self.pressure_threshold
        )
        shrink = pressured and current > 1
        if self.bus is not None:
            self.bus.emit(
                "policy.decision",
                job=job,
                policy="replan",
                decision="shrink_inflight" if shrink else "keep_inflight",
                boundary="round",
                inflight_before=current,
                inflight_after=current - 1 if shrink else current,
                stalls=stalls,
                store_pressure=parks,
            )
        if not shrink:
            return None
        if self.bus is not None:
            self.bus.emit(
                "plan.replan",
                job=job,
                boundary="round",
                param="max_inflight_windows",
                inflight_before=current,
                inflight_after=current - 1,
                stalls=stalls,
                store_pressure=parks,
            )
        return current - 1

    def on_stage_boundary(
        self,
        label: str,
        *,
        plan: Optional[ShufflePlan] = None,
        remaining_shape: Optional[JobShape] = None,
        job: Optional[str] = None,
        inflight: Optional[int] = None,
    ) -> Optional[Any]:
        """The duck-typed hook :meth:`repro.futures.Runtime.stage_boundary`
        calls: dispatches to :meth:`maybe_replan` (a ``plan`` was
        handed in) or :meth:`maybe_shrink_inflight` (an ``inflight``
        bound was)."""
        if plan is not None:
            return self.maybe_replan(
                plan, remaining_shape=remaining_shape, boundary=label, job=job
            )
        if inflight is not None:
            return self.maybe_shrink_inflight(inflight, job=job)
        return None

    def __repr__(self) -> str:
        return (
            f"<AdaptivePlanner rule={self.rule} replan={self.replan} "
            f"plans={len(self.plans)}>"
        )


def planner_for_runtime(rt: Any) -> AdaptivePlanner:
    """The runtime's planning surface, built from its config knobs.

    Returns the planner already attached to the runtime when one is
    (``rt.planner``); otherwise builds one from ``rt.config.planner`` /
    ``rt.config.replan``.  With ``replan="on"`` the planner subscribes
    to the bus and registers itself on the runtime's duck-typed slot so
    stage-boundary hooks find it; with the default ``"off"`` it stays
    detached and silent -- runs are bit-for-bit identical to a build
    without the plan layer.
    """
    existing = getattr(rt, "planner", None)
    if existing is not None:
        return existing
    config = getattr(rt, "config", None)
    rule = getattr(config, "planner", "default")
    replan = getattr(config, "replan", "off") == "on"
    planner = AdaptivePlanner(
        ClusterProfile.from_runtime(rt),
        rule="default" if rule == "default" else rule,
        replan=replan,
        profile_source=lambda: ClusterProfile.from_runtime(rt),
    )
    if replan:
        planner.attach(rt.bus)
        attach = getattr(rt, "attach_planner", None)
        if attach is not None:
            attach(planner)
    return planner
