"""The lowering rules: per-variant cost estimates and the empirical rule.

This module is the arithmetic core both legacy planning surfaces now
delegate to.  The cost model (moved verbatim from
``repro.jobs.planner.ShufflePlanner``) prices every shuffle variant with
additive terms for task scheduling, per-block metadata/fetch overhead,
network transfer, and disk spill traffic, with push-style variants
overlapping network against disk.  Absolute seconds are not predictions;
only the ordering is meaningful, and the tests assert orderings:

- small in-memory jobs with few partitions: ``simple`` wins (merging
  only adds overhead, Fig 4c left);
- many partitions: per-block overhead grows with ``maps x reduces``, so
  block-coalescing variants (``push``) overtake ``simple`` even in
  memory (the Fig 4c crossover);
- larger-than-memory jobs: spill seeks dominate, and variants with
  fewer/larger blocks (``riffle``, ``magnet``, ``push``) beat
  ``simple``, with ``push`` first since it overlaps spill I/O with the
  network;
- ``streaming`` is only *feasible* for jobs declared as streaming.

The empirical rule (moved from ``repro.shuffle.select``) is the paper's
two-way crossover: simple when the data fits in memory and partitions
are few, push otherwise (§5.1.3, §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.plan.profile import (
    PARTITION_CROSSOVER,
    ClusterProfile,
    JobShape,
    fits_in_memory,
)

#: The canonical variant names the plan layer can lower to.  Matches
#: :data:`repro.chaos.SHUFFLE_VARIANTS` (asserted by tests); declared
#: here independently so the plan layer never imports the harness.
PLAN_VARIANTS: Tuple[str, ...] = (
    "simple",
    "riffle",
    "riffle_dynamic",
    "magnet",
    "push",
    "streaming",
)

#: Riffle merge factor assumed by the model (matches the harness).
DEFAULT_MERGE_FACTOR = 2

#: Scheduling overhead charged per task the variant launches.
_SCHEDULE_S = 5e-4

#: Metadata + fetch overhead charged per shuffle block (the per-object
#: cost that makes M x R blocks expensive at high partition counts).
_PER_BLOCK_S = 1e-4

#: Fixed coordination cost of push-style pipelines (merge scheduling,
#: pipeline spin-up).  Calibrated so the simple-vs-push crossover for the
#: harness job shape lands in the paper's 80-200 partition window.
_PUSH_SETUP_S = 0.06

#: Riffle's dynamic variant starts merges opportunistically as map
#: outputs appear, overlapping part of the merge pass's disk traffic
#: with map execution.  Applied to the disk term only: in memory there
#: is no merge I/O to hide, and dynamic merging buys nothing.
_DYNAMIC_DISCOUNT = 0.95

#: Streaming overlaps one round's reduce with the next round's map.
_STREAMING_DISCOUNT = 0.9


@dataclass(frozen=True)
class PlanEstimate:
    """One variant's estimated cost and feasibility."""

    variant: str
    est_seconds: float
    feasible: bool
    #: The additive terms behind ``est_seconds`` (for explainability).
    breakdown: Tuple[Tuple[str, float], ...]

    def __repr__(self) -> str:
        flag = "" if self.feasible else " (infeasible)"
        return f"<PlanEstimate {self.variant} ~{self.est_seconds:.3f}s{flag}>"


def _network_seconds(profile: ClusterProfile, shape: JobShape) -> float:
    # Each node keeps 1/N of the data local; the rest crosses NICs
    # that transfer in parallel (aggregate bandwidth).
    p = profile
    crossing = shape.total_bytes * (p.num_nodes - 1) / max(1, p.num_nodes)
    return crossing / p.nic_bandwidth


def _disk_seconds(
    profile: ClusterProfile, shape: JobShape, blocks: int, passes: int
) -> float:
    # Each spill pass writes and re-reads the dataset; every block
    # read pays a seek unless fused (coalescing is what `blocks`
    # captures).  Aggregate disk bandwidth: disks work in parallel.
    if fits_in_memory(profile, shape):
        return 0.0
    p = profile
    streamed = passes * 2 * shape.total_bytes / p.disk_bandwidth
    seeks = blocks * p.disk_seek_s / p.num_nodes
    return streamed + seeks


def _meta_seconds(blocks: int, tasks: int) -> float:
    return blocks * _PER_BLOCK_S + tasks * _SCHEDULE_S


def estimate_variant(
    profile: ClusterProfile,
    shape: JobShape,
    variant: str,
    merge_factor: int = DEFAULT_MERGE_FACTOR,
) -> PlanEstimate:
    """Price one variant for this profile and shape (the cost model)."""
    p = profile
    M, R, W = shape.num_maps, shape.num_reduces, p.num_nodes
    F = merge_factor
    net = _network_seconds(profile, shape)
    feasible = True
    overlap = False
    extra = 0.0
    if variant == "simple":
        blocks = M * R
        tasks = M + R
        disk = _disk_seconds(profile, shape, blocks, passes=1)
    elif variant in ("riffle", "riffle_dynamic"):
        merges = max(1, M // F)
        blocks = merges * R
        tasks = M + merges + R
        # The merge pass re-reads and re-writes map output once more
        # when spilling, in exchange for F-times-larger blocks.
        disk = _disk_seconds(profile, shape, blocks, passes=2)
        if variant == "riffle_dynamic":
            disk *= _DYNAMIC_DISCOUNT
    elif variant == "magnet":
        blocks = W * R
        tasks = M + W * R // max(1, F) + R
        disk = _disk_seconds(profile, shape, blocks, passes=2)
    elif variant == "push":
        blocks = W * R
        tasks = M + W * R + R
        disk = _disk_seconds(profile, shape, blocks, passes=1)
        overlap = True
        extra = _PUSH_SETUP_S
    elif variant == "streaming":
        blocks = M * R
        tasks = M + R
        disk = _disk_seconds(profile, shape, blocks, passes=1)
        overlap = True
        feasible = shape.streaming
    else:
        raise ValueError(f"unknown shuffle variant {variant!r}")
    meta = _meta_seconds(blocks, tasks)
    if overlap:
        moved = max(net, disk)
        breakdown = (("meta", meta), ("overlap(net,disk)", moved),
                     ("setup", extra))
    else:
        moved = net + disk
        breakdown = (("meta", meta), ("net", net), ("disk", disk),
                     ("setup", extra))
    seconds = meta + moved + extra
    if variant == "streaming":
        seconds *= _STREAMING_DISCOUNT
    return PlanEstimate(
        variant=variant,
        est_seconds=seconds,
        feasible=feasible,
        breakdown=breakdown,
    )


def rank_variants(
    profile: ClusterProfile,
    shape: JobShape,
    merge_factor: int = DEFAULT_MERGE_FACTOR,
    variants: Optional[Sequence[str]] = None,
) -> List[PlanEstimate]:
    """Every variant's estimate, cheapest first; infeasible ones last.

    ``variants`` restricts the candidate set (callers that can only
    execute a subset of variants -- e.g. the dataframe's simple/push
    operators -- lower against just those).
    """
    candidates = PLAN_VARIANTS if variants is None else tuple(variants)
    estimates = [
        estimate_variant(profile, shape, v, merge_factor) for v in candidates
    ]
    return sorted(
        estimates,
        key=lambda e: (not e.feasible, e.est_seconds, e.variant),
    )


def cheapest_feasible(ranked: Sequence[PlanEstimate]) -> PlanEstimate:
    """The winner of a :func:`rank_variants` ranking, or ``ValueError``
    when nothing feasible remains."""
    if not ranked or not ranked[0].feasible:
        raise ValueError("no feasible shuffle variant for this job shape")
    return ranked[0]


def empirical_variant(
    store_bytes: int, total_bytes: int, num_partitions: int
) -> str:
    """The paper's two-way rule against a sampled capacity figure:
    ``"simple"`` when the data fits in memory with headroom and the
    partition count is below the Fig 4c crossover, else ``"push"``."""
    in_memory = fits_in_memory(store_bytes, total_bytes)
    if in_memory and num_partitions < PARTITION_CROSSOVER:
        return "simple"
    return "push"
