"""The facts planning consumes: cluster profiles and job shapes.

Both lowering rules -- the empirical two-way rule and the cost model --
decide against the same two inputs: a :class:`ClusterProfile` (what the
hardware can do right now) and a :class:`JobShape` (what the job will
ask of it).  They moved here from :mod:`repro.jobs.planner` so that the
plan layer owns the vocabulary and the legacy entry points re-export it.

The in-memory-fit predicate lives here too, as the single shared
:func:`fits_in_memory`: previously ``shuffle/select.py`` and
``jobs/planner.py`` each encoded it against :data:`MEMORY_HEADROOM`
independently, and a drift between them would have made the two
planning surfaces silently disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

#: Fraction of aggregate store memory the working set may occupy and
#: still count as "fits in memory" (input + shuffled copy + slack).
MEMORY_HEADROOM = 0.4

#: Above this many partitions, push-based pipelining wins even in memory
#: (the Fig 4c crossover is between 80 and 200 partitions).
PARTITION_CROSSOVER = 150


@dataclass(frozen=True)
class ClusterProfile:
    """The hardware facts the cost model consumes."""

    num_nodes: int
    total_cores: int
    store_bytes: int
    disk_bandwidth: float
    nic_bandwidth: float
    disk_seek_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.total_cores < 1:
            raise ValueError("cluster must have at least one node and core")
        if min(self.store_bytes, self.disk_bandwidth, self.nic_bandwidth) <= 0:
            raise ValueError("cluster capacities must be positive")

    @classmethod
    def from_runtime(cls, rt: Any) -> "ClusterProfile":
        """Profile the *alive* portion of a runtime's cluster.

        Duck-typed on the runtime (``rt.cluster.alive_nodes()``), so the
        plan layer never imports :mod:`repro.futures` -- the layering
        lint enforces that it consumes profiles, not live runtime state.
        """
        nodes = list(rt.cluster.alive_nodes())
        if not nodes:
            raise ValueError("no alive nodes to profile")
        return cls(
            num_nodes=len(nodes),
            total_cores=sum(node.spec.cores for node in nodes),
            store_bytes=sum(node.spec.object_store_bytes for node in nodes),
            disk_bandwidth=sum(
                node.spec.disk.bandwidth_bytes_per_sec for node in nodes
            ),
            nic_bandwidth=sum(
                node.spec.nic.bandwidth_bytes_per_sec for node in nodes
            ),
            disk_seek_s=max(
                node.spec.disk.effective_seek_latency_s for node in nodes
            ),
        )


@dataclass(frozen=True)
class JobShape:
    """The job facts the cost model consumes."""

    total_bytes: int
    num_maps: int
    num_reduces: int
    #: Whether the input arrives in rounds (makes ``streaming`` feasible).
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if self.num_maps < 1 or self.num_reduces < 1:
            raise ValueError("job shape dimensions must be >= 1")


def fits_in_memory(
    profile: Union[ClusterProfile, int], shape: Union["JobShape", int]
) -> bool:
    """Does the working set fit in aggregate store memory with headroom?

    The one shared in-memory predicate behind both lowering rules.
    Accepts either the typed inputs or raw byte counts, so the empirical
    rule (which only ever samples store bytes) can use it without
    building a full profile.
    """
    store = (
        profile.store_bytes if isinstance(profile, ClusterProfile) else int(profile)
    )
    total = shape.total_bytes if isinstance(shape, JobShape) else int(shape)
    return total <= MEMORY_HEADROOM * store
