"""Fixed-interval time-series sampling of the event bus.

:class:`TimeSeriesSampler` turns the run's event stream into
ring-buffered, fixed-interval series -- the signal surface the terminal
dashboard, the HTML run explorer, and (eventually) an external
scheduler or adaptive re-planner consume.  It is a *pure consumer* of
:class:`~repro.obs.events.ObsEvent` records: the same object can be

- attached to a live runtime (``runtime.attach_sampler(sampler)``
  subscribes :meth:`on_event` to the bus), or
- replayed over a recorded ``record_run`` JSONL file
  (:meth:`TimeSeriesSampler.replay`),

and produces **bit-for-bit identical series** either way, because every
sample is a deterministic function of the event sequence alone.

Sampling semantics (the contract the golden digest test pins):

- sample boundaries sit at ``t0 + k * interval_s`` for ``k >= 1``,
  where ``t0`` is the timestamp of the first event seen;
- the sample at boundary ``b`` records the state after *every* event
  with ``ts <= b`` and before any event with ``ts > b`` -- exact
  last-sample semantics (events land on boundaries often in simulated
  time, and they count into the boundary they sit on);
- :meth:`finish` flushes the boundaries up to the end of the run (the
  trailing ``run.summary`` event's timestamp in a recorded file, the
  runtime clock on a live bus), so live and replayed runs close their
  series at the same instant;
- each series is a :class:`SeriesRing` of bounded capacity -- old
  samples fall off the front, but the retained window, its start
  index, and the totals stay identical between live and replay.

Series maintained (names are ``scope:key:track``):

- ``node:<id>:cpu`` -- executing task attempts on the node;
- ``node:<id>:disk`` -- in-flight disk requests (spill writes and
  restores plus direct ``output_to_disk`` writes);
- ``node:<id>:nic`` -- in-flight transfers touching the node;
- ``node:<id>:store`` -- object-store occupancy in bytes;
- ``node:<id>:spill_queue`` -- allocations parked under pressure;
- ``job:<id>:inflight`` -- submitted-but-unsettled tasks of the job;
- ``tenant:<name>:finished`` -- cumulative finished tasks (the
  fair-share signal);
- ``tenant:<name>:stalls`` -- cumulative backpressure stalls;
- ``cluster:inflight`` / ``cluster:stall_rate`` (stalls per interval)
  / ``cluster:faults`` / ``cluster:retries``.

Tenants are resolved from the ``tenant`` attr that the jobs control
plane stamps on ``job.*`` events and the streaming tier stamps on
``stream.backpressure``; tasks map to tenants through their job.

The sampler also keeps a bounded causal *fault feed* -- fault / churn /
death / retry events with their causal chains resolved at arrival time
-- which the dashboard scrolls and the HTML explorer lists.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import EventBus, ObsEvent

#: Event kinds kept (with their causal ancestry) for the fault feed.
FEED_KINDS = (
    "chaos.fault",
    "node.death",
    "node.restart",
    "cluster.membership",
    "executor.failure",
    "task.retry",
)

#: Per-node track names, in display order.
NODE_TRACKS = ("cpu", "disk", "nic", "store", "spill_queue")


class SeriesRing:
    """A fixed-capacity ring of samples with an absolute start index.

    ``push`` appends; once ``capacity`` is exceeded the oldest sample is
    dropped and :attr:`start` advances, so sample ``values()[i]`` always
    belongs to boundary index ``start + i`` regardless of how much
    history fell off.
    """

    __slots__ = ("capacity", "start", "_samples")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Absolute boundary index of the oldest retained sample.
        self.start = 0
        self._samples: Deque[float] = deque(maxlen=capacity)

    def push(self, value: float) -> None:
        """Append one sample, dropping the oldest beyond capacity."""
        if len(self._samples) == self.capacity:
            self.start += 1
        self._samples.append(value)

    def values(self) -> List[float]:
        """Retained samples, oldest first."""
        return list(self._samples)

    @property
    def last(self) -> float:
        """The most recent sample (0.0 before any samples exist)."""
        return self._samples[-1] if self._samples else 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"<SeriesRing {len(self._samples)}/{self.capacity} "
            f"start={self.start}>"
        )


class FeedEntry:
    """One fault-feed line: the event plus its resolved causal chain."""

    __slots__ = ("ts", "kind", "where", "detail", "chain")

    def __init__(
        self,
        ts: float,
        kind: str,
        where: str,
        detail: Optional[str],
        chain: Tuple[str, ...],
    ) -> None:
        self.ts = ts
        self.kind = kind
        self.where = where
        self.detail = detail
        #: Ancestor kinds, nearest cause first (excludes the event itself).
        self.chain = chain

    def render(self) -> str:
        """The one-line feed form the dashboard scrolls."""
        detail = f" ({self.detail})" if self.detail is not None else ""
        suffix = "  <= " + " <= ".join(self.chain) if self.chain else ""
        return f"t={self.ts:10.3f}  {self.kind:<18} {self.where}{detail}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form for the HTML explorer."""
        return {
            "ts": self.ts,
            "kind": self.kind,
            "where": self.where,
            "detail": self.detail,
            "chain": list(self.chain),
        }


class TimeSeriesSampler:
    """Ring-buffered fixed-interval series derived from the event bus."""

    def __init__(
        self,
        interval_s: float = 0.25,
        capacity: int = 512,
        feed_capacity: int = 64,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.capacity = capacity
        #: First event timestamp (None until the first event arrives).
        self.t0: Optional[float] = None
        #: Timestamp sampling was finished at (None while open).
        self.t_end: Optional[float] = None
        #: Timestamp of the newest event consumed so far.
        self.last_event_ts = 0.0
        self.events_seen = 0
        self.series: Dict[str, SeriesRing] = {}
        self.feed: Deque[FeedEntry] = deque(maxlen=feed_capacity)
        #: node id -> spec capacities, from ``on_attach`` (live) or the
        #: trailing ``run.summary`` (replay); display-only -- never an
        #: input to the sampled values, so live/replay stay bit-equal.
        self.capacities: Dict[str, Dict[str, Any]] = {}
        self._clock: Optional[Any] = None
        self._next_boundary: Optional[float] = None
        self._boundary_index = 0
        # -- live state the series sample ----------------------------------
        self._running_on: Dict[str, str] = {}  # task -> node of live attempt
        self._disk_begin: Dict[int, str] = {}  # begin seq -> node
        self._nic_begin: Dict[int, Tuple[str, ...]] = {}  # begin seq -> nodes
        self._store_bytes: Dict[int, float] = {}  # begin seq -> bytes
        self._residency: Dict[str, Dict[str, float]] = {}  # obj -> node -> B
        self._parked: Dict[str, List[str]] = {}  # node -> parked obj ids
        self._gauges: Dict[str, float] = {}  # series name -> current value
        self._job_tenant: Dict[str, str] = {}  # job id -> tenant
        self._job_of_task: Dict[str, Optional[str]] = {}
        self._interval_stalls = 0  # stalls inside the current interval
        self._feed_index: Dict[int, ObsEvent] = {}  # seq -> feed-kind event

    # -- wiring ----------------------------------------------------------------
    def on_attach(self, runtime: Any) -> None:
        """Runtime hook (duck-typed): capture the clock for
        :meth:`finish` and the cluster capacities for display."""
        self._clock = runtime.bus.clock
        self.capacities = dict(runtime.cluster_snapshot())

    @classmethod
    def replay(
        cls,
        events: Sequence[ObsEvent],
        interval_s: float = 0.25,
        capacity: int = 512,
        feed_capacity: int = 64,
    ) -> "TimeSeriesSampler":
        """Sample a recorded event stream end to end.

        Produces series bit-for-bit identical to a live sampler that
        was attached for the whole run and finished at the recording
        time (the trailing ``run.summary``'s timestamp).
        """
        sampler = cls(
            interval_s=interval_s,
            capacity=capacity,
            feed_capacity=feed_capacity,
        )
        for event in events:
            sampler.on_event(event)
        sampler.finish()
        return sampler

    @classmethod
    def replay_file(cls, path: str, **kwargs: Any) -> "TimeSeriesSampler":
        """Sample a ``record_run`` JSONL file end to end."""
        return cls.replay(EventBus.load_jsonl(path), **kwargs)

    # -- sampling core ---------------------------------------------------------
    def on_event(self, event: ObsEvent) -> None:
        """Consume one event: flush any boundaries it crossed, then fold
        it into the live state (exact last-sample semantics)."""
        if self.t_end is not None:
            raise RuntimeError("sampler already finished")
        if self.t0 is None:
            self.t0 = event.ts
            self._next_boundary = self.t0 + self.interval_s
        while event.ts > self._next_boundary:
            self._emit_sample()
        self._apply(event)
        self.last_event_ts = event.ts
        self.events_seen += 1

    def finish(self, end: Optional[float] = None) -> float:
        """Flush samples up to the end of the run and close the sampler.

        ``end`` defaults to the attached clock (live) or the last event
        timestamp (replay); boundaries at or before ``end`` are emitted.
        Idempotent-safe: returns the closing timestamp.
        """
        if self.t_end is not None:
            return self.t_end
        if end is None:
            end = (
                self._clock() if self._clock is not None
                else self.last_event_ts
            )
        end = max(float(end), self.last_event_ts)
        if self.t0 is not None:
            while self._next_boundary <= end:
                self._emit_sample()
        self.t_end = end
        return end

    def _emit_sample(self) -> None:
        """Record one sample row at the current boundary for every
        series, then advance the boundary."""
        # Touch the per-interval rate series so it samples even at zero.
        self._gauges["cluster:stall_rate"] = float(self._interval_stalls)
        self._interval_stalls = 0
        for name, value in self._gauges.items():
            ring = self.series.get(name)
            if ring is None:
                ring = self.series[name] = SeriesRing(self.capacity)
                # Backfill zeros so every ring is index-aligned: a series
                # born mid-run was zero at all earlier boundaries.
                for _ in range(min(self._boundary_index, self.capacity)):
                    ring.push(0.0)
                ring.start = max(0, self._boundary_index - self.capacity)
            ring.push(value)
        self._boundary_index += 1
        self._next_boundary += self.interval_s

    # -- state transitions -----------------------------------------------------
    def _bump(self, name: str, delta: float, floor: float = 0.0) -> None:
        value = max(floor, self._gauges.get(name, 0.0) + delta)
        self._gauges[name] = value

    def _set(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def _tenant_of(self, event: ObsEvent) -> Optional[str]:
        tenant = event.attrs.get("tenant")
        if tenant is not None:
            return str(tenant)
        if event.job is not None:
            return self._job_tenant.get(event.job)
        return None

    def _node_track(self, node: Optional[str], track: str) -> Optional[str]:
        return None if node is None else f"node:{node}:{track}"

    def _end_of_attempt(self, task: Optional[str]) -> None:
        """Close the running attempt of ``task`` (if any) on its node."""
        if task is None:
            return
        node = self._running_on.pop(task, None)
        if node is not None:
            self._bump(f"node:{node}:cpu", -1.0)

    def _kill_node_attempts(self, node: Optional[str]) -> None:
        """A node died or was removed: its executing attempts vanish."""
        if node is None:
            return
        doomed = [t for t, n in self._running_on.items() if n == node]
        for task in doomed:
            del self._running_on[task]
        if doomed:
            self._set(f"node:{node}:cpu", 0.0)

    def _settle_task(self, event: ObsEvent) -> None:
        job = self._job_of_task.pop(event.task, None) if event.task else None
        self._bump("cluster:inflight", -1.0)
        if job is not None:
            self._bump(f"job:{job}:inflight", -1.0)

    def _apply(self, event: ObsEvent) -> None:  # noqa: C901 - one dispatch
        kind = event.kind
        attrs = event.attrs
        tenant = self._tenant_of(event)
        if kind == "task.submit":
            self._bump("cluster:inflight", +1.0)
            if event.task is not None:
                self._job_of_task[event.task] = event.job
            if event.job is not None:
                self._bump(f"job:{event.job}:inflight", +1.0)
        elif kind == "task.run":
            if event.task is not None and event.node is not None:
                self._end_of_attempt(event.task)  # superseded attempt
                self._running_on[event.task] = event.node
                self._bump(f"node:{event.node}:cpu", +1.0)
        elif kind == "task.finish":
            self._end_of_attempt(event.task)
            self._settle_task(event)
            if event.job is not None:
                self._bump(f"job:{event.job}:finished", +1.0)
            if tenant is not None:
                self._bump(f"tenant:{tenant}:finished", +1.0)
        elif kind == "task.fail":
            self._end_of_attempt(event.task)
            self._settle_task(event)
        elif kind == "task.retry":
            self._end_of_attempt(event.task)
            self._bump("cluster:retries", +1.0)
        elif kind == "chaos.fault":
            self._bump("cluster:faults", +1.0)
        elif kind in ("node.death", "executor.failure"):
            self._kill_node_attempts(event.node)
        elif kind == "cluster.membership":
            if attrs.get("action") == "remove":
                self._kill_node_attempts(event.node)
        elif kind in (
            "spill.write.begin", "spill.restore.begin", "disk.write.begin"
        ):
            if event.node is not None:
                self._disk_begin[event.seq] = event.node
                self._store_bytes[event.seq] = float(attrs.get("bytes", 0.0))
                self._bump(f"node:{event.node}:disk", +1.0)
        elif kind in ("spill.write.end", "spill.restore.end", "disk.write.end"):
            node = self._disk_begin.pop(event.cause, None) or event.node
            size = self._store_bytes.pop(event.cause, 0.0)
            if node is not None:
                self._bump(f"node:{node}:disk", -1.0)
            if kind == "spill.restore.end":
                self._store_add(event.node, event.obj, size)
            elif kind == "spill.write.end" and attrs.get("ok", True):
                if event.node is not None:
                    self._bump(f"node:{event.node}:store", -size)
        elif kind == "transfer.begin":
            nodes = tuple(
                n for n in (event.node, attrs.get("src")) if n is not None
            )
            self._nic_begin[event.seq] = tuple(str(n) for n in nodes)
            self._store_bytes[event.seq] = float(attrs.get("bytes", 0.0))
            for node in nodes:
                self._bump(f"node:{node}:nic", +1.0)
        elif kind == "transfer.end":
            for node in self._nic_begin.pop(event.cause, ()):
                self._bump(f"node:{node}:nic", -1.0)
            size = self._store_bytes.pop(event.cause, 0.0)
            if attrs.get("ok", True):
                self._store_add(event.node, event.obj, size)
        elif kind == "object.create":
            self._store_add(event.node, event.obj, float(attrs.get("bytes", 0.0)))
            if event.node is not None:
                parked = self._parked.get(event.node)
                if parked and event.obj in parked:
                    parked.remove(event.obj)
                    self._bump(f"node:{event.node}:spill_queue", -1.0)
        elif kind == "object.evict":
            if event.obj is not None:
                for node, size in self._residency.pop(event.obj, {}).items():
                    self._bump(f"node:{node}:store", -size)
        elif kind == "store.pressure":
            if event.node is not None:
                self._parked.setdefault(event.node, []).append(event.obj or "")
                self._bump(f"node:{event.node}:spill_queue", +1.0)
        elif kind == "spill.fallback":
            if event.node is not None:
                parked = self._parked.get(event.node)
                if parked and event.obj in parked:
                    parked.remove(event.obj)
                    self._bump(f"node:{event.node}:spill_queue", -1.0)
        elif kind == "stream.backpressure":
            self._interval_stalls += 1
            self._bump("cluster:stalls", +1.0)
            if tenant is not None:
                self._bump(f"tenant:{tenant}:stalls", +1.0)
        elif kind in ("job.submit", "job.admit", "job.start"):
            if event.job is not None and attrs.get("tenant") is not None:
                self._job_tenant[event.job] = str(attrs["tenant"])
        elif kind == "run.summary":
            # Replay of a recorded file: adopt the capacities snapshot.
            cluster = attrs.get("cluster")
            if cluster and not self.capacities:
                self.capacities = dict(cluster)
        if kind in FEED_KINDS:
            self._feed_index[event.seq] = event
            self.feed.append(self._feed_entry(event))

    def _store_add(
        self, node: Optional[str], obj: Optional[str], size: float
    ) -> None:
        if node is None or size <= 0:
            return
        if obj is not None:
            self._residency.setdefault(obj, {})[node] = size
        self._bump(f"node:{node}:store", size)

    def _feed_entry(self, event: ObsEvent) -> FeedEntry:
        chain: List[str] = []
        cause = event.cause
        seen = {event.seq}
        while cause is not None and cause not in seen:
            seen.add(cause)
            parent = self._feed_index.get(cause)
            if parent is None:
                break
            chain.append(parent.kind)
            cause = parent.cause
        detail = (
            event.attrs.get("fault")
            or event.attrs.get("action")
            or event.attrs.get("attempt")
        )
        where = event.node or event.task or event.job or ""
        return FeedEntry(
            event.ts,
            event.kind,
            str(where),
            None if detail is None else str(detail),
            tuple(chain),
        )

    # -- queries ---------------------------------------------------------------
    @property
    def samples_taken(self) -> int:
        """Boundary samples emitted so far (absolute, pre-ring)."""
        return self._boundary_index

    def sample_times(self, ring: SeriesRing) -> List[float]:
        """The boundary timestamps of a ring's retained samples."""
        t0 = self.t0 or 0.0
        return [
            t0 + (ring.start + i + 1) * self.interval_s
            for i in range(len(ring))
        ]

    def nodes(self) -> List[str]:
        """Node ids with at least one per-node series, sorted."""
        out = set()
        for name in self.series:
            if name.startswith("node:"):
                out.add(name.split(":", 2)[1])
        return sorted(out)

    def tenants(self) -> List[str]:
        """Tenant names with at least one per-tenant series, sorted."""
        out = set()
        for name in self.series:
            if name.startswith("tenant:"):
                out.add(name.split(":", 2)[1])
        return sorted(out)

    def jobs(self) -> List[str]:
        """Job ids with at least one per-job series, sorted."""
        out = set()
        for name in self.series:
            if name.startswith("job:"):
                out.add(name.split(":", 2)[1])
        return sorted(out)

    def get(self, name: str) -> SeriesRing:
        """A series ring by name (an empty ring when never sampled)."""
        return self.series.get(name) or SeriesRing(self.capacity)

    def current(self, name: str) -> float:
        """The *instantaneous* value of a series -- the state after the
        newest event, which the next boundary sample would record.  The
        dashboard's "now" numbers read this, so they never lag a
        partial interval behind the last flushed sample."""
        return self._gauges.get(name, 0.0)

    # -- export ----------------------------------------------------------------
    def series_digest(self) -> str:
        """A stable SHA-256 digest of every series (name, start index,
        and exact sample values) plus the sampling parameters.

        Live-vs-replay equality of this digest is the determinism
        contract :mod:`tests.test_live_ops` pins with a golden value.
        """
        lines = [f"interval={self.interval_s!r}|t0={self.t0!r}"]
        for name in sorted(self.series):
            ring = self.series[name]
            values = ",".join(repr(v) for v in ring.values())
            lines.append(f"{name}|{ring.start}|{values}")
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data export: sampling parameters, every series (with
        its start index), the fault feed, and the capacities snapshot --
        what the HTML explorer inlines."""
        return {
            "interval_s": self.interval_s,
            "t0": self.t0,
            "t_end": self.t_end,
            "capacity": self.capacity,
            "samples_taken": self._boundary_index,
            "events_seen": self.events_seen,
            "nodes": self.nodes(),
            "tenants": self.tenants(),
            "jobs": self.jobs(),
            "series": {
                name: {"start": ring.start, "values": ring.values()}
                for name, ring in sorted(self.series.items())
            },
            "feed": [entry.to_dict() for entry in self.feed],
            "capacities": self.capacities,
            "digest": self.series_digest(),
        }

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesSampler {len(self.series)} series, "
            f"{self._boundary_index} samples @ {self.interval_s}s>"
        )
