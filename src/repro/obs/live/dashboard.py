"""Terminal dashboard over a :class:`TimeSeriesSampler`.

:class:`LiveDashboard` renders one *frame* -- a full-screen block of
text panels -- from the sampler's current series:

- a header line (clock, frame counter, event/sample totals);
- per-node utilization tracks (cpu/disk/nic sparklines plus an
  object-store fill gauge, scaled by the capacities snapshot when one
  is available);
- tenant fair-share bars (cumulative finished tasks per tenant);
- spill / backpressure gauges (queue depth, stall rate, fault and
  retry counters);
- the scrolling causal fault -> retry feed.

Frames are pure functions of the sampler state plus a pluggable
``clock``, so tests (and ``repro.obs live --smoke``) drive rendering
deterministically frame by frame; the interactive path simply calls
:meth:`LiveDashboard.render_frame` on a timer.  :func:`follow_runtime`
attaches a sampler to an in-process runtime and snapshots frames at
fixed simulated-time marks while the workload runs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.metrics.ascii_charts import bar_chart, gauge, sparkline
from repro.obs.live.sampler import TimeSeriesSampler

#: Clear-screen-and-home escape prefix used between interactive frames.
ANSI_CLEAR = "\x1b[2J\x1b[H"


class LiveDashboard:
    """Renders sampler state as fixed-layout text frames."""

    def __init__(
        self,
        sampler: TimeSeriesSampler,
        clock: Optional[Callable[[], float]] = None,
        window: int = 48,
        feed_lines: int = 8,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.sampler = sampler
        #: Frame-timestamp source; defaults to "latest sample boundary".
        self.clock = clock or self._sample_clock
        #: How many trailing samples each sparkline shows.
        self.window = window
        self.feed_lines = feed_lines
        self.frames_rendered = 0

    def _sample_clock(self) -> float:
        sampler = self.sampler
        if sampler.t0 is None:
            return 0.0
        return sampler.t0 + sampler.samples_taken * sampler.interval_s

    def _tail(self, name: str) -> List[float]:
        return self.sampler.get(name).values()[-self.window:]

    # -- panels ----------------------------------------------------------------
    def header_panel(self) -> str:
        """One status line: clock, frame, event and sample totals."""
        sampler = self.sampler
        return (
            f"== repro live ops ==  t={self.clock():.3f}s  "
            f"frame {self.frames_rendered}  |  "
            f"{sampler.events_seen} events  |  "
            f"{sampler.samples_taken} samples @ {sampler.interval_s}s"
        )

    def node_panel(self) -> str:
        """Per-node cpu/disk/nic sparklines plus a store fill gauge."""
        sampler = self.sampler
        lines = ["-- node utilization " + "-" * 40]
        nodes = sampler.nodes()
        if not nodes:
            lines.append("  (no per-node series yet)")
            return "\n".join(lines)
        name_width = max(len(node) for node in nodes)
        for node in nodes:
            caps = sampler.capacities.get(node, {})
            cores = float(caps.get("cores", 0) or 0)
            store_cap = float(caps.get("object_store_bytes", 0) or 0)
            cpu = self._tail(f"node:{node}:cpu")
            disk = self._tail(f"node:{node}:disk")
            nic = self._tail(f"node:{node}:nic")
            store_now = sampler.current(f"node:{node}:store")
            cpu_now = sampler.current(f"node:{node}:cpu")
            cpu_note = (
                f"{cpu_now:.0f}/{cores:.0f}" if cores else f"{cpu_now:.0f}"
            )
            lines.append(
                f"  {node:>{name_width}s}"
                f"  cpu {sparkline(cpu, lo=0.0, hi=cores or None):<{self.window}s}"
                f" {cpu_note:>5s}"
                f"  disk {sparkline(disk, lo=0.0):<{self.window}s}"
                f"  nic {sparkline(nic, lo=0.0):<{self.window}s}"
                f"  store {gauge(store_now, store_cap, width=12)}"
            )
        return "\n".join(lines)

    def tenant_panel(self) -> str:
        """Fair-share bars: cumulative finished tasks per tenant."""
        sampler = self.sampler
        tenants = sampler.tenants()
        if not tenants:
            return "-- tenant fair share " + "-" * 39 + "\n  (no tenants)"
        labels = []
        values = []
        for tenant in tenants:
            labels.append(tenant)
            values.append(sampler.current(f"tenant:{tenant}:finished"))
        return bar_chart(
            "-- tenant fair share (tasks finished) --",
            labels,
            values,
            width=32,
            unit="",
        )

    def pressure_panel(self) -> str:
        """Spill-queue and backpressure gauges plus fault counters."""
        sampler = self.sampler
        lines = ["-- pressure " + "-" * 48]
        queue_series = [
            sum(values)
            for values in zip(
                *(
                    self._tail(f"node:{node}:spill_queue")
                    for node in sampler.nodes()
                )
            )
        ] if sampler.nodes() else []
        queue_now = queue_series[-1] if queue_series else 0.0
        queue_peak = max(queue_series) if queue_series else 0.0
        lines.append(
            f"  spill queue {gauge(queue_now, max(queue_peak, 1.0), width=16)}"
            f"  {sparkline(queue_series, lo=0.0)}"
        )
        stall_series = self._tail("cluster:stall_rate")
        stall_now = stall_series[-1] if stall_series else 0.0
        stall_peak = max(stall_series) if stall_series else 0.0
        lines.append(
            f"  backpressure stalls/interval "
            f"{gauge(stall_now, max(stall_peak, 1.0), width=16)}"
            f"  {sparkline(stall_series, lo=0.0)}"
        )
        lines.append(
            f"  inflight tasks {sampler.current('cluster:inflight'):.0f}"
            f"   faults {sampler.current('cluster:faults'):.0f}"
            f"   retries {sampler.current('cluster:retries'):.0f}"
            f"   stalls total {sampler.current('cluster:stalls'):.0f}"
        )
        return "\n".join(lines)

    def feed_panel(self) -> str:
        """The scrolling causal fault -> retry feed (newest last)."""
        lines = ["-- fault feed " + "-" * 46]
        entries = list(self.sampler.feed)[-self.feed_lines:]
        if not entries:
            lines.append("  (quiet)")
        for entry in entries:
            lines.append("  " + entry.render())
        return "\n".join(lines)

    # -- frames ----------------------------------------------------------------
    def render_frame(self) -> str:
        """Render one full frame and advance the frame counter."""
        self.frames_rendered += 1
        return "\n".join(
            [
                self.header_panel(),
                self.node_panel(),
                self.tenant_panel(),
                self.pressure_panel(),
                self.feed_panel(),
            ]
        )


def replay_frames(
    events: Sequence[Any],
    frames: int = 4,
    interval_s: float = 0.25,
    window: int = 48,
) -> List[str]:
    """Stride through a recorded event stream, rendering ``frames``
    evenly spaced dashboard frames plus a final post-:meth:`finish`
    frame.  This is the deterministic core of ``repro.obs live``.
    """
    if frames <= 0:
        raise ValueError(f"frames must be positive, got {frames}")
    sampler = TimeSeriesSampler(interval_s=interval_s)
    dashboard = LiveDashboard(sampler, window=window)
    marks = {
        max(1, round(len(events) * (i + 1) / frames)) - 1
        for i in range(frames - 1)
    }
    out: List[str] = []
    for index, event in enumerate(events):
        sampler.on_event(event)
        if index in marks:
            out.append(dashboard.render_frame())
    sampler.finish()
    out.append(dashboard.render_frame())
    return out


def follow_runtime(
    runtime: Any,
    run: Callable[[], Any],
    stride: int = 200,
    interval_s: float = 0.25,
    window: int = 48,
    on_frame: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Attach a sampler to ``runtime``, execute ``run()`` (a blocking
    driver-side workload), and render a dashboard frame every
    ``stride`` bus events while it progresses -- the ``--follow`` mode.

    Event count is deterministic for a deterministic workload, so the
    frame sequence is too; ``on_frame`` (e.g. ``print``) observes each
    frame as it renders.  Returns all frames, including the final
    post-:meth:`~TimeSeriesSampler.finish` one.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    sampler = TimeSeriesSampler(interval_s=interval_s)
    detach = runtime.attach_sampler(sampler)
    dashboard = LiveDashboard(
        sampler, clock=runtime.bus.clock, window=window
    )
    out: List[str] = []
    countdown = {"left": stride}

    def emit_frame() -> None:
        frame = dashboard.render_frame()
        out.append(frame)
        if on_frame is not None:
            on_frame(frame)

    def tick(_event: Any) -> None:
        countdown["left"] -= 1
        if countdown["left"] <= 0:
            countdown["left"] = stride
            emit_frame()

    # A second subscription (ordered after the sampler's) drives cadence.
    untick = runtime.bus.subscribe(tick)
    try:
        run()
    finally:
        untick()
        detach()
    sampler.finish()
    emit_frame()
    return out
