"""Self-contained HTML run explorer.

:func:`render_html` turns a recorded run (plus its sampled series)
into **one** HTML file with every byte inline -- no external scripts,
stylesheets, fonts, or network fetches -- so a CI artifact or an
emailed file opens offline and still shows:

- per-node utilization (cpu / disk / nic / store) as SVG line charts
  over the sampled series;
- tenant fair-share bars;
- spill-queue depth and backpressure stall rate;
- the causal fault -> retry feed;
- the critical-path category breakdown and the report's phase table;
- the Engine self-profile (events/sec throughput and top wall-time
  categories) when the run was recorded with a
  :class:`repro.obs.profile.SelfProfiler` attached.

The data payload is ``sampler.to_dict()`` + ``RunReport.to_dict()`` +
``critical_path(...).to_dict()`` serialised into a ``const DATA``
block; a few hundred lines of vanilla JS render it.  Colors follow the
validated reference palette (categorical slots in fixed order, text in
ink tokens, one axis per chart, dark mode as its own stepped values
behind ``prefers-color-scheme`` and a ``data-theme`` override).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from repro.obs.events import ObsEvent
from repro.obs.live.sampler import TimeSeriesSampler
from repro.obs.perf.critpath import critical_path
from repro.obs.report import RunReport


def explorer_data(
    events: Sequence[ObsEvent],
    sampler: Optional[TimeSeriesSampler] = None,
    title: str = "repro run explorer",
    top_k: int = 10,
) -> Dict[str, Any]:
    """The explorer's full data payload as plain JSON-safe data.

    ``sampler`` defaults to a fresh replay of ``events`` at the default
    interval, so a recorded JSONL file alone is enough input.
    """
    if sampler is None:
        sampler = TimeSeriesSampler.replay(events)
    elif sampler.t_end is None:
        sampler.finish()
    return {
        "title": title,
        "sampler": sampler.to_dict(),
        "report": RunReport(events).to_dict(top_k=top_k),
        "critpath": critical_path(events).to_dict(),
    }


def render_html(
    events: Sequence[ObsEvent],
    sampler: Optional[TimeSeriesSampler] = None,
    title: str = "repro run explorer",
) -> str:
    """Render the single-file HTML explorer for a recorded run."""
    data = explorer_data(events, sampler=sampler, title=title)
    # "</" must not appear inside an inline <script> payload.
    payload = json.dumps(data, sort_keys=True).replace("</", "<\\/")
    return _TEMPLATE.replace("__TITLE__", _escape(title)).replace(
        "__DATA__", payload
    )


def write_html(
    events: Sequence[ObsEvent],
    path: str,
    sampler: Optional[TimeSeriesSampler] = None,
    title: str = "repro run explorer",
) -> str:
    """Write the explorer next to a run; returns the path written."""
    Path(path).write_text(
        render_html(events, sampler=sampler, title=title)
    )
    return path


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


#: The document shell.  Palette hexes are the validated reference
#: palette (categorical slots in fixed order; chart chrome from the ink
#: roles; dark mode is its own stepped values, not an automatic flip).
_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --series-5: #e87ba4;
  --series-6: #008300;
  --series-7: #4a3aa7;
  --series-8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
    --series-5: #d55181;
    --series-6: #008300;
    --series-7: #9085e9;
    --series-8: #e66767;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --border: rgba(255,255,255,0.10);
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #c98500;
  --series-5: #d55181;
  --series-6: #008300;
  --series-7: #9085e9;
  --series-8: #e66767;
}
* { box-sizing: border-box; }
body {
  margin: 0;
  background: var(--page);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; color: var(--text-primary); }
.sub { color: var(--text-secondary); margin: 0 0 16px; }
.panel {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 14px;
  margin: 8px 0 16px;
}
.legend { margin: 4px 0 0; font-size: 12px; color: var(--text-secondary); }
.legend span.swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 10px; vertical-align: baseline;
}
svg text { fill: var(--muted); font-size: 10px; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg polyline { fill: none; stroke-width: 2; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: 3px 10px 3px 0; }
th { color: var(--text-secondary); font-weight: 600;
     border-bottom: 1px solid var(--baseline); }
td { border-bottom: 1px solid var(--grid); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar-row { display: grid; grid-template-columns: 140px 1fr 70px;
           align-items: center; gap: 8px; margin: 3px 0; }
.bar-row .label { color: var(--text-secondary); text-align: right;
                  overflow: hidden; text-overflow: ellipsis; }
.bar-track { background: transparent; height: 14px; }
.bar-fill { height: 14px; border-radius: 0 4px 4px 0; min-width: 2px; }
.bar-row .value { font-variant-numeric: tabular-nums; }
.feed { font: 12px/1.6 ui-monospace, monospace; white-space: pre;
        overflow-x: auto; color: var(--text-secondary); }
.feed .k { color: var(--text-primary); }
.tip {
  position: fixed; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 8px; font-size: 12px;
  color: var(--text-primary); box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
.quiet { color: var(--muted); }
</style>
</head>
<body>
<main>
  <h1>__TITLE__</h1>
  <p class="sub" id="runline"></p>
  <h2>Per-node utilization</h2>
  <div id="nodes"></div>
  <h2>Tenant fair share (tasks finished)</h2>
  <div class="panel" id="tenants"></div>
  <h2>Spill pressure &amp; backpressure</h2>
  <div id="pressure"></div>
  <h2>Fault &rarr; retry feed</h2>
  <div class="panel feed" id="feed"></div>
  <h2>Critical path by category</h2>
  <div class="panel" id="critpath"></div>
  <h2>Phase table</h2>
  <div class="panel" id="phases"></div>
  <h2>Engine self-profile</h2>
  <div class="panel" id="engine"></div>
</main>
<div class="tip" id="tip"></div>
<script>
const DATA = __DATA__;

const SERIES_VARS = [1, 2, 3, 4, 5, 6, 7, 8].map(
  (i) => `var(--series-${i})`);
const fmt = (v) => {
  if (Math.abs(v) >= 1e9) return (v / 1e9).toFixed(2) + "G";
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return Math.abs(v % 1) < 1e-9 ? String(v) : v.toFixed(2);
};

function seriesPoints(name) {
  const s = DATA.sampler.series[name];
  if (!s) return [];
  const dt = DATA.sampler.interval_s, t0 = DATA.sampler.t0 || 0;
  return s.values.map((v, i) => [t0 + (s.start + i + 1) * dt, v]);
}

function sumSeries(names) {
  const all = names.map(seriesPoints).filter((p) => p.length);
  if (!all.length) return [];
  const byT = new Map();
  for (const pts of all)
    for (const [t, v] of pts) byT.set(t, (byT.get(t) || 0) + v);
  return [...byT.entries()].sort((a, b) => a[0] - b[0]);
}

function lineChart(parent, title, namedSeries, unit) {
  const entries = Object.entries(namedSeries)
    .filter(([, pts]) => pts.length > 0);
  const panel = document.createElement("div");
  panel.className = "panel";
  parent.appendChild(panel);
  if (!entries.length) {
    panel.innerHTML = `<div class="quiet">${title}: no samples</div>`;
    return;
  }
  const W = 960, H = 170, L = 48, R = 8, T = 18, B = 22;
  let xLo = Infinity, xHi = -Infinity, yHi = 0;
  for (const [, pts] of entries)
    for (const [x, y] of pts) {
      xLo = Math.min(xLo, x); xHi = Math.max(xHi, x);
      yHi = Math.max(yHi, y);
    }
  if (xHi <= xLo) xHi = xLo + 1;
  if (yHi <= 0) yHi = 1;
  const sx = (x) => L + (x - xLo) / (xHi - xLo) * (W - L - R);
  const sy = (y) => T + (1 - y / yHi) * (H - T - B);
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  svg.setAttribute("width", "100%");
  let inner =
    `<text x="${L}" y="11">${title}</text>` +
    `<line class="axis" x1="${L}" y1="${sy(0)}" x2="${W - R}" y2="${sy(0)}"/>`;
  for (const f of [0.5, 1.0]) {
    const y = sy(yHi * f);
    inner += `<line class="gridline" x1="${L}" y1="${y}" x2="${W - R}" y2="${y}"/>` +
      `<text x="${L - 4}" y="${y + 3}" text-anchor="end">${fmt(yHi * f)}${unit || ""}</text>`;
  }
  inner += `<text x="${L}" y="${H - 6}">${fmt(xLo)}s</text>` +
    `<text x="${W - R}" y="${H - 6}" text-anchor="end">${fmt(xHi)}s</text>`;
  entries.forEach(([, pts], i) => {
    const path = pts.map(([x, y]) => `${sx(x)},${sy(y)}`).join(" ");
    inner += `<polyline points="${path}" stroke="${SERIES_VARS[i % 8]}"/>`;
  });
  svg.innerHTML = inner;
  panel.appendChild(svg);
  if (entries.length >= 2) {
    const legend = document.createElement("div");
    legend.className = "legend";
    legend.innerHTML = "legend:" + entries.map(([name], i) =>
      `<span class="swatch" style="background:${SERIES_VARS[i % 8]}"></span>${name}`
    ).join("");
    panel.appendChild(legend);
  }
  const tip = document.getElementById("tip");
  svg.addEventListener("mousemove", (ev) => {
    const box = svg.getBoundingClientRect();
    const x = xLo + (ev.clientX - box.left) / box.width * (xHi - xLo);
    const rows = entries.map(([name, pts], i) => {
      let best = pts[0];
      for (const p of pts)
        if (Math.abs(p[0] - x) < Math.abs(best[0] - x)) best = p;
      return `${name}: ${fmt(best[1])}${unit || ""}`;
    });
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 14) + "px";
    tip.style.top = (ev.clientY + 10) + "px";
    tip.textContent = `t=${fmt(x)}s  ` + rows.join("  ");
  });
  svg.addEventListener("mouseleave", () => { tip.style.display = "none"; });
}

function barRows(parent, rows, unit) {
  const peak = Math.max(...rows.map(([, v]) => v), 1e-12);
  rows.forEach(([label, value], i) => {
    const row = document.createElement("div");
    row.className = "bar-row";
    const pct = Math.max(0.5, value / peak * 100);
    row.innerHTML =
      `<div class="label">${label}</div>` +
      `<div class="bar-track"><div class="bar-fill" ` +
      `style="width:${pct}%;background:${SERIES_VARS[i % 8]}"></div></div>` +
      `<div class="value">${fmt(value)}${unit || ""}</div>`;
    parent.appendChild(row);
  });
}

function renderTable(parent, tableData) {
  if (!tableData.rows.length) {
    parent.innerHTML = '<div class="quiet">empty</div>';
    return;
  }
  const cols = tableData.columns;
  const numeric = cols.map((c) =>
    tableData.rows.every((r) => typeof r[c] === "number" || r[c] == null));
  let html = "<table><thead><tr>" + cols.map((c, i) =>
    `<th class="${numeric[i] ? "num" : ""}">${c}</th>`).join("") +
    "</tr></thead><tbody>";
  for (const row of tableData.rows) {
    html += "<tr>" + cols.map((c, i) => {
      const v = row[c];
      const text = v == null ? "-" :
        typeof v === "number" ? fmt(v) : String(v);
      return `<td class="${numeric[i] ? "num" : ""}">${text}</td>`;
    }).join("") + "</tr>";
  }
  parent.innerHTML = html + "</tbody></table>";
}

(function main() {
  const S = DATA.sampler, R = DATA.report;
  document.getElementById("runline").textContent =
    `${R.events} events | ${S.samples_taken} samples @ ${S.interval_s}s | ` +
    `t ∈ [${fmt(S.t0 || 0)}s, ${fmt(S.t_end || 0)}s] | ` +
    `${S.nodes.length} nodes | digest ${S.digest.slice(0, 12)}`;

  const nodes = document.getElementById("nodes");
  for (const track of ["cpu", "disk", "nic", "store"]) {
    const series = {};
    for (const n of S.nodes)
      series[n] = seriesPoints(`node:${n}:${track}`);
    lineChart(nodes, `node ${track}` + (track === "store" ? " (bytes)" : ""),
      series, track === "store" ? "B" : "");
  }

  const tenants = document.getElementById("tenants");
  const tenantRows = S.tenants.map((t) => {
    const pts = seriesPoints(`tenant:${t}:finished`);
    return [t, pts.length ? pts[pts.length - 1][1] : 0];
  });
  if (tenantRows.length) barRows(tenants, tenantRows, "");
  else tenants.innerHTML = '<div class="quiet">no tenants recorded</div>';

  const pressure = document.getElementById("pressure");
  lineChart(pressure, "spill queue depth (all nodes)", {
    "spill queue": sumSeries(S.nodes.map((n) => `node:${n}:spill_queue`)),
  }, "");
  lineChart(pressure, "backpressure stalls per interval", {
    "stall rate": seriesPoints("cluster:stall_rate"),
  }, "");

  const feed = document.getElementById("feed");
  if (!S.feed.length) feed.textContent = "(quiet)";
  else feed.innerHTML = S.feed.map((e) => {
    const chain = e.chain.length ? "  ⇐ " + e.chain.join(" ⇐ ") : "";
    const detail = e.detail ? ` (${e.detail})` : "";
    return `t=${e.ts.toFixed(3).padStart(10)}  ` +
      `<span class="k">${e.kind.padEnd(18)}</span> ` +
      `${e.where}${detail}${chain}`;
  }).join("\\n");

  const crit = document.getElementById("critpath");
  const cats = Object.entries(DATA.critpath.categories || {})
    .filter(([, v]) => v > 0).sort((a, b) => b[1] - a[1]);
  if (cats.length) barRows(crit, cats, "s");
  else crit.innerHTML = '<div class="quiet">no critical path recorded</div>';

  renderTable(document.getElementById("phases"), R.phase_table);

  const engine = document.getElementById("engine");
  const E = R.engine_summary || {};
  if (E.top_categories && E.top_categories.length) {
    const line = document.createElement("div");
    line.className = "legend";
    line.textContent =
      `${E.events_processed} simulated events in ` +
      `${E.wall_time_s.toFixed(3)}s wall | ` +
      `${fmt(E.events_per_wall_s)} events/s | ` +
      `${fmt(E.sim_s_per_wall_s)} sim-s per wall-s`;
    engine.appendChild(line);
    barRows(engine, E.top_categories.map(
      (r) => [r.category, r.seconds]), "s");
  } else {
    engine.innerHTML =
      '<div class="quiet">run recorded without a self-profiler ' +
      '(attach one via benchmarks --profile or ' +
      'python -m repro.obs profile --workload)</div>';
  }
})();
</script>
</body>
</html>
"""
