"""The live ops plane: streaming telemetry over the event bus.

Three layers, each a pure consumer of :class:`~repro.obs.events.ObsEvent`
records (the layering lint forbids the data plane from importing this
package back):

- :class:`TimeSeriesSampler` -- fixed-interval ring-buffered series
  per node/tenant/job with exact last-sample semantics, identical when
  attached live or replayed from a ``record_run`` JSONL file;
- :class:`LiveDashboard` -- terminal frames (sparkline utilization
  tracks, fair-share bars, pressure gauges, the causal fault feed)
  behind ``python -m repro.obs live``;
- :func:`render_html` -- the single-file offline HTML run explorer
  behind ``python -m repro.obs html``.
"""

from repro.obs.live.dashboard import (
    LiveDashboard,
    follow_runtime,
    replay_frames,
)
from repro.obs.live.html import explorer_data, render_html, write_html
from repro.obs.live.sampler import (
    FEED_KINDS,
    NODE_TRACKS,
    FeedEntry,
    SeriesRing,
    TimeSeriesSampler,
)

__all__ = [
    "FEED_KINDS",
    "NODE_TRACKS",
    "FeedEntry",
    "LiveDashboard",
    "SeriesRing",
    "TimeSeriesSampler",
    "explorer_data",
    "follow_runtime",
    "render_html",
    "replay_frames",
    "write_html",
]
