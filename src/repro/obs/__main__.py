"""CLI entry point: ``python -m repro.obs [TRACE] [--smoke]`` plus the
performance-analysis subcommands:

- ``python -m repro.obs critpath TRACE`` -- critical-path extraction
  and bottleneck attribution (category breakdown, what-if estimates);
- ``python -m repro.obs usage TRACE`` -- per-node busy fractions and
  the binding-resource timeline;
- ``python -m repro.obs diff BASELINE CANDIDATE`` / ``diff --gate`` --
  benchmark regression checking against ``benchmarks/baselines/``
  (the CI perf gate; nonzero exit on regression or config mismatch);
- ``python -m repro.obs bless RESULT...`` -- refresh committed
  baselines from fresh ``BENCH_*.json`` files (volatile fields
  stripped);
- ``python -m repro.obs live TRACE`` -- terminal ops dashboard frames
  over a recorded run (``--follow`` samples the built-in chaos
  workload live; ``--smoke`` is the headless CI gate checking
  live-vs-replay determinism and panel invariants);
- ``python -m repro.obs html TRACE`` -- export the single-file offline
  HTML run explorer;
- ``python -m repro.obs profile [TRACE | --workload chaos]`` -- the
  simulator profiles *itself*: wall-clock attribution by category
  (engine pop/dispatch, bus publish, metrics charging, span
  derivation), hot-loop counters, events-per-wall-second throughput,
  and standalone-SVG flamegraph export (``--flame``; ``--cprofile``
  for function-level detail).

Report mode loads a :func:`repro.obs.report.record_run` JSONL file and
prints the full run story (phase breakdown, slowest tasks, jobs and
fairness, spill amplification, fault/retry timeline), followed by the
critical-path and usage summaries; ``--json`` prints
:meth:`RunReport.to_dict` instead.

Smoke mode (``--smoke``) exercises the observability plane end to end
and is the CI gate for this package:

1. a push shuffle under a node-crash chaos plan must yield ``task.retry``
   events whose causal chains walk back through ``node.death`` to the
   ``chaos.fault`` that killed the node, a Chrome trace whose retried
   attempt spans carry the causal flow arrows, and a JSONL export that
   round-trips losslessly into an identical report;
2. two labeled jobs on a spill-heavy cluster must charge spill bytes
   into per-job buckets that sum *exactly* to the global spill counter,
   with the metric-dimension invariant family clean;
3. the reporter must render every section from the recorded file alone;
4. the perf layer must attribute the chaos run's critical path with the
   categories summing to the makespan, derive a usage timeline, export
   counter tracks, and the bench differ must flag a synthetic slowdown
   while refusing mismatched configs;
5. the recorded ``policy.decision`` stream must reconstruct placement
   affinity accounting (honoured vs fell-through partitioning every
   placement) and render as the report's policy section;
6. the self-profiler must attach to the chaos workload without changing
   its simulated behavior (event streams identical with and without),
   produce a category breakdown summing to total wall time within 1%,
   detach cleanly, render the report's Engine section, export a
   standalone flamegraph SVG, and surface wall-time movement on the
   differ's non-gating trajectory track.

Exit code 0 means all checks held.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.chaos.harness import (
    default_node_spec,
    expected_output,
    make_inputs,
    submit_variant,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.spec import FaultKind, matrix_plan
from repro.common.units import MIB
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.obs.report import RunReport, record_run
from repro.obs.trace import derive_spans, write_chrome_trace


def _check(ok: bool, message: str) -> int:
    print(f"{'ok  ' if ok else 'FAIL'} {message}")
    return 0 if ok else 1


def _smoke_causality(seed: int, out_dir: Path) -> int:
    """A chaos run must leave a causally linked fault -> retry trace."""
    failures = 0
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=seed))
    inputs = make_inputs(seed, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    values = rt.run(driver)
    rt.env.run()  # drain the node restart
    failures += _check(
        tuple(tuple(v) for v in values) == expected_output(seed),
        "push shuffle under node crash is oracle-correct",
    )
    violations = InvariantChecker(rt).check()
    failures += _check(
        not violations, f"invariants clean ({len(violations)} violations)"
    )
    for violation in violations[:5]:
        print(f"       ! {violation}")

    retries = rt.bus.events_of("task.retry")
    chains = [
        [e.kind for e in rt.bus.causal_chain(retry)] for retry in retries
    ]
    linked = [c for c in chains if "chaos.fault" in c and "node.death" in c]
    failures += _check(
        bool(linked),
        f"{len(linked)}/{len(retries)} retries causally linked "
        f"retry <- node.death <- chaos.fault",
    )
    retry_seqs = {r.seq for r in retries}
    retried_spans = [
        s
        for s in derive_spans(rt.bus.events)
        if s.cat == "task" and s.parent in retry_seqs
    ]
    failures += _check(
        bool(retried_spans),
        f"{len(retried_spans)} re-executed attempt spans carry their "
        f"task.retry as parent",
    )

    trace_path = out_dir / "chaos.trace.json"
    write_chrome_trace(rt.bus.events, str(trace_path))
    trace = json.loads(trace_path.read_text())
    phases = {e.get("ph") for e in trace["traceEvents"]}
    failures += _check(
        {"X", "M", "i", "s", "f"} <= phases,
        f"Chrome trace has spans, metadata, instants, and flow arrows "
        f"({len(trace['traceEvents'])} events)",
    )

    jsonl_path = out_dir / "chaos.events.jsonl"
    written = record_run(rt, str(jsonl_path))
    report = RunReport.load(str(jsonl_path))
    failures += _check(
        written == len(rt.bus.events) + 1
        and len(report.events) == written
        and report.summary.get("stats", {}).get("node_failures") == 1,
        f"JSONL round-trip lossless ({written} events incl. run.summary)",
    )
    return failures


def _spill_job(rt: Runtime, chunks: int):
    """One labeled job body: produce and fetch spill-sized outputs."""
    produce = rt.remote(lambda: bytes(MIB), compute=0.01)
    refs = [produce.remote() for _ in range(chunks)]
    rt.get(refs)
    return chunks


def _smoke_spill_accounting(seed: int, out_dir: Path) -> int:
    """Per-job spill bytes must sum exactly to the global spill counter."""
    failures = 0
    spec = default_node_spec().with_object_store(4 * MIB)
    rt = Runtime.create(spec, 2)

    def driver():
        handles = [
            rt.spawn_driver(_spill_job, rt, 10, name=f"job:{label}", label=label)
            for label in ("tenant-a/sort", "tenant-b/sort")
        ]
        return [rt.join_driver(h) for h in handles]

    rt.run(driver)
    rt.env.run()
    global_spill = rt.counters.get("spill_bytes_written")
    per_job = {
        job_id: bucket.get("spill_bytes_written")
        for job_id, bucket in rt.job_counters.items()
    }
    failures += _check(
        global_spill > 0, f"spilling occurred ({global_spill / MIB:.1f} MiB)"
    )
    failures += _check(
        sum(per_job.values()) == global_spill,
        f"per-job spill bytes sum exactly to the global counter "
        f"({ {k: int(v) for k, v in per_job.items() if v} })",
    )
    violations = [
        v for v in InvariantChecker(rt).check() if v.startswith("metric")
    ]
    failures += _check(
        not violations,
        f"metric-dimension invariant family clean "
        f"({len(violations)} violations)",
    )

    jsonl_path = out_dir / "spill.events.jsonl"
    record_run(rt, str(jsonl_path))
    report = RunReport.load(str(jsonl_path))
    failures += _check(
        sum(report.per_job_spill_bytes().values())
        == report.summary["stats"]["spill_bytes_written"],
        "reporter reproduces the spill attribution from the file alone",
    )
    return failures


def _smoke_perf(seed: int, out_dir: Path) -> int:
    """The perf layer must attribute the recorded chaos run exactly."""
    from repro.obs.events import EventBus
    from repro.obs.perf import critical_path, derive_usage
    from repro.obs.perf.diff import BenchMismatchError, compare_benches

    failures = 0
    events = EventBus.load_jsonl(str(out_dir / "chaos.events.jsonl"))
    path = critical_path(events)
    failures += _check(
        path.makespan > 0 and path.coverage_error() < 0.01,
        f"critical-path categories sum to the makespan "
        f"({path.makespan:.3f}s, error {100 * path.coverage_error():.3f}%)",
    )
    failures += _check(
        path.category_times()["compute"] > 0,
        "critical path contains compute time",
    )

    timeline = derive_usage(events)
    failures += _check(
        bool(timeline.nodes)
        and any(
            timeline.busy_fraction("cpu", node) > 0
            for node in timeline.nodes
        ),
        f"usage timeline shows CPU activity on {len(timeline.nodes)} nodes",
    )
    trace = json.loads((out_dir / "chaos.trace.json").read_text())
    counter_rows = [
        e for e in trace["traceEvents"] if e.get("ph") == "C"
    ]
    failures += _check(
        bool(counter_rows),
        f"Chrome trace carries {len(counter_rows)} counter samples",
    )

    base = {
        "name": "smoke",
        "rows": [{"variant": "push", "seconds": 10.0}],
        "sim_time_s": 10.0,
        "counters": {},
        "fingerprint": {"bench": "smoke", "sort_scale": 1},
    }
    slowed = dict(base, rows=[{"variant": "push", "seconds": 13.0}],
                  sim_time_s=13.0)
    report = compare_benches(base, slowed)
    try:
        compare_benches(
            base,
            dict(base, fingerprint={"bench": "smoke", "sort_scale": 2}),
        )
        refused = False
    except BenchMismatchError:
        refused = True
    failures += _check(
        not report.ok and refused,
        "diff flags a 30% slowdown and refuses mismatched configs",
    )
    return failures


def _smoke_reporter(seed: int, out_dir: Path) -> int:
    """The reporter must render every section from a recorded run."""
    rendered = RunReport.load(str(out_dir / "chaos.events.jsonl")).render()
    wanted = ("Phase breakdown", "Slowest tasks", "Fault / retry timeline")
    missing = [w for w in wanted if w not in rendered]
    print(rendered)
    return _check(
        not missing, f"report renders all sections (missing: {missing or '-'})"
    )


def _smoke_policy(seed: int, out_dir: Path) -> int:
    """The policy plane's decisions must be reconstructable offline."""
    failures = 0
    report = RunReport.load(str(out_dir / "chaos.events.jsonl"))
    places = [
        e
        for e in report.events
        if e.kind == "policy.decision" and e.attrs.get("decision") == "place"
    ]
    affinity = report.affinity_summary()
    failures += _check(
        bool(places),
        f"{len(places)} placement policy decisions recorded",
    )
    failures += _check(
        affinity["honoured"] > 0,
        f"affinity honoured on {affinity['honoured']} placements "
        f"({affinity['fell_through']} fell through, "
        f"{affinity['no_hint']} unhinted)",
    )
    failures += _check(
        sum(affinity.values()) == len(places),
        "affinity accounting partitions every placement decision",
    )
    failures += _check(
        "Policy decisions" in report.render(),
        "report renders the policy-decision section",
    )
    return failures


def _load_events(path: str):
    from repro.obs.events import EventBus

    return EventBus.load_jsonl(path)


def _cmd_critpath(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs critpath",
        description="Critical-path extraction and bottleneck attribution.",
    )
    parser.add_argument("trace", help="a record_run() JSONL file")
    parser.add_argument(
        "--top", type=int, default=8, help="longest segments to print"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    args = parser.parse_args(argv)
    from repro.obs.perf import critical_path

    path = critical_path(_load_events(args.trace))
    if args.json:
        print(json.dumps(path.to_dict(), indent=2))
    else:
        print(path.render(top_k=args.top))
    return 0


def _cmd_usage(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs usage",
        description="Per-node utilization and binding-resource timeline.",
    )
    parser.add_argument("trace", help="a record_run() JSONL file")
    parser.add_argument(
        "--bins", type=int, default=24, help="timeline slices to label"
    )
    args = parser.parse_args(argv)
    from repro.obs.perf import derive_usage

    print(derive_usage(_load_events(args.trace)).render(bins=args.bins))
    return 0


def _default_baseline_dir() -> Path:
    return Path("benchmarks") / "baselines"


def _gate_pairs(baselines: Path, results: Path):
    """(baseline, candidate) path pairs for every committed baseline."""
    for base_path in sorted(baselines.glob("BENCH_*.json")):
        yield base_path, results / base_path.name


def _cmd_diff(argv) -> int:
    from repro.obs.perf.diff import (
        DEFAULT_REL_TOLERANCE,
        BenchMismatchError,
        compare_files,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Compare benchmark results within tolerance bands; "
        "refuses mismatched configs, attributes regressions to "
        "critical-path categories.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        help="BASELINE CANDIDATE result files (omit with --gate)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="CI mode: check every committed baseline against the "
        "matching fresh result; nonzero exit on any regression",
    )
    parser.add_argument(
        "--baselines",
        default=str(_default_baseline_dir()),
        help="committed baseline directory (gate mode)",
    )
    parser.add_argument(
        "--results",
        default=".",
        help="directory holding fresh BENCH_*.json files (gate mode)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=f"relative tolerance band (default {DEFAULT_REL_TOLERANCE:.2f})",
    )
    parser.add_argument(
        "--json", action="store_true", help="print reports as JSON"
    )
    args = parser.parse_args(argv)
    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_REL_TOLERANCE
    )
    if args.gate:
        pairs = list(_gate_pairs(Path(args.baselines), Path(args.results)))
        if not pairs:
            print(f"no baselines found under {args.baselines}")
            return 2
    elif len(args.files) == 2:
        pairs = [(Path(args.files[0]), Path(args.files[1]))]
    else:
        parser.error("expected BASELINE CANDIDATE files, or --gate")
        return 2

    failures = 0
    for base_path, cand_path in pairs:
        print(f"== {base_path} vs {cand_path}")
        if not cand_path.exists():
            print(f"FAIL candidate result missing: {cand_path}")
            failures += 1
            continue
        try:
            report = compare_files(
                str(base_path), str(cand_path), rel_tolerance=tolerance
            )
        except BenchMismatchError as exc:
            print(f"FAIL {exc}")
            failures += 1
            continue
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        if not report.ok:
            failures += 1
    print(
        "perf gate passed"
        if not failures
        else f"perf gate: {failures} comparison(s) failed"
    )
    return 1 if failures else 0


def _cmd_bless(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs bless",
        description="Refresh committed baselines from fresh BENCH_*.json "
        "results (volatile host-dependent fields stripped).",
    )
    parser.add_argument("results", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--baselines",
        default=str(_default_baseline_dir()),
        help="baseline directory to write into",
    )
    args = parser.parse_args(argv)
    from repro.obs.perf.diff import load_bench, strip_volatile

    out_dir = Path(args.baselines)
    out_dir.mkdir(parents=True, exist_ok=True)
    for result in args.results:
        payload = strip_volatile(load_bench(result))
        target = out_dir / f"BENCH_{payload['name']}.json"
        target.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        print(f"blessed {result} -> {target}")
    return 0


def _chaos_workload(seed: int):
    """The shared chaos demo workload: a push shuffle under a node
    crash.  Returns ``(runtime, driver)``; the caller decides whether a
    sampler attaches before ``rt.run(driver)``."""
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=seed))
    inputs = make_inputs(seed, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    return rt, driver


def _smoke_live(seed: int, out_dir: Path, frames: int = 4) -> int:
    """Live ops plane checks: live == replay, panel invariants, and a
    self-contained offline HTML explorer for a chaos run."""
    from repro.obs.live import (
        TimeSeriesSampler,
        render_html,
        replay_frames,
    )

    failures = 0
    rt, driver = _chaos_workload(seed)
    live = TimeSeriesSampler(interval_s=0.25)
    rt.attach_sampler(live)
    rt.run(driver)
    rt.env.run()  # drain the node restart
    jsonl_path = out_dir / "live.events.jsonl"
    record_run(rt, str(jsonl_path))
    live.finish()
    replayed = TimeSeriesSampler.replay_file(str(jsonl_path))
    failures += _check(
        live.series_digest() == replayed.series_digest(),
        f"live and replayed series identical "
        f"({len(live.series)} series, digest "
        f"{live.series_digest()[:12]})",
    )
    failures += _check(
        len(replayed.series) > 0 and replayed.samples_taken > 0,
        f"sampler produced {replayed.samples_taken} samples over "
        f"{len(replayed.series)} series",
    )
    failures += _check(
        bool(replayed.feed)
        and any(e.kind == "task.retry" and e.chain for e in replayed.feed),
        f"fault feed carries {len(replayed.feed)} entries with causal "
        f"retry chains",
    )

    events = _load_events(str(jsonl_path))
    rendered = replay_frames(events, frames=frames)
    panel_marks = (
        "== repro live ops ==",
        "-- node utilization ",
        "tenant fair share",
        "-- pressure ",
        "-- fault feed ",
    )
    bad = [
        (i, mark)
        for i, frame in enumerate(rendered)
        for mark in panel_marks
        if mark not in frame
    ]
    failures += _check(
        len(rendered) == frames and not bad,
        f"{len(rendered)} deterministic frames render all panels "
        f"(missing: {bad or '-'})",
    )
    node_lines = [
        line for line in rendered[-1].splitlines() if "  cpu " in line
    ]
    failures += _check(
        len(node_lines) == len(replayed.nodes()) > 0,
        f"final frame tracks all {len(replayed.nodes())} nodes",
    )
    again = replay_frames(_load_events(str(jsonl_path)), frames=frames)
    failures += _check(
        rendered == again, "frame sequence is reproducible bit-for-bit"
    )

    html = render_html(events, title="live smoke chaos run")
    # The only URL allowed is the SVG namespace (an identifier, never
    # fetched); everything else must be inline for offline viewing.
    stripped = html.replace("http://www.w3.org/2000/svg", "")
    offline = (
        "<script src=" not in stripped
        and "<link" not in stripped
        and "http://" not in stripped
        and "https://" not in stripped
    )
    wanted = (
        "Per-node utilization",
        "Tenant fair share",
        "Spill pressure",
        "backpressure",
        "Fault",
        "Critical path",
        "Phase table",
    )
    missing = [w for w in wanted if w.lower() not in html.lower()]
    failures += _check(
        offline and not missing,
        f"HTML explorer is one offline file with every section "
        f"({len(html)} bytes, missing: {missing or '-'})",
    )
    return failures


def _cmd_live(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs live",
        description="Terminal ops dashboard over a recorded run "
        "(or --follow: the built-in chaos workload, sampled live).",
    )
    parser.add_argument(
        "trace", nargs="?", help="a record_run() JSONL file to replay"
    )
    parser.add_argument(
        "--follow",
        action="store_true",
        help="run the built-in chaos workload in-process and render "
        "frames live as it progresses",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headless determinism checks: live==replay digest, N "
        "deterministic frames, panel invariants, offline HTML",
    )
    parser.add_argument(
        "--frames", type=int, default=4, help="frames to render"
    )
    parser.add_argument(
        "--interval", type=float, default=0.25, help="sample interval (s)"
    )
    parser.add_argument(
        "--window", type=int, default=48, help="sparkline window (samples)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--clear",
        action="store_true",
        help="emit ANSI clear codes between frames (interactive replay)",
    )
    args = parser.parse_args(argv)
    from repro.obs.live import follow_runtime, replay_frames

    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as tmp:
            failures = _smoke_live(args.seed, Path(tmp), frames=args.frames)
        print(
            "live smoke passed"
            if not failures
            else f"live smoke: {failures} check(s) failed"
        )
        return 1 if failures else 0
    separator = "\x1b[2J\x1b[H" if args.clear else "\n" + "=" * 72 + "\n"
    if args.follow:
        rt, driver = _chaos_workload(args.seed)

        def show(frame: str) -> None:
            print(separator + frame)

        def run():
            rt.run(driver)
            rt.env.run()

        follow_runtime(
            rt,
            run,
            interval_s=args.interval,
            window=args.window,
            on_frame=show,
        )
        return 0
    if not args.trace:
        parser.error("expected a trace file, --follow, or --smoke")
        return 2
    for frame in replay_frames(
        _load_events(args.trace),
        frames=args.frames,
        interval_s=args.interval,
        window=args.window,
    ):
        print(separator + frame)
    return 0


def _cmd_profile(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs profile",
        description="Self-profile the simulator: wall-clock attribution "
        "by engine/bus/metrics category, hot-loop counters, events-per-"
        "wall-second throughput, and flamegraph export.  With TRACE, "
        "profiles the offline analysis pipeline over that recording "
        "(and prints any profile recorded in its run.summary); with "
        "--workload, runs the built-in chaos workload instrumented.",
    )
    parser.add_argument(
        "trace", nargs="?", help="a record_run() JSONL file to analyze"
    )
    parser.add_argument(
        "--workload",
        choices=("chaos",),
        default=None,
        help="run a built-in workload live with the profiler attached",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--flame", default=None, help="write a standalone SVG flamegraph here"
    )
    parser.add_argument(
        "--folded",
        default=None,
        help="write collapsed-stack text (for external flamegraph tools)",
    )
    parser.add_argument(
        "--cprofile",
        action="store_true",
        help="also capture cProfile for a function-level flamegraph "
        "(inflates wall time; never used by the bench harness)",
    )
    parser.add_argument(
        "--alloc",
        action="store_true",
        help="track allocations via tracemalloc (adds overhead)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the profile as JSON"
    )
    args = parser.parse_args(argv)
    from repro.obs.profile import (
        CProfileCapture,
        SelfProfiler,
        folded_from_profiler,
        write_flamegraph,
    )

    if args.trace is None and args.workload is None:
        parser.error("expected a trace file or --workload")
        return 2
    prof = SelfProfiler(trace_allocations=args.alloc)
    capture = CProfileCapture() if args.cprofile else None
    if capture is not None:
        capture.start()
    if args.workload:
        rt, driver = _chaos_workload(args.seed)
        prof.attach(rt)
        rt.run(driver)
        rt.env.run()
        prof.detach()
        recorded = None
    else:
        prof.start()
        with prof.scope("trace.load"):
            events = _load_events(args.trace)
        with prof.scope("span.derive"):
            derive_spans(events)
        with prof.scope("report.render"):
            report = RunReport(events)
            report.render()
        recorded = report.engine_summary()
    if capture is not None:
        capture.stop()
    prof.finish()
    if args.json:
        payload = prof.to_dict()
        if recorded:
            payload["recorded_profile"] = recorded
        print(json.dumps(payload, indent=2))
    else:
        print(prof.render())
        if recorded:
            print()
            print(
                f"recorded run.summary profile: "
                f"{recorded['events_processed']} simulated events in "
                f"{recorded['wall_time_s']:.3f}s wall "
                f"({recorded['events_per_wall_s']:,.0f} events/s)"
            )
            for row in recorded["top_categories"]:
                print(
                    f"  {row['category']:<28} {row['seconds']:9.4f}s  "
                    f"{100 * row['share']:5.1f}%"
                )
    folded = capture.folded() if capture is not None else folded_from_profiler(prof)
    if args.flame:
        title = (
            "cProfile (function-level)" if capture is not None
            else "self-profile (category scopes)"
        )
        out = write_flamegraph(
            folded,
            Path(args.flame),
            title=title,
            folded_path=Path(args.folded) if args.folded else None,
        )
        print(f"wrote {out}")
    elif args.folded:
        from repro.obs.profile.flame import folded_lines

        Path(args.folded).write_text("\n".join(folded_lines(folded)) + "\n")
        print(f"wrote {args.folded}")
    return 0


def _smoke_profile(seed: int, out_dir: Path) -> int:
    """The self-profiling plane's checks: full-coverage invariant,
    clean detach, behavior preservation, Engine report section,
    standalone flamegraph, and the non-gating trajectory track."""
    from repro.obs.events import EventBus
    from repro.obs.perf.diff import compare_benches
    from repro.obs.profile import (
        SelfProfiler,
        folded_from_profiler,
        render_flamegraph_svg,
    )

    failures = 0
    rt, driver = _chaos_workload(seed)
    prof = SelfProfiler()
    prof.attach(rt)
    values = rt.run(driver)
    rt.env.run()
    prof.detach()
    prof.finish()
    failures += _check(
        tuple(tuple(v) for v in values) == expected_output(seed),
        "profiled chaos run is oracle-correct",
    )
    profile = prof.to_dict()
    failures += _check(
        profile["wall_time_s"] > 0
        and prof.coverage_error() < 0.01
        and abs(sum(profile["categories"].values()) - profile["wall_time_s"])
        <= 0.01 * profile["wall_time_s"],
        f"category breakdown sums to total wall time "
        f"({profile['wall_time_s']:.4f}s, error "
        f"{100 * prof.coverage_error():.4f}%)",
    )
    failures += _check(
        profile["events_per_wall_s"] > 0
        and profile["counters"]["events_processed"]
        == profile["counters"]["heap_pops"]
        > 0,
        f"throughput and hot-loop counters populated "
        f"({profile['events_per_wall_s']:,.0f} events/s, "
        f"{profile['counters']['events_processed']} events)",
    )
    failures += _check(
        "step" not in vars(rt.env)
        and "emit" not in vars(rt.bus)
        and "charge_task" not in vars(rt),
        "detach restored every pristine method (no instance shadows left)",
    )

    # Behavior preservation: the profiled run's event stream must be
    # byte-identical to an unprofiled run of the same workload.
    rt2, driver2 = _chaos_workload(seed)
    rt2.run(driver2)
    rt2.env.run()
    profiled_stream = [
        (e.kind, e.ts, str(sorted(e.attrs.items()))) for e in rt.bus.events
    ]
    plain_stream = [
        (e.kind, e.ts, str(sorted(e.attrs.items()))) for e in rt2.bus.events
    ]
    failures += _check(
        profiled_stream == plain_stream,
        f"profiling changes no simulated behavior "
        f"({len(plain_stream)} events identical)",
    )

    jsonl_path = out_dir / "profile.events.jsonl"
    record_run(rt, str(jsonl_path))
    report = RunReport.load(str(jsonl_path))
    engine = report.engine_summary()
    failures += _check(
        bool(engine)
        and engine["events_processed"] > 0
        and "Engine self-profile" in report.render(),
        "report renders the Engine section from the recorded file alone",
    )

    svg = render_flamegraph_svg(folded_from_profiler(prof))
    stripped = svg.replace("http://www.w3.org/2000/svg", "")
    failures += _check(
        svg.startswith("<svg")
        and "<title>" in svg
        and "http://" not in stripped
        and "https://" not in stripped
        and "<script" not in svg,
        f"flamegraph is one standalone offline SVG ({len(svg)} bytes)",
    )

    base = {
        "name": "smoke",
        "rows": [{"variant": "push", "seconds": 10.0}],
        "sim_time_s": 10.0,
        "counters": {},
        "wall_time_s": 1.0,
        "profile": {"events_per_wall_s": 50_000.0, "sim_s_per_wall_s": 10.0,
                    "events_processed": 50_000},
        "fingerprint": {"bench": "smoke", "sort_scale": 1},
    }
    slower = dict(
        base,
        wall_time_s=2.5,
        profile={"events_per_wall_s": 20_000.0, "sim_s_per_wall_s": 4.0,
                 "events_processed": 50_000},
    )
    verdict = compare_benches(base, slower)
    failures += _check(
        verdict.ok
        and len(verdict.trajectory) == 4
        and "Perf trajectory" in verdict.render(),
        "a 2.5x wall-time slowdown is reported on the trajectory track "
        "but does not gate",
    )
    return failures


def _cmd_html(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs html",
        description="Export a recorded run as a single self-contained "
        "HTML explorer (inline JS, opens offline).",
    )
    parser.add_argument("trace", help="a record_run() JSONL file")
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="output path (default: TRACE with .explorer.html)",
    )
    parser.add_argument(
        "--title", default=None, help="document title (default: the trace)"
    )
    parser.add_argument(
        "--interval", type=float, default=0.25, help="sample interval (s)"
    )
    args = parser.parse_args(argv)
    from repro.obs.live import TimeSeriesSampler, write_html

    events = _load_events(args.trace)
    sampler = TimeSeriesSampler.replay(events, interval_s=args.interval)
    out = args.out or str(Path(args.trace).with_suffix("")) + ".explorer.html"
    write_html(
        events,
        out,
        sampler=sampler,
        title=args.title or f"run explorer: {Path(args.trace).name}",
    )
    print(f"wrote {out}")
    return 0


_SUBCOMMANDS = {
    "critpath": _cmd_critpath,
    "usage": _cmd_usage,
    "diff": _cmd_diff,
    "bless": _cmd_bless,
    "live": _cmd_live,
    "html": _cmd_html,
    "profile": _cmd_profile,
}


def main(argv=None) -> int:
    """Dispatch to a perf subcommand, report mode, or smoke mode."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability-plane run reporter and smoke runner. "
        "Subcommands: critpath, usage, diff, bless, live, html, profile.",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="a record_run() JSONL file to load and report on",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="report mode: print RunReport.to_dict() as JSON",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the end-to-end observability checks; exit nonzero on "
        "any failure",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--top", type=int, default=10, help="slowest-task rows to print"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
            out_dir = Path(tmp)
            failures = _smoke_causality(args.seed, out_dir)
            failures += _smoke_spill_accounting(args.seed, out_dir)
            failures += _smoke_reporter(args.seed, out_dir)
            failures += _smoke_perf(args.seed, out_dir)
            failures += _smoke_policy(args.seed, out_dir)
            failures += _smoke_profile(args.seed, out_dir)
        print(
            "obs smoke passed"
            if not failures
            else f"obs smoke: {failures} check(s) failed"
        )
        return 1 if failures else 0
    if args.trace:
        try:
            events = _load_events(args.trace)
            if args.json:
                print(
                    json.dumps(
                        RunReport(events).to_dict(top_k=args.top), indent=2
                    )
                )
                return 0
            print(RunReport(events).render(top_k=args.top))
            from repro.obs.perf import critical_path, derive_usage

            path = critical_path(events)
            if path.segments:
                print()
                print(path.render(top_k=0))
                print()
                print(derive_usage(events).node_table().render())
        except BrokenPipeError:  # e.g. piped into `head`
            pass
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
