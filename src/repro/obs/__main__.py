"""CLI entry point: ``python -m repro.obs [TRACE] [--smoke]``.

Report mode loads a :func:`repro.obs.report.record_run` JSONL file and
prints the full run story (phase breakdown, slowest tasks, jobs and
fairness, spill amplification, fault/retry timeline).

Smoke mode (``--smoke``) exercises the observability plane end to end
and is the CI gate for this package:

1. a push shuffle under a node-crash chaos plan must yield ``task.retry``
   events whose causal chains walk back through ``node.death`` to the
   ``chaos.fault`` that killed the node, a Chrome trace whose retried
   attempt spans carry the causal flow arrows, and a JSONL export that
   round-trips losslessly into an identical report;
2. two labeled jobs on a spill-heavy cluster must charge spill bytes
   into per-job buckets that sum *exactly* to the global spill counter,
   with the metric-dimension invariant family clean;
3. the reporter must render every section from the recorded file alone.

Exit code 0 means all checks held.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.chaos.harness import (
    default_node_spec,
    expected_output,
    make_inputs,
    submit_variant,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import InvariantChecker
from repro.chaos.spec import FaultKind, matrix_plan
from repro.common.units import MIB
from repro.futures import RetryPolicy, Runtime, RuntimeConfig
from repro.obs.report import RunReport, record_run
from repro.obs.trace import derive_spans, write_chrome_trace


def _check(ok: bool, message: str) -> int:
    print(f"{'ok  ' if ok else 'FAIL'} {message}")
    return 0 if ok else 1


def _smoke_causality(seed: int, out_dir: Path) -> int:
    """A chaos run must leave a causally linked fault -> retry trace."""
    failures = 0
    rt = Runtime.create(
        default_node_spec(),
        4,
        config=RuntimeConfig(retry_policy=RetryPolicy(max_attempts=8)),
    )
    ChaosInjector(rt, matrix_plan(FaultKind.NODE_CRASH, seed=seed))
    inputs = make_inputs(seed, 8, 24)

    def driver():
        return rt.get(submit_variant("push", rt, inputs, 4))

    values = rt.run(driver)
    rt.env.run()  # drain the node restart
    failures += _check(
        tuple(tuple(v) for v in values) == expected_output(seed),
        "push shuffle under node crash is oracle-correct",
    )
    violations = InvariantChecker(rt).check()
    failures += _check(
        not violations, f"invariants clean ({len(violations)} violations)"
    )
    for violation in violations[:5]:
        print(f"       ! {violation}")

    retries = rt.bus.events_of("task.retry")
    chains = [
        [e.kind for e in rt.bus.causal_chain(retry)] for retry in retries
    ]
    linked = [c for c in chains if "chaos.fault" in c and "node.death" in c]
    failures += _check(
        bool(linked),
        f"{len(linked)}/{len(retries)} retries causally linked "
        f"retry <- node.death <- chaos.fault",
    )
    retry_seqs = {r.seq for r in retries}
    retried_spans = [
        s
        for s in derive_spans(rt.bus.events)
        if s.cat == "task" and s.parent in retry_seqs
    ]
    failures += _check(
        bool(retried_spans),
        f"{len(retried_spans)} re-executed attempt spans carry their "
        f"task.retry as parent",
    )

    trace_path = out_dir / "chaos.trace.json"
    write_chrome_trace(rt.bus.events, str(trace_path))
    trace = json.loads(trace_path.read_text())
    phases = {e.get("ph") for e in trace["traceEvents"]}
    failures += _check(
        {"X", "M", "i", "s", "f"} <= phases,
        f"Chrome trace has spans, metadata, instants, and flow arrows "
        f"({len(trace['traceEvents'])} events)",
    )

    jsonl_path = out_dir / "chaos.events.jsonl"
    written = record_run(rt, str(jsonl_path))
    report = RunReport.load(str(jsonl_path))
    failures += _check(
        written == len(rt.bus.events) + 1
        and len(report.events) == written
        and report.summary.get("stats", {}).get("node_failures") == 1,
        f"JSONL round-trip lossless ({written} events incl. run.summary)",
    )
    return failures


def _spill_job(rt: Runtime, chunks: int):
    """One labeled job body: produce and fetch spill-sized outputs."""
    produce = rt.remote(lambda: bytes(MIB), compute=0.01)
    refs = [produce.remote() for _ in range(chunks)]
    rt.get(refs)
    return chunks


def _smoke_spill_accounting(seed: int, out_dir: Path) -> int:
    """Per-job spill bytes must sum exactly to the global spill counter."""
    failures = 0
    spec = default_node_spec().with_object_store(4 * MIB)
    rt = Runtime.create(spec, 2)

    def driver():
        handles = [
            rt.spawn_driver(_spill_job, rt, 10, name=f"job:{label}", label=label)
            for label in ("tenant-a/sort", "tenant-b/sort")
        ]
        return [rt.join_driver(h) for h in handles]

    rt.run(driver)
    rt.env.run()
    global_spill = rt.counters.get("spill_bytes_written")
    per_job = {
        job_id: bucket.get("spill_bytes_written")
        for job_id, bucket in rt.job_counters.items()
    }
    failures += _check(
        global_spill > 0, f"spilling occurred ({global_spill / MIB:.1f} MiB)"
    )
    failures += _check(
        sum(per_job.values()) == global_spill,
        f"per-job spill bytes sum exactly to the global counter "
        f"({ {k: int(v) for k, v in per_job.items() if v} })",
    )
    violations = [
        v for v in InvariantChecker(rt).check() if v.startswith("metric")
    ]
    failures += _check(
        not violations,
        f"metric-dimension invariant family clean "
        f"({len(violations)} violations)",
    )

    jsonl_path = out_dir / "spill.events.jsonl"
    record_run(rt, str(jsonl_path))
    report = RunReport.load(str(jsonl_path))
    failures += _check(
        sum(report.per_job_spill_bytes().values())
        == report.summary["stats"]["spill_bytes_written"],
        "reporter reproduces the spill attribution from the file alone",
    )
    return failures


def _smoke_reporter(seed: int, out_dir: Path) -> int:
    """The reporter must render every section from a recorded run."""
    rendered = RunReport.load(str(out_dir / "chaos.events.jsonl")).render()
    wanted = ("Phase breakdown", "Slowest tasks", "Fault / retry timeline")
    missing = [w for w in wanted if w not in rendered]
    print(rendered)
    return _check(
        not missing, f"report renders all sections (missing: {missing or '-'})"
    )


def main(argv=None) -> int:
    """Parse arguments and run report or smoke mode."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability-plane run reporter and smoke runner.",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="a record_run() JSONL file to load and report on",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the end-to-end observability checks; exit nonzero on "
        "any failure",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--top", type=int, default=10, help="slowest-task rows to print"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
            out_dir = Path(tmp)
            failures = _smoke_causality(args.seed, out_dir)
            failures += _smoke_spill_accounting(args.seed, out_dir)
            failures += _smoke_reporter(args.seed, out_dir)
        print(
            "obs smoke passed"
            if not failures
            else f"obs smoke: {failures} check(s) failed"
        )
        return 1 if failures else 0
    if args.trace:
        try:
            print(RunReport.load(args.trace).render(top_k=args.top))
        except BrokenPipeError:  # e.g. piped into `head`
            pass
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
