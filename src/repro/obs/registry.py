"""Dimensioned metrics: counters, gauges, and histograms by node and job.

The runtime's flat :class:`~repro.metrics.core.Counters` answer "how
much, in total"; the registry answers "how much, *where* and *for
whom*".  Every series is a metric name plus an optional ``node`` and/or
``job`` dimension; writes always update both the dimensioned series and
the undimensioned global, so per-dimension values sum exactly to the
global for every populated axis -- the accounting invariant the chaos
checker's metric-dimension family asserts.

``snapshot()`` captures everything as plain nested dicts and
``delta()`` closes a measurement interval against a previous snapshot,
which is how the run reporter prints phase-scoped counter movement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.core import Histogram

#: The dimension key used for the undimensioned (global) series.
GLOBAL_DIM = "<all>"

#: Job dimension for work not attributed to any job (mirrors
#: ``repro.futures.runtime.UNATTRIBUTED_JOB`` without importing it --
#: the registry must not depend on the runtime).
UNATTRIBUTED = "<unattributed>"

_AXES = ("node", "job")


def _dims(node: Any, job: Optional[str]) -> Tuple[Tuple[str, str], ...]:
    """Normalised (axis, value) pairs for the populated dimensions."""
    out: List[Tuple[str, str]] = []
    if node is not None:
        out.append(("node", str(node)))
    if job is not None:
        out.append(("job", str(job)))
    return tuple(out)


class MetricRegistry:
    """Per-run metric store with node and job dimensions."""

    def __init__(self) -> None:
        # name -> axis ("<all>"/"node"/"job") -> dim value -> number
        self._counters: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._gauges: Dict[str, Dict[str, Dict[str, float]]] = {}
        # (name, axis, dim value) -> Histogram
        self._histograms: Dict[Tuple[str, str, str], Histogram] = {}

    # -- counters ------------------------------------------------------------
    def counter(
        self,
        name: str,
        amount: float = 1.0,
        *,
        node: Any = None,
        job: Optional[str] = None,
    ) -> None:
        """Add to a monotonic counter, charging the global series and
        every populated dimension axis in lockstep."""
        series = self._counters.setdefault(name, {})
        series.setdefault(GLOBAL_DIM, {}).setdefault(GLOBAL_DIM, 0.0)
        series[GLOBAL_DIM][GLOBAL_DIM] += amount
        for axis, value in _dims(node, job):
            bucket = series.setdefault(axis, {})
            bucket[value] = bucket.get(value, 0.0) + amount

    def counter_total(self, name: str) -> float:
        """The global value of a counter (0 if never touched)."""
        return self._counters.get(name, {}).get(GLOBAL_DIM, {}).get(
            GLOBAL_DIM, 0.0
        )

    def counter_by(self, name: str, axis: str) -> Dict[str, float]:
        """One axis of a counter (``"node"`` or ``"job"``) as a dict."""
        if axis not in _AXES:
            raise ValueError(f"unknown axis {axis!r}; expected one of {_AXES}")
        return dict(self._counters.get(name, {}).get(axis, {}))

    def counter_names(self) -> List[str]:
        """Every counter name ever written, sorted."""
        return sorted(self._counters)

    # -- gauges --------------------------------------------------------------
    def gauge_set(
        self,
        name: str,
        value: float,
        *,
        node: Any = None,
        job: Optional[str] = None,
    ) -> None:
        """Set a point-in-time gauge (store occupancy, queue depth).

        The global series holds the *sum* over the most specific
        populated dimension, recomputed on every write, so per-node
        gauges aggregate the way occupancy should.
        """
        series = self._gauges.setdefault(name, {})
        dims = _dims(node, job)
        if not dims:
            series.setdefault(GLOBAL_DIM, {})[GLOBAL_DIM] = float(value)
            return
        for axis, dim_value in dims:
            series.setdefault(axis, {})[dim_value] = float(value)
        # Re-derive the global as the sum over the first populated axis.
        axis = dims[0][0]
        series.setdefault(GLOBAL_DIM, {})[GLOBAL_DIM] = sum(
            series[axis].values()
        )

    def gauge(self, name: str, *, node: Any = None, job: Optional[str] = None) -> float:
        """Read a gauge (the global sum when no dimension is given)."""
        series = self._gauges.get(name, {})
        dims = _dims(node, job)
        if not dims:
            return series.get(GLOBAL_DIM, {}).get(GLOBAL_DIM, 0.0)
        axis, value = dims[0]
        return series.get(axis, {}).get(value, 0.0)

    # -- histograms ------------------------------------------------------------
    def observe(
        self,
        name: str,
        value: float,
        *,
        node: Any = None,
        job: Optional[str] = None,
    ) -> None:
        """Record a sample into the global histogram and each populated
        dimension's histogram."""
        keys = [(name, GLOBAL_DIM, GLOBAL_DIM)]
        keys.extend((name, axis, dim) for axis, dim in _dims(node, job))
        for key in keys:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    f"{key[0]}[{key[1]}={key[2]}]"
                )
            hist.record(value)

    def histogram(
        self, name: str, *, node: Any = None, job: Optional[str] = None
    ) -> Histogram:
        """The histogram for one series (empty if never observed)."""
        dims = _dims(node, job)
        key = (name, *dims[0]) if dims else (name, GLOBAL_DIM, GLOBAL_DIM)
        return self._histograms.get(key) or Histogram(name)

    # -- snapshot / delta ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Everything as nested plain dicts (JSON-serialisable)."""
        return {
            "counters": {
                name: {axis: dict(vals) for axis, vals in series.items()}
                for name, series in self._counters.items()
            },
            "gauges": {
                name: {axis: dict(vals) for axis, vals in series.items()}
                for name, series in self._gauges.items()
            },
            "histograms": {
                f"{name}[{axis}={dim}]": hist.snapshot()
                for (name, axis, dim), hist in self._histograms.items()
            },
        }

    def delta(self, previous: Dict[str, Any]) -> Dict[str, Any]:
        """Counter movement since ``previous`` (a :meth:`snapshot`).

        Gauges and histograms are point-in-time / cumulative summaries,
        so the delta reports only counters; untouched series drop out.
        """
        prev = previous.get("counters", {})
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for name, series in self._counters.items():
            for axis, values in series.items():
                for dim, value in values.items():
                    before = prev.get(name, {}).get(axis, {}).get(dim, 0.0)
                    moved = value - before
                    if moved:
                        out.setdefault(name, {}).setdefault(axis, {})[dim] = moved
        return {"counters": out}

    def __repr__(self) -> str:
        return (
            f"<MetricRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
