"""Per-node resource usage timelines derived from the event stream.

Every track is a step function reconstructed purely from recorded
events -- no runtime access needed, so the same analysis runs on a
live bus or a ``record_run`` JSONL file:

- ``cpu`` -- concurrently executing task attempts (from task spans);
- ``disk`` -- in-flight disk requests: spill writes, spill restores,
  and direct ``output_to_disk`` writes (the simulated disk is a FIFO
  byte server, so coverage *is* utilization);
- ``nic`` -- in-flight transfers touching the node, as source or
  destination;
- ``store`` -- object-store occupancy in bytes, from
  ``object.create`` / ``transfer.end`` / ``spill.restore.end`` adds
  and ``spill.write.end`` / ``object.evict`` removals (clamped at
  zero: spill writes report file bytes, not per-object residency, so
  this is an approximation biased low under heavy fusing);
- ``spill_queue`` -- allocations parked under memory pressure
  (``store.pressure`` opens, the matching ``object.create`` or
  ``spill.fallback`` closes).

:class:`UsageTimeline` answers "how busy was each resource" (busy
fractions, slot utilizations against the recorded cluster spec) and
"what bound the run when" (:meth:`UsageTimeline.intervals` slices the
makespan and labels each slice with its *binding resource* --
saturated, or merely the busiest thing while the cluster sat
blocked).  :func:`usage_chrome_events` renders every track as Chrome
``"ph": "C"`` counter rows next to the span lanes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.tables import ResultTable
from repro.obs.events import ObsEvent
from repro.obs.trace import Span, derive_spans, node_pids

#: Cluster utilization at or above this fraction marks a resource
#: *saturated* (the binding constraint, not just the busiest thing).
SATURATION_THRESHOLD = 0.85

#: The track names every node gets.
TRACKS = ("cpu", "disk", "nic", "store", "spill_queue")


class StepTrack:
    """A right-continuous step function built from timestamped points."""

    def __init__(self) -> None:
        self._ts: List[float] = []
        self._values: List[float] = []

    def set(self, ts: float, value: float) -> None:
        if self._ts and ts <= self._ts[-1] + 1e-12:
            self._values[-1] = value
            return
        self._ts.append(ts)
        self._values.append(value)

    def add(
        self,
        ts: float,
        delta: float,
        floor: float = 0.0,
        ceiling: Optional[float] = None,
    ) -> None:
        value = max(floor, self.value_at(ts) + delta)
        if ceiling is not None:
            value = min(value, ceiling)
        self.set(ts, value)

    @property
    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._ts, self._values))

    def value_at(self, ts: float) -> float:
        i = bisect.bisect_right(self._ts, ts) - 1
        return self._values[i] if i >= 0 else 0.0

    def max_value(self) -> float:
        return max(self._values, default=0.0)

    def integral(self, start: float, end: float) -> float:
        """Integral of the track over ``[start, end]`` (value-seconds)."""
        if end <= start or not self._ts:
            return 0.0
        total = 0.0
        value = self.value_at(start)
        cursor = start
        i = bisect.bisect_right(self._ts, start)
        while i < len(self._ts) and self._ts[i] < end:
            total += value * (self._ts[i] - cursor)
            cursor, value = self._ts[i], self._values[i]
            i += 1
        total += value * (end - cursor)
        return total

    def busy_time(self, start: float, end: float) -> float:
        """Seconds in ``[start, end]`` where the value is positive."""
        if end <= start or not self._ts:
            return 0.0
        total = 0.0
        value = self.value_at(start)
        cursor = start
        i = bisect.bisect_right(self._ts, start)
        while i < len(self._ts) and self._ts[i] < end:
            if value > 0:
                total += self._ts[i] - cursor
            cursor, value = self._ts[i], self._values[i]
            i += 1
        if value > 0:
            total += end - cursor
        return total


@dataclass(frozen=True)
class UsageInterval:
    """One slice of the run, labeled with its binding resource."""

    start: float
    end: float
    #: ``cpu`` / ``disk`` / ``nic`` -- the busiest resource -- or
    #: ``idle`` when nothing ran at all.
    binding: str
    #: True when the binding resource's cluster utilization clears
    #: :data:`SATURATION_THRESHOLD`; False means the cluster was
    #: *blocked* (work existed but nothing was the bottleneck --
    #: barriers, queue waits, driver think time).
    saturated: bool
    #: Cluster utilization per resource over the slice, in [0, 1].
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def label(self) -> str:
        if self.binding == "idle":
            return "idle"
        state = "saturated" if self.saturated else "blocked"
        return f"{self.binding}-{state}"


class UsageTimeline:
    """Per-node step tracks plus the capacities to judge them against."""

    def __init__(
        self,
        t0: float,
        t1: float,
        tracks: Dict[str, Dict[str, StepTrack]],
        capacities: Dict[str, Dict[str, Any]],
    ) -> None:
        self.t0 = t0
        self.t1 = t1
        #: track name -> node -> step function.
        self.tracks = tracks
        #: node -> recorded spec fields (``cores``,
        #: ``object_store_bytes``, ...) from the run summary.
        self.capacities = capacities

    @property
    def nodes(self) -> List[str]:
        out = set()
        for per_node in self.tracks.values():
            out.update(per_node)
        return sorted(out)

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    def track(self, name: str, node: str) -> StepTrack:
        return self.tracks.get(name, {}).get(node) or StepTrack()

    def busy_fraction(
        self,
        name: str,
        node: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> float:
        """Fraction of the window the node's track was positive."""
        start = self.t0 if start is None else start
        end = self.t1 if end is None else end
        if end <= start:
            return 0.0
        return self.track(name, node).busy_time(start, end) / (end - start)

    def cluster_utilization(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Cluster-wide utilization per resource over a window.

        ``cpu`` is executing slots over total cores (when the cluster
        spec was recorded; mean busy fraction otherwise); ``disk`` and
        ``nic`` are mean per-node busy fractions; ``store`` is the
        occupancy-weighted fill fraction.
        """
        start = self.t0 if start is None else start
        end = self.t1 if end is None else end
        width = end - start
        out = {name: 0.0 for name in ("cpu", "disk", "nic", "store")}
        nodes = self.nodes
        if width <= 0 or not nodes:
            return out
        total_cores = sum(
            int(self.capacities.get(n, {}).get("cores", 0)) for n in nodes
        )
        if total_cores > 0:
            busy_slot_s = sum(
                self.track("cpu", n).integral(start, end) for n in nodes
            )
            out["cpu"] = min(1.0, busy_slot_s / (total_cores * width))
        else:
            out["cpu"] = sum(
                self.busy_fraction("cpu", n, start, end) for n in nodes
            ) / len(nodes)
        for name in ("disk", "nic"):
            out[name] = sum(
                self.busy_fraction(name, n, start, end) for n in nodes
            ) / len(nodes)
        total_store = sum(
            int(self.capacities.get(n, {}).get("object_store_bytes", 0))
            for n in nodes
        )
        if total_store > 0:
            byte_s = sum(
                self.track("store", n).integral(start, end) for n in nodes
            )
            out["store"] = min(1.0, byte_s / (total_store * width))
        return out

    def intervals(self, bins: int = 40) -> List[UsageInterval]:
        """Slice the run into equal bins labeled with the binding
        resource; adjacent bins with the same label are merged."""
        if self.makespan <= 0 or bins <= 0:
            return []
        width = self.makespan / bins
        raw: List[UsageInterval] = []
        for i in range(bins):
            start = self.t0 + i * width
            end = self.t1 if i == bins - 1 else start + width
            util = self.cluster_utilization(start, end)
            active = any(
                self.track("cpu", n).busy_time(start, end) > 0
                or self.track("disk", n).busy_time(start, end) > 0
                or self.track("nic", n).busy_time(start, end) > 0
                for n in self.nodes
            )
            if not active:
                binding, saturated = "idle", False
            else:
                binding = max(
                    ("cpu", "disk", "nic"), key=lambda name: util[name]
                )
                saturated = util[binding] >= SATURATION_THRESHOLD
            raw.append(UsageInterval(start, end, binding, saturated, util))
        merged: List[UsageInterval] = []
        for interval in raw:
            if merged and merged[-1].label == interval.label:
                prev = merged[-1]
                w_prev, w_new = prev.duration, interval.duration
                total = w_prev + w_new
                merged[-1] = UsageInterval(
                    prev.start,
                    interval.end,
                    prev.binding,
                    prev.saturated,
                    {
                        k: (prev.utilization[k] * w_prev
                            + interval.utilization[k] * w_new) / total
                        for k in prev.utilization
                    },
                )
            else:
                merged.append(interval)
        return merged

    def binding_seconds(self, bins: int = 40) -> Dict[str, float]:
        """Seconds of the run attributed to each interval label."""
        out: Dict[str, float] = {}
        for interval in self.intervals(bins):
            out[interval.label] = out.get(interval.label, 0.0) + interval.duration
        return out

    def node_table(self) -> ResultTable:
        """Per-node busy fractions and store peaks."""
        table = ResultTable(
            "Per-node usage",
            [
                "node",
                "cpu_busy_frac",
                "cpu_slot_util",
                "disk_busy_frac",
                "nic_busy_frac",
                "store_peak_frac",
            ],
        )
        for node in self.nodes:
            cores = int(self.capacities.get(node, {}).get("cores", 0))
            slot_util = 0.0
            if cores > 0 and self.makespan > 0:
                slot_util = self.track("cpu", node).integral(
                    self.t0, self.t1
                ) / (cores * self.makespan)
            store_cap = int(
                self.capacities.get(node, {}).get("object_store_bytes", 0)
            )
            peak = self.track("store", node).max_value()
            table.add_row(
                node=node,
                cpu_busy_frac=self.busy_fraction("cpu", node),
                cpu_slot_util=slot_util,
                disk_busy_frac=self.busy_fraction("disk", node),
                nic_busy_frac=self.busy_fraction("nic", node),
                store_peak_frac=peak / store_cap if store_cap else 0.0,
            )
        return table

    def render(self, bins: int = 40) -> str:
        parts = [
            f"Usage over [{self.t0:.3f}s, {self.t1:.3f}s] "
            f"({self.makespan:.3f}s, {len(self.nodes)} nodes)",
            "",
            self.node_table().render(),
            "",
            "Binding resource over time",
        ]
        for interval in self.intervals(bins):
            util = ", ".join(
                f"{k}={v:.0%}" for k, v in sorted(interval.utilization.items())
            )
            parts.append(
                f"  {interval.start:9.3f}s .. {interval.end:9.3f}s  "
                f"{interval.label:<16} ({util})"
            )
        totals = self.binding_seconds(bins)
        if totals:
            top = max(totals, key=lambda k: totals[k])
            parts.append("")
            parts.append(
                f"dominant state: {top} "
                f"({totals[top]:.3f}s = {totals[top] / self.makespan:.0%})"
            )
        return "\n".join(parts)


def _transfer_bytes(
    end_event: ObsEvent, begin_index: Dict[int, ObsEvent]
) -> float:
    begin = (
        begin_index.get(end_event.cause)
        if end_event.cause is not None
        else None
    )
    return float(begin.attrs.get("bytes", 0.0)) if begin is not None else 0.0


def derive_usage(
    events: Sequence[ObsEvent],
    spans: Optional[List[Span]] = None,
    cluster: Optional[Dict[str, Dict[str, Any]]] = None,
) -> UsageTimeline:
    """Build the per-node usage timeline for a recorded run.

    ``cluster`` overrides the capacities; by default they come from the
    trailing ``run.summary`` event (recorded by ``record_run``).
    """
    if spans is None:
        spans = derive_spans(events)
    capacities: Dict[str, Dict[str, Any]] = dict(cluster or {})
    if not capacities:
        for event in reversed(events):
            if event.kind == "run.summary":
                capacities = dict(event.attrs.get("cluster", {}))
                break
    t0 = events[0].ts if events else 0.0
    t1 = max(
        max((e.ts for e in events), default=0.0),
        max((s.end for s in spans), default=0.0),
    )
    tracks: Dict[str, Dict[str, StepTrack]] = {
        name: {} for name in TRACKS
    }

    def get(name: str, node: str) -> StepTrack:
        track = tracks[name].get(node)
        if track is None:
            track = tracks[name][node] = StepTrack()
        return track

    # Concurrency tracks come from spans: collect +1/-1 deltas and
    # replay them in time order per (track, node).
    deltas: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}

    def bump(name: str, node: Optional[str], start: float, end: float) -> None:
        if node is None or end <= start:
            return
        deltas.setdefault((name, node), []).append((start, +1.0))
        deltas.setdefault((name, node), []).append((end, -1.0))

    for span in spans:
        if span.cat == "task":
            bump("cpu", span.node, span.start, span.end)
        elif span.cat in ("spill", "disk"):
            bump("disk", span.node, span.start, span.end)
        elif span.cat == "transfer":
            bump("nic", span.node, span.start, span.end)
            src = span.attrs.get("src")
            if src:
                bump("nic", str(src), span.start, span.end)
    for (name, node), changes in deltas.items():
        changes.sort(key=lambda c: c[0])
        track = get(name, node)
        value = 0.0
        for ts, delta in changes:
            value += delta
            track.set(ts, max(0.0, value))

    # Byte/queue tracks come from the raw events, replayed in order.
    begin_index = {
        e.seq: e
        for e in events
        if e.kind in ("transfer.begin", "spill.write.begin",
                      "spill.restore.begin")
    }
    #: obj -> node -> resident bytes (for evict accounting).
    residency: Dict[str, Dict[str, float]] = {}
    #: node -> objs whose allocation is parked (for queue depth).
    parked: Dict[str, List[str]] = {}

    def store_cap(node: str) -> Optional[float]:
        cap = capacities.get(node, {}).get("object_store_bytes")
        return float(cap) if cap else None

    def store_add(node: Optional[str], obj: Optional[str],
                  size: float, ts: float) -> None:
        if node is None or size <= 0:
            return
        if obj is not None:
            residency.setdefault(obj, {})[node] = size
        # Capped at the recorded capacity: restores feeding remote
        # streams never actually re-enter the store, so the raw sum of
        # adds overshoots -- occupancy is "how full", not "how much
        # traffic".
        get("store", node).add(ts, size, ceiling=store_cap(node))

    for event in events:
        if event.kind == "object.create":
            store_add(event.node, event.obj, float(event.attrs.get("bytes", 0.0)), event.ts)
            if event.node in parked and event.obj in parked[event.node]:
                parked[event.node].remove(event.obj)
                get("spill_queue", event.node).add(event.ts, -1.0)
        elif event.kind == "transfer.end" and event.attrs.get("ok", True):
            store_add(event.node, event.obj, _transfer_bytes(event, begin_index), event.ts)
        elif event.kind == "spill.restore.end":
            store_add(event.node, event.obj, _transfer_bytes(event, begin_index), event.ts)
        elif event.kind == "spill.write.end" and event.node is not None:
            if event.attrs.get("ok", True):
                get("store", event.node).add(
                    event.ts, -_transfer_bytes(event, begin_index)
                )
        elif event.kind == "object.evict" and event.obj is not None:
            for node, size in residency.pop(event.obj, {}).items():
                get("store", node).add(event.ts, -size)
        elif event.kind == "store.pressure" and event.node is not None:
            parked.setdefault(event.node, []).append(event.obj or "")
            get("spill_queue", event.node).add(event.ts, +1.0)
        elif event.kind == "spill.fallback" and event.node is not None:
            if event.node in parked and event.obj in parked[event.node]:
                parked[event.node].remove(event.obj)
                get("spill_queue", event.node).add(event.ts, -1.0)

    return UsageTimeline(t0, t1, tracks, capacities)


#: Counter-row display names (and the value key inside ``args``).
_COUNTER_NAMES = {
    "cpu": ("busy cores", "cores"),
    "disk": ("disk requests in flight", "requests"),
    "nic": ("transfers in flight", "transfers"),
    "store": ("object store bytes", "bytes"),
    "spill_queue": ("spill queue depth", "parked"),
}


def usage_chrome_events(
    events: Sequence[ObsEvent], spans: Optional[List[Span]] = None
) -> List[Dict[str, Any]]:
    """Chrome ``"ph": "C"`` counter rows for every usage track.

    Uses the same node -> pid mapping as the span exporter, so in
    Perfetto each node's counter rows sit directly under its span
    lanes (object-store occupancy next to the tasks that filled it).
    """
    if spans is None:
        spans = derive_spans(events)
    timeline = derive_usage(events, spans=spans)
    pid_of = node_pids(events, spans)
    out: List[Dict[str, Any]] = []
    for name, per_node in timeline.tracks.items():
        display, key = _COUNTER_NAMES[name]
        for node, track in sorted(per_node.items()):
            pid = pid_of.get(node)
            if pid is None:
                continue
            for ts, value in track.points:
                out.append(
                    {
                        "name": display,
                        "cat": "usage",
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "ts": ts * 1e6,
                        "args": {key: value},
                    }
                )
    return out
