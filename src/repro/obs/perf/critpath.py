"""Critical-path extraction and bottleneck attribution from a trace.

Following the blocked-time-analysis methodology (NSDI'15 "Making Sense
of Performance in Data Analytics Frameworks" / Monotasks), the run is
explained as one *chain* of causally linked intervals covering the
whole makespan: starting from the last-finishing span, walk backwards
through the thing that enabled it (the dependency task that finished
last, the transfer that delivered its input, the spill restore that
brought it off disk, ...) until the start of the run.  Every instant of
the makespan lands in exactly one :class:`PathSegment`, so the category
totals sum to the makespan *by construction* -- the property the
acceptance gate checks.

Categories:

- ``compute`` -- a task attempt actually executing;
- ``queue`` -- a submitted task waiting for placement, fair-share
  release, prefetch admission, or a core;
- ``driver`` -- the driver had not yet submitted the next stage (think
  time, ``wait``-loop pacing);
- ``transfer`` -- an inter-node object transfer on the path;
- ``spill_write`` / ``spill_restore`` -- spill I/O (memory-pressure
  writes, restores of spilled inputs);
- ``disk_write`` -- direct ``output_to_disk`` writes (external-sort
  output);
- ``fault_recovery`` -- dead time before a retried attempt (failure
  detection, backoff, rescheduling);
- ``other`` -- unattributed residue (source-side waits of transfers,
  disk-queue delays of spills).

The *disk I/O* figure the paper's HDD-bound regime predicts
(Fig 4a: run time tracks ``4D/B``) is ``spill_write + spill_restore +
disk_write`` -- :data:`DISK_CATEGORIES`.

What-if estimates are first-order: removing a category contracts the
path by exactly the time that category occupies on it.  They are lower
bounds on the truth only when the category is off the *new* critical
path too -- see ``docs/perf.md`` for when this lies to you.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.tables import ResultTable
from repro.obs.events import ObsEvent
from repro.obs.trace import Span, derive_spans

#: Attribution categories, in reporting order.
CATEGORIES = (
    "compute",
    "queue",
    "driver",
    "transfer",
    "spill_write",
    "spill_restore",
    "disk_write",
    "fault_recovery",
    "other",
)

#: The categories that together form "disk I/O" (the paper's binding
#: resource on HDD clusters, Fig 4a / §5.1.1).
DISK_CATEGORIES = ("spill_write", "spill_restore", "disk_write")

_EPS = 1e-9

#: Span categories that participate in the path (job spans are
#: summaries of the same time, not extra work).
_ELEMENT_CATS = ("task", "transfer", "spill", "disk")


def _element_category(span: Span) -> str:
    """The attribution category of a path element's own interval."""
    if span.cat == "task":
        return "compute"
    if span.cat == "transfer":
        return "transfer"
    if span.cat == "disk":
        return "disk_write"
    # spill spans carry their direction in the name.
    return "spill_restore" if span.name == "spill.restore" else "spill_write"


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path, attributed to a category."""

    start: float
    end: float
    category: str
    #: What occupies the interval: a task function, ``transfer``,
    #: ``spill.write``... or the wait description for gap segments.
    detail: str = ""
    node: Optional[str] = None
    task: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "start": self.start,
            "end": self.end,
            "category": self.category,
            "detail": self.detail,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.task is not None:
            out["task"] = self.task
        return out


@dataclass
class CriticalPath:
    """The attributed chain covering a run's makespan."""

    t0: float
    t1: float
    segments: List[PathSegment] = field(default_factory=list)
    #: Number of distinct spans the chain walked through.
    chain_length: int = 0

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    def category_times(self) -> Dict[str, float]:
        """Seconds of critical-path time per category (all categories
        present, zero-filled)."""
        out = {cat: 0.0 for cat in CATEGORIES}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return out

    def disk_seconds(self) -> float:
        """Critical-path time spent on disk I/O (spill + direct writes)."""
        times = self.category_times()
        return sum(times[cat] for cat in DISK_CATEGORIES)

    def coverage_error(self) -> float:
        """|sum of segments - makespan| / makespan (0 by construction;
        reported so the CLI can prove the invariant on real traces)."""
        if self.makespan <= 0:
            return 0.0
        total = sum(seg.duration for seg in self.segments)
        return abs(total - self.makespan) / self.makespan

    def what_if(self) -> Dict[str, Dict[str, float]]:
        """First-order what-if per category: estimated makespan and
        shrink fraction if that category's path time were free."""
        out: Dict[str, Dict[str, float]] = {}
        times = self.category_times()
        for cat in CATEGORIES:
            saved = times[cat]
            estimated = self.makespan - saved
            out[cat] = {
                "seconds_saved": saved,
                "estimated_makespan": estimated,
                "shrink_pct": (
                    100.0 * saved / self.makespan if self.makespan > 0 else 0.0
                ),
            }
        return out

    def table(self) -> ResultTable:
        """Category breakdown as a printable table."""
        table = ResultTable(
            "Critical-path attribution",
            ["category", "seconds", "share_pct", "whatif_shrink_pct"],
        )
        times = self.category_times()
        whatif = self.what_if()
        for cat in CATEGORIES:
            if times[cat] <= 0:
                continue
            table.add_row(
                category=cat,
                seconds=times[cat],
                share_pct=(
                    100.0 * times[cat] / self.makespan
                    if self.makespan > 0
                    else 0.0
                ),
                whatif_shrink_pct=whatif[cat]["shrink_pct"],
            )
        return table

    def top_segments(self, k: int = 10) -> List[PathSegment]:
        """The ``k`` longest individual segments on the path."""
        return sorted(self.segments, key=lambda s: -s.duration)[:k]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (embedded into ``BENCH_*.json`` by
        the benchmark harness so ``obs diff`` can attribute deltas)."""
        return {
            "makespan": self.makespan,
            "t0": self.t0,
            "t1": self.t1,
            "chain_length": self.chain_length,
            "categories": self.category_times(),
        }

    def render(self, top_k: int = 8) -> str:
        """The full textual report."""
        parts = [
            f"Critical path: makespan {self.makespan:.3f}s "
            f"({self.chain_length} spans on the chain, "
            f"coverage error {100 * self.coverage_error():.2f}%)",
            "",
            self.table().render(),
        ]
        disk = self.disk_seconds()
        if self.makespan > 0:
            parts.append(
                f"disk I/O (spill_write + spill_restore + disk_write): "
                f"{disk:.3f}s = {100 * disk / self.makespan:.1f}% of the path"
            )
        top = [s for s in self.top_segments(top_k) if s.duration > 0]
        if top:
            parts.append("")
            parts.append("Longest segments")
            for seg in top:
                where = f" on {seg.node}" if seg.node else ""
                parts.append(
                    f"  {seg.duration:9.3f}s  [{seg.category:<14}] "
                    f"{seg.detail}{where}  t={seg.start:.3f}"
                )
        return "\n".join(parts)


# -- internal: interval coverage ---------------------------------------------


def _cover(
    window: Tuple[float, float],
    candidates: Sequence[Tuple[float, float, str, str, Optional[str], Optional[str]]],
) -> Tuple[List[PathSegment], List[Tuple[float, float]]]:
    """Clip prioritized candidate intervals into a window.

    ``candidates`` are ``(start, end, category, detail, node, task)``
    tuples in priority order -- earlier candidates claim overlapping
    time first.  Returns the claimed segments plus the uncovered
    remainder of the window.
    """
    free = [window]
    segments: List[PathSegment] = []
    for start, end, category, detail, node, task in candidates:
        next_free: List[Tuple[float, float]] = []
        for f_start, f_end in free:
            c_start, c_end = max(start, f_start), min(end, f_end)
            if c_end - c_start > _EPS:
                segments.append(
                    PathSegment(c_start, c_end, category, detail, node, task)
                )
                if c_start - f_start > _EPS:
                    next_free.append((f_start, c_start))
                if f_end - c_end > _EPS:
                    next_free.append((c_end, f_end))
            else:
                next_free.append((f_start, f_end))
        free = next_free
    return segments, free


class _Index:
    """Event/span lookups shared by the walk."""

    def __init__(self, events: Sequence[ObsEvent], spans: List[Span]) -> None:
        self.elements = [s for s in spans if s.cat in _ELEMENT_CATS]
        self.creator_of: Dict[str, str] = {}
        self.deps_of: Dict[str, List[str]] = {}
        self.returns_of: Dict[str, List[str]] = {}
        self.submit_ts: Dict[str, float] = {}
        self.retry_seqs = set()
        for event in events:
            if event.kind == "task.submit" and event.task is not None:
                self.submit_ts.setdefault(event.task, event.ts)
                self.deps_of[event.task] = list(event.attrs.get("deps", ()))
                returns = [str(o) for o in event.attrs.get("returns", ())]
                self.returns_of[event.task] = returns
                for obj in returns:
                    self.creator_of[obj] = event.task
            elif event.kind == "object.create" and event.obj and event.task:
                self.creator_of.setdefault(event.obj, event.task)
            elif event.kind == "task.retry":
                self.retry_seqs.add(event.seq)

        self.task_spans: Dict[str, List[Span]] = {}
        self.transfers_to: Dict[Tuple[str, str], List[Span]] = {}
        self.restores_on: Dict[Tuple[str, str], List[Span]] = {}
        self.disk_writes: Dict[str, List[Span]] = {}
        self.spill_writes_on: Dict[str, List[Span]] = {}
        #: Every disk request per node (spill writes/restores + direct
        #: writes): the FIFO disk's queue, in which the previous
        #: request's completion is what releases the next.
        self.disk_ops_on: Dict[str, List[Span]] = {}
        for span in self.elements:
            if span.cat == "task" and span.task:
                self.task_spans.setdefault(span.task, []).append(span)
            elif span.cat == "transfer" and span.obj and span.node:
                self.transfers_to.setdefault(
                    (span.obj, span.node), []
                ).append(span)
            elif span.cat == "spill" and span.name == "spill.restore":
                if span.obj and span.node:
                    self.restores_on.setdefault(
                        (span.obj, span.node), []
                    ).append(span)
            elif span.cat == "spill" and span.node:
                self.spill_writes_on.setdefault(span.node, []).append(span)
            elif span.cat == "disk" and span.obj:
                self.disk_writes.setdefault(span.obj, []).append(span)
            if span.cat in ("spill", "disk") and span.node:
                self.disk_ops_on.setdefault(span.node, []).append(span)
        #: Every element sorted by end time, for the generic fallback
        #: predecessor lookup.
        self.by_end = sorted(self.elements, key=lambda s: (s.end, s.start))
        self._ends = [s.end for s in self.by_end]

    def latest_ending_before(
        self, t: float, exclude: Span
    ) -> Optional[Span]:
        """The latest-ending element with ``end <= t`` (fallback pred)."""
        import bisect

        hi = bisect.bisect_right(self._ends, t + _EPS)
        for i in range(hi - 1, -1, -1):
            span = self.by_end[i]
            if span is not exclude:
                return span
        return None

    def best(self, spans: Sequence[Span], before: float) -> Optional[Span]:
        """The latest-ending span finishing at or before ``before``."""
        best: Optional[Span] = None
        for span in spans:
            if span.end <= before + _EPS and (
                best is None or span.end > best.end
            ):
                best = span
        return best

    def dep_io_candidates(
        self, span: Span
    ) -> List[Tuple[float, float, str, str, Optional[str], Optional[str]]]:
        """Transfers/restores that delivered this task's inputs to its
        node -- coverage candidates for both its gap and its interior."""
        out = []
        deps = self.deps_of.get(span.task or "", [])
        for dep in deps:
            for t in self.transfers_to.get((dep, span.node or ""), []):
                out.append(
                    (t.start, t.end, "transfer", f"fetch {dep}", t.node, span.task)
                )
            for r in self.restores_on.get((dep, span.node or ""), []):
                out.append(
                    (r.start, r.end, "spill_restore", f"restore {dep}",
                     r.node, span.task)
                )
        return out


def _decompose_task_interval(span: Span, index: _Index) -> List[PathSegment]:
    """A task attempt's own interval: interior I/O first, rest compute.

    Inside the attempt window, disk-resident arguments stream in
    (restores), outputs persist (``output_to_disk`` writes), and
    memory-pressure spill writes on the node block its allocations; what
    remains is execution.  Same-node spill writes are an approximation:
    the FIFO disk serves one request at a time, so any overlapping write
    *is* occupying the device this task's output or allocation waits on,
    but it may have been triggered by a neighbour.
    """
    candidates = []
    for obj in index.returns_of.get(span.task or "", []):
        for w in index.disk_writes.get(obj, []):
            if w.node == span.node:
                candidates.append(
                    (w.start, w.end, "disk_write", f"write {obj}",
                     w.node, span.task)
                )
    candidates.extend(index.dep_io_candidates(span))
    for w in index.spill_writes_on.get(span.node or "", []):
        candidates.append(
            (w.start, w.end, "spill_write", "spill under pressure",
             w.node, span.task)
        )
    covered, free = _cover((span.start, span.end), candidates)
    for f_start, f_end in free:
        covered.append(
            PathSegment(
                f_start, f_end, "compute", span.name, span.node, span.task
            )
        )
    return covered


def _decompose_gap(
    span: Span, lo: float, hi: float, index: _Index
) -> List[PathSegment]:
    """The wait between a predecessor's end and ``span``'s start."""
    if hi - lo <= _EPS:
        return []
    candidates = []
    if span.cat == "task":
        candidates = index.dep_io_candidates(span)
    elif span.cat == "transfer" and span.obj:
        # The source may have restored the object off its disk first.
        src = str(span.attrs.get("src", ""))
        for r in index.restores_on.get((span.obj, src), []):
            candidates.append(
                (r.start, r.end, "spill_restore", f"restore {span.obj}",
                 r.node, None)
            )
    covered, free = _cover((lo, hi), candidates)
    for f_start, f_end in free:
        if span.cat == "task":
            retried = (
                span.parent in index.retry_seqs
                or int(span.attrs.get("attempt", 1)) > 1
            )
            if retried:
                covered.append(
                    PathSegment(
                        f_start, f_end, "fault_recovery",
                        f"recovering {span.task}", span.node, span.task,
                    )
                )
                continue
            submit = index.submit_ts.get(span.task or "")
            if submit is None:
                covered.append(
                    PathSegment(f_start, f_end, "queue",
                                f"waiting {span.task}", span.node, span.task)
                )
                continue
            if f_start < submit - _EPS:
                covered.append(
                    PathSegment(
                        f_start, min(submit, f_end), "driver",
                        "driver not yet submitted", span.node, span.task,
                    )
                )
            if f_end > submit + _EPS:
                covered.append(
                    PathSegment(
                        max(submit, f_start), f_end, "queue",
                        f"queued {span.task}", span.node, span.task,
                    )
                )
        else:
            covered.append(
                PathSegment(
                    f_start, f_end, "other",
                    f"waiting for {span.name}", span.node, span.task,
                )
            )
    return covered


def _find_predecessor(span: Span, index: _Index) -> Optional[Span]:
    """The element whose completion enabled ``span`` (latest-ending).

    Specific causal candidates (lineage parents, input transfers and
    restores, the previous request in the node's FIFO disk queue)
    compete with the generic latest-ending-element fallback: the walk
    always takes the *latest* finisher at or before ``span`` starts, so
    the unexplained gap stays minimal and the time lands on whatever
    the cluster was genuinely doing.
    """
    candidates: List[Span] = []
    if span.cat in ("spill", "disk") and span.node:
        best = index.best(index.disk_ops_on.get(span.node, []), span.start)
        if best is not None and best is not span:
            candidates.append(best)
    if span.cat == "task":
        for parent in _lineage_parents_of(span, index):
            best = index.best(index.task_spans.get(parent, []), span.start)
            if best is not None:
                candidates.append(best)
        for dep in index.deps_of.get(span.task or "", []):
            best = index.best(
                index.transfers_to.get((dep, span.node or ""), []), span.start
            )
            if best is not None:
                candidates.append(best)
            best = index.best(
                index.restores_on.get((dep, span.node or ""), []), span.start
            )
            if best is not None:
                candidates.append(best)
    elif span.obj is not None:
        creator = index.creator_of.get(span.obj)
        if creator is not None:
            best = index.best(index.task_spans.get(creator, []), span.start)
            if best is not None:
                candidates.append(best)
        if span.cat == "transfer":
            src = str(span.attrs.get("src", ""))
            best = index.best(
                index.restores_on.get((span.obj, src), []), span.start
            )
            if best is not None:
                candidates.append(best)
    fallback = index.latest_ending_before(span.start, exclude=span)
    if fallback is not None:
        candidates.append(fallback)
    if candidates:
        return max(candidates, key=lambda s: (s.end, s.start))
    return None


def _lineage_parents_of(span: Span, index: _Index) -> List[str]:
    parents = span.attrs.get("parents")
    if parents:
        return list(parents)
    out = set()
    for dep in index.deps_of.get(span.task or "", []):
        creator = index.creator_of.get(dep)
        if creator is not None:
            out.add(creator)
    return sorted(out)


def critical_path(
    events: Sequence[ObsEvent], spans: Optional[List[Span]] = None
) -> CriticalPath:
    """Extract and attribute the critical path of a recorded run.

    The makespan is the window from the first recorded event to the
    last-finishing span; the returned segments partition it exactly.
    """
    if spans is None:
        spans = derive_spans(events)
    index = _Index(events, spans)
    if not index.elements or not events:
        return CriticalPath(t0=0.0, t1=0.0)
    t0 = events[0].ts
    sink = max(index.elements, key=lambda s: (s.end, s.start))
    t1 = sink.end
    segments: List[PathSegment] = []
    cur: Optional[Span] = sink
    chain_length = 0
    # The walk strictly moves the frontier backwards (a predecessor ends
    # at or before the current span starts); the guard bounds pathological
    # traces of zero-length spans.
    for _guard in range(len(index.elements) * 4 + 64):
        if cur is None:
            break
        chain_length += 1
        if cur.cat == "task":
            segments.extend(_decompose_task_interval(cur, index))
        elif cur.duration > _EPS:
            segments.append(
                PathSegment(
                    cur.start, cur.end, _element_category(cur),
                    cur.name if not cur.obj else f"{cur.name} {cur.obj}",
                    cur.node, cur.task,
                )
            )
        if cur.start <= t0 + _EPS:
            cur = None
            break
        pred = _find_predecessor(cur, index)
        if pred is not None and pred.end > cur.start + _EPS:
            # A malformed candidate that does not precede us: fall back
            # to the global latest-ending element strictly before.
            pred = index.latest_ending_before(cur.start, exclude=cur)
            if pred is not None and pred.end > cur.start + _EPS:
                pred = None
        gap_lo = pred.end if pred is not None else t0
        segments.extend(_decompose_gap(cur, min(gap_lo, cur.start), cur.start, index))
        cur = pred
    segments = [s for s in segments if s.duration > _EPS]
    segments.sort(key=lambda s: (s.start, s.end))
    return CriticalPath(t0=t0, t1=t1, segments=segments, chain_length=chain_length)
