"""Performance analysis on top of the observability plane.

The event bus (PR 3) records *what happened*; this package explains
*where the time went* and *whether a change made things slower* -- the
three questions the paper's comparative claims rest on (Figs. 4, 7;
§5: Exoshuffle matches monolithic shuffles because specific resources
stop being the binding constraint):

- :mod:`repro.obs.perf.critpath` -- reconstructs the weighted
  task/transfer/spill DAG from the derived spans, extracts the critical
  path, attributes its time to categories (compute, queue wait,
  transfer, spill write/restore, direct disk writes, fault recovery),
  and computes what-if estimates ("if spilling were free the run
  shrinks N%") in the NSDI'15 blocked-time-analysis tradition;
- :mod:`repro.obs.perf.usage` -- per-node busy timelines for CPU
  slots, disk, NIC, and object-store occupancy, sliced into intervals
  labeled with their *binding resource*, exported as Chrome-trace
  counter tracks next to the span lanes;
- :mod:`repro.obs.perf.diff` -- baseline/regression diffing of
  ``BENCH_*.json`` result files with per-metric tolerance bands,
  config-fingerprint refusal, and critical-path attribution of any
  regression (the CI perf gate behind ``python -m repro.obs diff``).

See ``docs/perf.md`` for the methodology and its caveats.
"""

from repro.obs.perf.critpath import (
    CATEGORIES,
    DISK_CATEGORIES,
    CriticalPath,
    PathSegment,
    critical_path,
)
from repro.obs.perf.diff import (
    BenchMismatchError,
    DiffReport,
    MetricDiff,
    compare_benches,
    load_bench,
)
from repro.obs.perf.usage import (
    UsageInterval,
    UsageTimeline,
    derive_usage,
    usage_chrome_events,
)

__all__ = [
    "CATEGORIES",
    "DISK_CATEGORIES",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "UsageInterval",
    "UsageTimeline",
    "derive_usage",
    "usage_chrome_events",
    "BenchMismatchError",
    "DiffReport",
    "MetricDiff",
    "compare_benches",
    "load_bench",
]
