"""Baseline/regression diffing of ``BENCH_*.json`` result files.

The simulated runtime is deterministic, so the *simulated* metrics in a
benchmark result (figure-table values, simulated makespan, byte/task
counters) are exactly reproducible -- any drift is a code change, not
noise.  Host wall time is the one noisy field and is ignored.  A diff

1. **refuses apples-to-oranges comparisons**: both files carry a config
   fingerprint (bench name, scale factor, cluster shape) stamped by the
   harness; a mismatch raises :class:`BenchMismatchError` instead of
   producing a confidently wrong verdict;
2. compares each metric within a tolerance band (relative by default,
   per-metric overrides supported);
3. **attributes** any regression: when both files embed a
   critical-path summary, the per-category deltas (compute, transfer,
   spill I/O, queue...) say *where* the extra time went.

The CI perf gate is ``python -m repro.obs diff --gate`` over the
committed ``benchmarks/baselines/``; refresh baselines deliberately
with ``python -m repro.obs bless``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.metrics.tables import ResultTable

#: Default relative tolerance band. The simulation is deterministic, so
#: this is headroom for intentional small tuning, not for noise.
DEFAULT_REL_TOLERANCE = 0.10

#: Top-level fields that never participate in a comparison and are
#: stripped from blessed baselines (pure host-side bookkeeping: write
#: stamps and export paths).  ``wall_time_s`` is deliberately *not*
#: here anymore: it is committed into baselines and reported on the
#: non-gating perf-trajectory track, so wall-clock movement is visible
#: without ever failing the behavior gate.
VOLATILE_FIELDS = ("written_at", "events_jsonl", "chrome_trace", "live_html")

#: (label, extractor-path) pairs for the non-gating perf-trajectory
#: track: host wall time and the self-profile throughput metrics.
#: These never enter :attr:`DiffReport.metrics` and never affect
#: :attr:`DiffReport.ok` -- wall-clock speed is tracked, not gated.
TRAJECTORY_FIELDS = (
    ("wall_time_s", ("wall_time_s",)),
    ("events_per_wall_s", ("profile", "events_per_wall_s")),
    ("sim_s_per_wall_s", ("profile", "sim_s_per_wall_s")),
    ("events_processed", ("profile", "events_processed")),
)


class BenchMismatchError(ValueError):
    """The two results are not comparable (different bench/scale/cluster)."""


def load_bench(path: str) -> Dict[str, Any]:
    """Load one ``BENCH_<name>.json`` payload."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "rows" not in data:
        raise ValueError(f"{path} is not a benchmark result file")
    return data


def strip_volatile(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A copy without host-dependent fields -- what ``bless`` commits
    as a baseline (wall time, export paths, and write stamps differ per
    machine; everything kept is simulation-deterministic)."""
    return {k: v for k, v in payload.items() if k not in VOLATILE_FIELDS}


@dataclass(frozen=True)
class MetricDiff:
    """One metric compared between baseline and candidate."""

    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    tolerance: float
    #: ``ok`` (within band), ``regressed`` (worse beyond band),
    #: ``improved`` (better beyond band -- baselines need a re-bless),
    #: ``missing`` (gone from the candidate), ``new`` (not in baseline).
    status: str

    @property
    def abs_delta(self) -> float:
        if self.baseline is None or self.candidate is None:
            return 0.0
        return self.candidate - self.baseline

    @property
    def rel_delta(self) -> float:
        if self.baseline is None or self.candidate is None:
            return 0.0
        if self.baseline == 0:
            return 0.0 if self.candidate == 0 else float("inf")
        return (self.candidate - self.baseline) / abs(self.baseline)


@dataclass
class DiffReport:
    """The comparison verdict plus its evidence."""

    baseline_label: str
    candidate_label: str
    metrics: List[MetricDiff] = field(default_factory=list)
    #: Critical-path category deltas (seconds), present when both
    #: results embed a critpath summary.
    category_deltas: Dict[str, float] = field(default_factory=dict)
    #: The non-gating perf-trajectory rows (wall time / self-profile
    #: throughput movement); informational only -- never part of
    #: :attr:`metrics` and never consulted by :attr:`ok`.
    trajectory: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDiff]:
        return [m for m in self.metrics if m.status in ("regressed", "missing")]

    @property
    def improvements(self) -> List[MetricDiff]:
        return [m for m in self.metrics if m.status == "improved"]

    @property
    def ok(self) -> bool:
        """Gate verdict: no metric got worse and none disappeared.
        Improvements pass but are flagged for a baseline refresh."""
        return not self.regressions

    def attribution(self, top_k: int = 3) -> List[str]:
        """Where the extra time went, per the critical-path deltas."""
        if not self.category_deltas:
            return []
        ranked = sorted(
            self.category_deltas.items(), key=lambda kv: -abs(kv[1])
        )
        out = []
        for category, delta in ranked[:top_k]:
            if abs(delta) < 1e-9:
                continue
            direction = "+" if delta >= 0 else "-"
            out.append(
                f"critical-path {category}: {direction}{abs(delta):.3f}s"
            )
        return out

    def trajectory_table(self) -> ResultTable:
        """The wall-time / throughput delta rows (non-gating)."""
        table = ResultTable(
            "Perf trajectory (non-gating)",
            ["metric", "baseline", "candidate", "delta_pct"],
        )
        for row in self.trajectory:
            base, cand, delta = (
                row["baseline"], row["candidate"], row["delta_pct"]
            )
            table.add_row(
                metric=row["metric"],
                baseline=base if base is not None else float("nan"),
                candidate=cand if cand is not None else float("nan"),
                delta_pct=delta if delta is not None else float("nan"),
            )
        return table

    def table(self, only_changed: bool = True) -> ResultTable:
        table = ResultTable(
            f"{self.baseline_label} vs {self.candidate_label}",
            ["metric", "baseline", "candidate", "delta_pct", "tol_pct",
             "status"],
        )
        for m in self.metrics:
            if only_changed and m.status == "ok":
                continue
            table.add_row(
                metric=m.metric,
                baseline=m.baseline if m.baseline is not None else float("nan"),
                candidate=(
                    m.candidate if m.candidate is not None else float("nan")
                ),
                delta_pct=100.0 * m.rel_delta,
                tol_pct=100.0 * m.tolerance,
                status=m.status,
            )
        return table

    def render(self) -> str:
        changed = [m for m in self.metrics if m.status != "ok"]
        parts = [
            f"Compared {len(self.metrics)} metrics: "
            f"{len(self.metrics) - len(changed)} within tolerance, "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved",
        ]
        if changed:
            parts.append("")
            parts.append(self.table().render())
        attribution = self.attribution()
        if self.regressions and attribution:
            parts.append("")
            parts.append("Regression attribution (critical-path deltas):")
            parts.extend("  " + line for line in attribution)
        if self.improvements:
            parts.append("")
            parts.append(
                "Improvements beyond tolerance -- refresh the baseline "
                "with `python -m repro.obs bless` once intended."
            )
        if self.trajectory:
            parts.append("")
            parts.append(self.trajectory_table().render())
            parts.append(
                "(trajectory rows track host speed; they never gate)"
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        parts.append("")
        parts.append("GATE: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_label,
            "candidate": self.candidate_label,
            "ok": self.ok,
            "metrics": [
                {
                    "metric": m.metric,
                    "baseline": m.baseline,
                    "candidate": m.candidate,
                    "rel_delta": m.rel_delta,
                    "tolerance": m.tolerance,
                    "status": m.status,
                }
                for m in self.metrics
            ],
            "category_deltas": self.category_deltas,
            "trajectory": self.trajectory,
            "attribution": self.attribution(),
            "notes": self.notes,
        }


def _check_fingerprints(
    baseline: Dict[str, Any], candidate: Dict[str, Any], notes: List[str]
) -> None:
    base_fp = baseline.get("fingerprint")
    cand_fp = candidate.get("fingerprint")
    if base_fp is None or cand_fp is None:
        missing = "baseline" if base_fp is None else "candidate"
        notes.append(
            f"{missing} carries no config fingerprint (pre-stamping file); "
            f"comparability not verified"
        )
        if baseline.get("name") != candidate.get("name"):
            raise BenchMismatchError(
                f"refusing to compare different benchmarks: "
                f"{baseline.get('name')!r} vs {candidate.get('name')!r}"
            )
        return
    mismatched = {
        key: (base_fp.get(key), cand_fp.get(key))
        for key in set(base_fp) | set(cand_fp)
        if base_fp.get(key) != cand_fp.get(key)
    }
    if mismatched:
        details = "; ".join(
            f"{key}: baseline={b!r} candidate={c!r}"
            for key, (b, c) in sorted(mismatched.items())
        )
        raise BenchMismatchError(
            f"config fingerprints differ, comparison would be "
            f"apples-to-oranges ({details})"
        )


def _row_key(row: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """The identity of a table row: its non-float columns.

    Figure tables key rows by categorical columns (variant, partition
    count, object size, on/off flags -- str/bool/int) and measure float
    columns (seconds, GB written); that convention is what makes rows
    matchable across runs.
    """
    return tuple(
        sorted(
            (k, v)
            for k, v in row.items()
            if isinstance(v, (str, bool)) or (
                isinstance(v, int) and not isinstance(v, bool)
            )
        )
    )


def _row_metrics(payload: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for row in payload.get("rows", []):
        key = ",".join(f"{k}={v}" for k, v in _row_key(row))
        for column, value in sorted(row.items()):
            if isinstance(value, float):
                out[f"{column}[{key}]"] = value
    return out


def _flat_metrics(payload: Dict[str, Any]) -> Dict[str, float]:
    """Every comparable metric in a result payload."""
    out = _row_metrics(payload)
    if isinstance(payload.get("sim_time_s"), (int, float)):
        out["sim_time_s"] = float(payload["sim_time_s"])
    for key, value in sorted(payload.get("counters", {}).items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        out[f"counters.{key}"] = float(value)
    return out


def _trajectory_value(payload: Dict[str, Any], path: Tuple[str, ...]):
    """Walk a dotted path into a result payload; None when absent or
    non-numeric."""
    node: Any = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def trajectory_rows(
    baseline: Dict[str, Any], candidate: Dict[str, Any]
) -> List[Dict[str, Any]]:
    """The non-gating perf-trajectory rows for two result payloads:
    wall time and self-profile throughput, wherever at least one side
    carries the value (see :data:`TRAJECTORY_FIELDS`)."""
    rows: List[Dict[str, Any]] = []
    for label, path in TRAJECTORY_FIELDS:
        base = _trajectory_value(baseline, path)
        cand = _trajectory_value(candidate, path)
        if base is None and cand is None:
            continue
        delta = (
            100.0 * (cand - base) / abs(base)
            if base and cand is not None
            else None
        )
        rows.append({
            "metric": label,
            "baseline": base,
            "candidate": cand,
            "delta_pct": delta,
        })
    return rows


def _tolerance_for(
    metric: str, rel_tolerance: float, tolerances: Optional[Dict[str, float]]
) -> float:
    if tolerances:
        if metric in tolerances:
            return tolerances[metric]
        for prefix, tol in tolerances.items():
            if metric.startswith(prefix):
                return tol
    return rel_tolerance


def compare_benches(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    tolerances: Optional[Dict[str, float]] = None,
    baseline_label: str = "baseline",
    candidate_label: str = "candidate",
) -> DiffReport:
    """Compare two benchmark result payloads.

    Raises :class:`BenchMismatchError` when the config fingerprints
    disagree.  ``tolerances`` maps metric names (or prefixes, e.g.
    ``"counters."``) to relative tolerance overrides.  A metric is
    *regressed* when the candidate exceeds the baseline by more than the
    band -- every stamped metric (seconds, bytes, counters) is a cost,
    so larger is worse; shrinking beyond the band is *improved* and
    passes the gate with a re-bless reminder.
    """
    notes: List[str] = []
    _check_fingerprints(baseline, candidate, notes)
    base_metrics = _flat_metrics(baseline)
    cand_metrics = _flat_metrics(candidate)

    diffs: List[MetricDiff] = []
    for metric in sorted(set(base_metrics) | set(cand_metrics)):
        tol = _tolerance_for(metric, rel_tolerance, tolerances)
        base = base_metrics.get(metric)
        cand = cand_metrics.get(metric)
        if base is None:
            status = "new"
        elif cand is None:
            status = "missing"
        else:
            band = tol * abs(base) if base != 0 else tol
            if cand > base + band:
                status = "regressed"
            elif cand < base - band:
                status = "improved"
            else:
                status = "ok"
        diffs.append(MetricDiff(metric, base, cand, tol, status))

    category_deltas: Dict[str, float] = {}
    base_cats = (baseline.get("critpath") or {}).get("categories")
    cand_cats = (candidate.get("critpath") or {}).get("categories")
    if base_cats and cand_cats:
        for category in sorted(set(base_cats) | set(cand_cats)):
            category_deltas[category] = float(
                cand_cats.get(category, 0.0)
            ) - float(base_cats.get(category, 0.0))

    base_sha = baseline.get("git_sha")
    cand_sha = candidate.get("git_sha")
    if base_sha and cand_sha and base_sha != cand_sha:
        notes.append(f"baseline from {base_sha[:12]}, candidate from "
                     f"{cand_sha[:12]}")

    return DiffReport(
        baseline_label=baseline_label,
        candidate_label=candidate_label,
        metrics=diffs,
        category_deltas=category_deltas,
        trajectory=trajectory_rows(baseline, candidate),
        notes=notes,
    )


def compare_files(
    baseline_path: str,
    candidate_path: str,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    tolerances: Optional[Dict[str, float]] = None,
) -> DiffReport:
    """File-path convenience wrapper around :func:`compare_benches`."""
    return compare_benches(
        load_bench(baseline_path),
        load_bench(candidate_path),
        rel_tolerance=rel_tolerance,
        tolerances=tolerances,
        baseline_label=str(baseline_path),
        candidate_label=str(candidate_path),
    )
