"""Causal span derivation and Chrome-trace export from bus events.

A :class:`Span` is a closed interval derived from the event stream:

- **task attempts** -- ``task.run`` to ``task.finish``/``task.fail``
  (an attempt superseded by a newer one is closed at the interrupting
  fault and marked ``interrupted``); retried attempts carry a
  ``parent`` link to their ``task.retry`` event, whose causal chain
  walks back through ``node.death``/``executor.failure`` to the
  ``chaos.fault`` that killed the previous attempt;
- **transfers** -- ``transfer.begin``/``transfer.end`` pairs;
- **spill I/O** -- ``spill.write.begin``/``.end`` and
  ``spill.restore.begin``/``.end`` pairs;
- **jobs** -- ``job.submit`` to ``job.admit`` (queue wait) and
  ``job.start`` to ``job.done``/``job.fail`` (execution);
- **streaming windows** -- ``stream.window.open``/``.close``
  (event-time accumulation) and ``stream.agg.begin``/``.end`` (the
  round's processing tail until the aggregate is visible).

Task spans additionally carry ``parents``: the creating tasks of their
argument objects, reconstructed from ``task.submit``/``object.create``
events -- the lineage graph, recovered purely from the trace.

``span_chrome_events``/``write_chrome_trace`` render spans as standard
``chrome://tracing`` / Perfetto JSON: one process per node (plus a
``jobs`` pseudo-process), complete events ("ph": "X") packed into
lanes, instant events ("ph": "i") for faults and retries, and flow
events ("ph": "s"/"f") drawing the fault -> retried-attempt arrows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import ObsEvent

#: Event kinds rendered as Chrome instant events.
_INSTANT_KINDS = {
    "chaos.fault",
    "node.death",
    "node.restart",
    "executor.failure",
    "task.retry",
    "spill.fallback",
}

#: Begin/end pairs derived into spans: begin kind -> (end kind, category).
_PAIRED_KINDS = {
    "transfer.begin": ("transfer.end", "transfer"),
    "spill.write.begin": ("spill.write.end", "spill"),
    "spill.restore.begin": ("spill.restore.end", "spill"),
    "disk.write.begin": ("disk.write.end", "disk"),
    # streaming tier: window open -> close (accumulation) and aggregate
    # submission -> visibility (the round's processing tail).
    "stream.window.open": ("stream.window.close", "stream.window"),
    "stream.agg.begin": ("stream.agg.end", "stream.agg"),
}


@dataclass
class Span:
    """One causal interval of work derived from the event stream."""

    name: str
    cat: str
    start: float
    end: float
    node: Optional[str] = None
    job: Optional[str] = None
    task: Optional[str] = None
    obj: Optional[str] = None
    #: ``seq`` of the causing event (e.g. the ``task.retry`` that
    #: re-submitted this attempt), when one exists.
    parent: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in (simulated) seconds."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dict (``None`` fields omitted)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
        }
        for key in ("node", "job", "task", "obj", "parent"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.attrs:
            out["attrs"] = self.attrs
        return out


def lineage_parents(events: Sequence[ObsEvent]) -> Dict[str, List[str]]:
    """task id -> creating tasks of its argument objects, from the trace.

    Reconstructed purely from ``task.submit`` (which records ``deps``)
    and ``object.create`` / ``task.submit`` return registration -- the
    same parent structure the runtime's lineage log holds, so a test can
    assert trace causality matches runtime truth.
    """
    creator_of: Dict[str, str] = {}
    deps_of: Dict[str, List[str]] = {}
    for event in events:
        if event.kind == "task.submit" and event.task is not None:
            deps_of[event.task] = list(event.attrs.get("deps", ()))
            for obj in event.attrs.get("returns", ()):
                creator_of[str(obj)] = event.task
        elif event.kind == "object.create" and event.obj and event.task:
            creator_of[event.obj] = event.task
    return {
        task: sorted({creator_of[d] for d in deps if d in creator_of})
        for task, deps in deps_of.items()
    }


def _close_interrupted(
    open_run: ObsEvent, interrupters: List[ObsEvent], fallback_ts: float
) -> Tuple[float, Optional[int]]:
    """When an attempt was superseded, find the fault that ended it."""
    for event in interrupters:
        if event.ts >= open_run.ts and (
            event.node is None or event.node == open_run.node
        ):
            return event.ts, event.seq
    return fallback_ts, None


def derive_spans(events: Sequence[ObsEvent]) -> List[Span]:
    """All causal spans in the stream, sorted by (start, category)."""
    spans: List[Span] = []
    parents = lineage_parents(events)
    retry_by_attempt: Dict[Tuple[str, int], ObsEvent] = {}
    interrupters = [
        e for e in events
        if e.kind in ("node.death", "executor.failure")
    ]
    for event in events:
        if event.kind == "task.retry" and event.task is not None:
            retry_by_attempt[(event.task, int(event.attrs.get("attempt", 0)))] = event

    # -- task attempt spans --------------------------------------------------
    open_runs: Dict[str, ObsEvent] = {}
    submit_by_task = {
        e.task: e for e in events if e.kind == "task.submit" and e.task
    }

    def close(run: ObsEvent, end_ts: float, status: str,
              interrupted_by: Optional[int] = None) -> None:
        task = run.task or ""
        attempt = int(run.attrs.get("attempt", 1))
        retry = retry_by_attempt.get((task, attempt))
        submit = submit_by_task.get(task)
        spans.append(
            Span(
                name=run.attrs.get("fn", task),
                cat="task",
                start=run.ts,
                end=end_ts,
                node=run.node,
                job=run.job,
                task=task,
                parent=retry.seq if retry is not None else None,
                attrs={
                    "attempt": attempt,
                    "status": status,
                    "parents": parents.get(task, []),
                    **({"queue_delay": run.ts - submit.ts} if submit else {}),
                    **(
                        {"interrupted_by": interrupted_by}
                        if interrupted_by is not None
                        else {}
                    ),
                },
            )
        )

    for event in events:
        if event.kind == "task.run" and event.task is not None:
            prior = open_runs.pop(event.task, None)
            if prior is not None:
                end_ts, fault_seq = _close_interrupted(
                    prior, interrupters, event.ts
                )
                close(prior, min(end_ts, event.ts), "interrupted", fault_seq)
            open_runs[event.task] = event
        elif event.kind in ("task.finish", "task.fail") and event.task:
            run = open_runs.pop(event.task, None)
            if run is not None:
                status = "ok" if event.kind == "task.finish" else "failed"
                close(run, event.ts, status)
    last_ts = events[-1].ts if events else 0.0
    for run in open_runs.values():
        end_ts, fault_seq = _close_interrupted(run, interrupters, last_ts)
        close(run, end_ts, "interrupted", fault_seq)

    # -- begin/end paired spans ----------------------------------------------
    begins: Dict[int, ObsEvent] = {
        e.seq: e for e in events if e.kind in _PAIRED_KINDS
    }
    for event in events:
        if event.cause is None:
            continue
        begin = begins.get(event.cause)
        if begin is None or _PAIRED_KINDS[begin.kind][0] != event.kind:
            continue
        cat = _PAIRED_KINDS[begin.kind][1]
        spans.append(
            Span(
                name=begin.kind.rsplit(".", 1)[0],
                cat=cat,
                start=begin.ts,
                end=event.ts,
                node=begin.node,
                job=begin.job,
                obj=begin.obj,
                parent=begin.seq,
                attrs=dict(begin.attrs),
            )
        )

    # -- job spans ------------------------------------------------------------
    job_marks: Dict[str, Dict[str, ObsEvent]] = {}
    for event in events:
        if event.kind.startswith("job.") and event.job is not None:
            job_marks.setdefault(event.job, {})[event.kind] = event
    for job, marks in job_marks.items():
        submit, admit = marks.get("job.submit"), marks.get("job.admit")
        if submit is not None and admit is not None:
            spans.append(
                Span(
                    name=f"{job} queued",
                    cat="job.wait",
                    start=submit.ts,
                    end=admit.ts,
                    job=job,
                    attrs={"tenant": submit.attrs.get("tenant")},
                )
            )
        start = marks.get("job.start")
        finish = marks.get("job.done") or marks.get("job.fail")
        if start is not None and finish is not None:
            spans.append(
                Span(
                    name=job,
                    cat="job",
                    start=start.ts,
                    end=finish.ts,
                    job=job,
                    parent=start.seq,
                    attrs={
                        "tenant": start.attrs.get("tenant"),
                        "status": "ok" if finish.kind == "job.done" else "failed",
                    },
                )
            )

    spans.sort(key=lambda s: (s.start, s.cat, s.name))
    return spans


def _pack_lanes(spans: List[Span]) -> List[int]:
    """Greedy first-fit packing of overlapping spans into display lanes."""
    lane_free_at: List[float] = []
    lanes: List[int] = []
    for span in spans:
        for lane, free_at in enumerate(lane_free_at):
            if span.start >= free_at - 1e-12:
                lane_free_at[lane] = span.end
                lanes.append(lane)
                break
        else:
            lane_free_at.append(span.end)
            lanes.append(len(lane_free_at) - 1)
    return lanes


def node_pids(
    events: Sequence[ObsEvent], spans: Optional[List[Span]] = None
) -> Dict[str, int]:
    """The stable node -> Chrome process id mapping used by every
    exporter (spans, instants, and the perf layer's counter tracks)."""
    if spans is None:
        spans = derive_spans(events)
    nodes = sorted(
        {s.node for s in spans if s.node is not None}
        | {e.node for e in events if e.kind in _INSTANT_KINDS and e.node}
    )
    return {node: pid for pid, node in enumerate(nodes)}


def span_chrome_events(
    events: Sequence[ObsEvent], spans: Optional[List[Span]] = None
) -> List[Dict[str, Any]]:
    """Chrome trace-event list: spans, instants, and causal flow arrows."""
    if spans is None:
        spans = derive_spans(events)
    index = {e.seq: e for e in events}
    pid_of = node_pids(events, spans)
    nodes = sorted(pid_of)
    jobs_pid = len(nodes)
    out: List[Dict[str, Any]] = []
    for node, pid in pid_of.items():
        out.append(
            {"name": "process_name", "ph": "M", "pid": pid,
             "args": {"name": f"node {node}"}}
        )
    if any(s.cat.startswith("job") for s in spans):
        out.append(
            {"name": "process_name", "ph": "M", "pid": jobs_pid,
             "args": {"name": "jobs"}}
        )

    by_process: Dict[int, List[Span]] = {}
    for span in spans:
        pid = jobs_pid if span.cat.startswith("job") else pid_of.get(span.node or "", jobs_pid)
        by_process.setdefault(pid, []).append(span)
    instant_tid: Dict[int, int] = {}
    for pid, process_spans in sorted(by_process.items()):
        process_spans.sort(key=lambda s: (s.start, s.cat, s.name))
        lanes = _pack_lanes(process_spans)
        instant_tid[pid] = max(lanes, default=-1) + 1
        for span, lane in zip(process_spans, lanes):
            args: Dict[str, Any] = {
                k: v for k, v in span.to_dict().items()
                if k not in ("name", "cat", "start", "end", "node")
            }
            out.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "pid": pid,
                    "tid": lane,
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "args": args,
                }
            )
            # Causal arrow: the retry event (and through it the fault)
            # flows into the re-executed attempt's span.
            if span.cat == "task" and span.parent is not None:
                out.append(
                    {
                        "name": "retry",
                        "cat": "causal",
                        "ph": "f",
                        "bp": "e",
                        "id": span.parent,
                        "pid": pid,
                        "tid": lane,
                        "ts": span.start * 1e6,
                    }
                )
    for event in events:
        if event.kind not in _INSTANT_KINDS:
            continue
        pid = pid_of.get(event.node or "", jobs_pid)
        tid = instant_tid.get(pid, 0)
        out.append(
            {
                "name": event.kind,
                "cat": "fault" if event.kind != "task.retry" else "retry",
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": tid,
                "ts": event.ts * 1e6,
                "args": event.to_dict(),
            }
        )
        if event.kind == "task.retry":
            # Flow start at the retry instant; finishes at the retried
            # attempt's span (same id = the retry event's seq).
            out.append(
                {
                    "name": "retry",
                    "cat": "causal",
                    "ph": "s",
                    "id": event.seq,
                    "pid": pid,
                    "tid": tid,
                    "ts": event.ts * 1e6,
                    "args": {
                        "cause_chain": [
                            e.kind for e in _chain(event, index)
                        ],
                    },
                }
            )
    return out


def _chain(event: ObsEvent, index: Dict[int, ObsEvent]) -> List[ObsEvent]:
    chain = [event]
    seen = {event.seq}
    while chain[-1].cause is not None:
        parent = index.get(chain[-1].cause)
        if parent is None or parent.seq in seen:
            break
        chain.append(parent)
        seen.add(parent.seq)
    return chain


def write_chrome_trace(
    events: Sequence[ObsEvent], path: str, counters: bool = True
) -> int:
    """Write the Chrome trace JSON for an event stream; returns the
    number of complete ("X") events written.

    With ``counters`` (the default), the perf layer's utilization
    counter tracks ("ph": "C": busy CPU slots, disk/NIC activity,
    object-store occupancy, spill-queue depth) ride along next to the
    span lanes, so Perfetto shows memory pressure against the tasks
    that caused it.
    """
    chrome = span_chrome_events(events)
    if counters:
        from repro.obs.perf.usage import usage_chrome_events

        chrome = chrome + usage_chrome_events(events)
    Path(path).write_text(json.dumps({"traceEvents": chrome}))
    return sum(1 for e in chrome if e.get("ph") == "X")


def export_span_jsonl(events: Sequence[ObsEvent], path: str) -> int:
    """Write derived spans as JSON lines; returns the span count."""
    spans = derive_spans(events)
    with Path(path).open("w") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict()) + "\n")
    return len(spans)
