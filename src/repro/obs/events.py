"""The structured event bus: what happened, when, where, and why.

Every subsystem of the data plane publishes :class:`ObsEvent` records
into one per-runtime :class:`EventBus`.  An event is a *typed* fact --
its ``kind`` must come from the registered taxonomy
(:data:`EVENT_KINDS`), so a typo in an instrumentation hook fails fast
instead of silently producing an unreportable stream -- carrying the
simulated timestamp, the four attribution axes (``node``, ``job``,
``task``, ``object``), an optional *causal parent* (the ``seq`` of the
event that made this one happen: a chaos fault causes a node death,
which causes a task retry), and free-form ``attrs``.

Events are recorded in emission order (the simulated clock is
monotonic, so ``ts`` is non-decreasing and ``seq`` is a total order)
and can be streamed to subscribers, exported to JSONL, and re-loaded
for offline reporting (:mod:`repro.obs.report`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional


#: The registered event taxonomy: kind -> one-line description.  The
#: span tracer and the run reporter key off these names; extend with
#: :meth:`EventBus.register_kind` before emitting a new kind.
EVENT_KINDS: Dict[str, str] = {
    # task lifecycle
    "task.submit": "driver submitted a task (attrs: fn, returns, deps)",
    "task.place": "scheduler chose a node for a dependency-ready task",
    "task.park": "fair-share scheduler queued the task behind its job",
    "task.run": "an attempt started executing on a core (attrs: attempt)",
    "task.finish": "an attempt finished successfully",
    "task.fail": "the task failed terminally (attrs: error)",
    "task.retry": "the task was resubmitted (cause: the triggering fault)",
    # policy plane
    "policy.decision": (
        "a data-plane policy chose among candidates "
        "(attrs: policy, decision, stage/candidates/... per kind)"
    ),
    # object lifecycle and movement
    "object.create": "an object became available (attrs: bytes)",
    "object.evict": "refcount hit zero; the object was evicted everywhere",
    "transfer.begin": "an inter-node object transfer started (attrs: src)",
    "transfer.end": "the transfer completed (cause: transfer.begin)",
    # spilling
    "spill.write.begin": "a spill write started (attrs: bytes, objects)",
    "spill.write.end": "the spill write completed (cause: its begin)",
    "spill.restore.begin": "a restore read started (attrs: bytes)",
    "spill.restore.end": "the restore completed (cause: its begin)",
    "spill.fallback": "allocation fell back to the filesystem (attrs: bytes)",
    "store.pressure": "an allocation parked in the store queue (attrs: bytes)",
    # direct disk I/O (output_to_disk task outputs; not spill traffic)
    "disk.write.begin": "a direct output write to disk started (attrs: bytes)",
    "disk.write.end": "the output write completed (cause: its begin)",
    # nodes, executors, drivers
    "node.death": "a node died (cause: the chaos fault, when injected)",
    "node.restart": "a crashed node came back",
    "cluster.membership": (
        "a node's lifecycle changed (attrs: action=join/drain/remove, "
        "active; remove adds casualties/lost_objects; cause: the "
        "triggering fault or autoscale decision)"
    ),
    "executor.failure": "all executors on a node were killed, store intact",
    "driver.spawn": "a subdriver started (attrs: name; job = its label)",
    "driver.finish": "a subdriver returned (attrs: ok)",
    # multi-tenant job control plane
    "job.submit": "a job entered admission (attrs: tenant, name)",
    "job.reject": "admission rejected the job (attrs: error)",
    "job.admit": "the job was admitted and registered for fair sharing",
    "job.start": "the job's subdriver began running",
    "job.done": "the job completed successfully (cause: job.start)",
    "job.fail": "the job failed (cause: job.start; attrs: error)",
    "job.cancel": "a queued job was cancelled",
    # streaming tier (repro.streaming; absent from batch-only runs)
    "stream.window.open": (
        "a tumbling window received its first record "
        "(attrs: window, start, end)"
    ),
    "stream.window.close": (
        "the watermark passed the window's end and its repartition "
        "round was submitted (cause: its open; attrs: records, bytes)"
    ),
    "stream.agg.begin": (
        "the window's per-round aggregate task was submitted "
        "(cause: the window close)"
    ),
    "stream.agg.end": (
        "the window's aggregate became visible -- records are now "
        "queryable (cause: its begin; attrs: latency percentiles)"
    ),
    "stream.backpressure": (
        "the streaming job throttled its source (attrs: reason="
        "inflight_windows/allocation_backlog, inflight, backlog_bytes)"
    ),
    "stream.source.close": (
        "an unbounded source reached its horizon and closed "
        "(attrs: records, watermark)"
    ),
    # plan layer (repro.plan; emitted only with re-planning enabled)
    "plan.lower": (
        "an abstract shuffle expression was lowered to a concrete "
        "variant (attrs: variant, decided_by, rule, est_seconds, shape, "
        "ranking)"
    ),
    "plan.replan": (
        "the remaining plan was re-lowered mid-job (cause: the original "
        "plan.lower or previous replan; attrs: boundary, "
        "variant_before/after, est_before/after, gain, or the adjusted "
        "param for bound changes)"
    ),
    # chaos
    "chaos.fault": "the injector fired a fault (attrs: fault)",
    # synthetic
    "run.summary": "trailing export record: counters and per-job buckets",
}


@dataclass(frozen=True)
class ObsEvent:
    """One timestamped, attributed, causally linked fact about a run."""

    seq: int
    ts: float
    kind: str
    node: Optional[str] = None
    job: Optional[str] = None
    task: Optional[str] = None
    obj: Optional[str] = None
    cause: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dict (``None`` axes omitted)."""
        out: Dict[str, Any] = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        for key in ("node", "job", "task", "obj", "cause"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObsEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            kind=str(data["kind"]),
            node=data.get("node"),
            job=data.get("job"),
            task=data.get("task"),
            obj=data.get("obj"),
            cause=data.get("cause"),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:
        axes = ", ".join(
            f"{k}={getattr(self, k)}"
            for k in ("node", "job", "task", "obj", "cause")
            if getattr(self, k) is not None
        )
        return f"<ObsEvent #{self.seq} t={self.ts:g} {self.kind} {axes}>"


class EventBus:
    """Collects and fans out :class:`ObsEvent` records for one run.

    ``clock`` supplies timestamps (the runtime passes its simulated
    clock).  Emission is cheap -- an object append plus subscriber
    callbacks -- and can be switched off wholesale with ``enabled``
    for runs that want zero observability overhead.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self.events: List[ObsEvent] = []
        self._kinds = dict(EVENT_KINDS)
        self._subscribers: List[Callable[[ObsEvent], None]] = []
        self._seq = 0

    # -- taxonomy -----------------------------------------------------------
    def register_kind(self, kind: str, description: str) -> None:
        """Extend the taxonomy (idempotent); required before emitting a
        kind absent from :data:`EVENT_KINDS`."""
        self._kinds[kind] = description

    def known_kinds(self) -> Dict[str, str]:
        """The taxonomy this bus accepts (kind -> description)."""
        return dict(self._kinds)

    # -- emission -----------------------------------------------------------
    def emit(
        self,
        kind: str,
        *,
        node: Any = None,
        job: Optional[str] = None,
        task: Any = None,
        obj: Any = None,
        cause: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[ObsEvent]:
        """Publish one event; returns it (so its ``seq`` can become a
        later event's ``cause``), or ``None`` when the bus is disabled.

        ``node``/``task``/``obj`` accept the typed ids and are
        stringified for stable JSON round-trips.
        """
        if not self.enabled:
            return None
        if kind not in self._kinds:
            raise ValueError(
                f"unknown event kind {kind!r}; register it or use one of "
                f"the taxonomy in repro.obs.events.EVENT_KINDS"
            )
        event = ObsEvent(
            seq=self._seq,
            ts=float(self.clock()),
            kind=kind,
            node=None if node is None else str(node),
            job=job,
            task=None if task is None else str(task),
            obj=None if obj is None else str(obj),
            cause=cause,
            attrs=attrs,
        )
        self._seq += 1
        self.events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, fn: Callable[[ObsEvent], None]) -> Callable[[], None]:
        """Stream every future event to ``fn``; returns an unsubscribe
        callable."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

        return unsubscribe

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def next_seq(self) -> int:
        """The seq the next emitted event would get (used by exporters
        appending synthetic trailing records)."""
        return self._seq

    def events_of(self, prefix: str) -> List[ObsEvent]:
        """Events whose kind equals ``prefix`` or starts with
        ``prefix + '.'`` (e.g. ``"task"`` matches every task event)."""
        dotted = prefix + "."
        return [
            e for e in self.events
            if e.kind == prefix or e.kind.startswith(dotted)
        ]

    def by_seq(self) -> Dict[int, ObsEvent]:
        """Recorded events indexed by ``seq``."""
        return {e.seq: e for e in self.events}

    def causal_chain(self, event: ObsEvent) -> List[ObsEvent]:
        """The event plus its transitive causes, effect first."""
        index = self.by_seq()
        chain = [event]
        seen = {event.seq}
        while chain[-1].cause is not None:
            parent = index.get(chain[-1].cause)
            if parent is None or parent.seq in seen:
                break
            chain.append(parent)
            seen.add(parent.seq)
        return chain

    def clear(self) -> None:
        """Drop recorded events (sequence numbers keep increasing)."""
        self.events.clear()

    # -- persistence ----------------------------------------------------------
    def to_jsonl(self, path: str, extra: Iterable[ObsEvent] = ()) -> int:
        """Write events (plus ``extra`` trailing records) as JSON lines;
        returns the number written."""
        events = list(self.events) + list(extra)
        with Path(path).open("w") as fh:
            for event in events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(events)

    @staticmethod
    def load_jsonl(path: str) -> List[ObsEvent]:
        """Re-load events written by :meth:`to_jsonl`."""
        events = []
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if line:
                events.append(ObsEvent.from_dict(json.loads(line)))
        return events

    def __repr__(self) -> str:
        return (
            f"<EventBus {len(self.events)} events, "
            f"{'enabled' if self.enabled else 'disabled'}>"
        )
