"""The run reporter: from a recorded event stream to a readable story.

``record_run`` exports a runtime's bus as JSONL with a trailing
synthetic ``run.summary`` event carrying the flat counters, the per-job
buckets, and the dimensioned metric snapshot -- one file is the whole
run.  :class:`RunReport` loads that file (or a live event list) and
renders the sections behind ``python -m repro.obs``:

- phase breakdown (per task function: count, makespan, busy core-seconds,
  mean queue delay);
- top-k slowest task attempts;
- per-job/per-tenant summary with the max/min completion-ratio fairness
  figure of merit;
- spill amplification (spill bytes written per task output byte);
- policy decisions (per-policy counts from ``policy.decision`` events,
  with placement affinity honoured-vs-fell-through accounting);
- the planning story (``plan.lower`` / ``plan.replan`` events: what each
  expression lowered to, and any mid-job switches or bound adjustments
  with their estimated gains) when re-planning was enabled;
- the fault/retry timeline, each retry annotated with its causal chain
  back to the fault that triggered it;
- cluster churn accounting (joins / drains / removes and the lineage
  recomputes node departures forced);
- streaming record latency (global + per-tenant p50/p99/p999 from the
  summary's metric histograms, plus windows/records/backpressure-stall
  accounting from ``stream.*`` events) when the streaming tier ran.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence

from repro.metrics.tables import ResultTable
from repro.obs.events import EventBus, ObsEvent
from repro.obs.trace import Span, derive_spans


def record_run(runtime: Any, path: str) -> int:
    """Export a runtime's event bus to ``path`` as JSONL.

    Samples the per-node gauges first, then appends a synthetic
    ``run.summary`` event holding ``runtime.stats()``, the per-job
    counter buckets, and the metric-registry snapshot, so the file is
    self-sufficient for offline reporting.  Returns the number of lines
    written.  ``runtime`` is duck-typed (needs ``bus``, ``stats``,
    ``job_stats``, ``metrics``, ``sample_gauges``).
    """
    runtime.sample_gauges()
    bus: EventBus = runtime.bus
    attrs = {
        "stats": runtime.stats(),
        "job_stats": runtime.job_stats(),
        "metrics": runtime.metrics.snapshot(),
        "cluster": runtime.cluster_snapshot(),
    }
    # Duck-typed: present only when a repro.obs.profile.SelfProfiler is
    # (or was) attached -- the reporter then renders an Engine section.
    profiler = getattr(runtime, "self_profiler", None)
    if profiler is not None:
        attrs["profile"] = profiler.to_dict()
    summary = ObsEvent(
        seq=bus.next_seq,
        ts=float(bus.clock()),
        kind="run.summary",
        attrs=attrs,
    )
    return bus.to_jsonl(path, extra=[summary])


class RunReport:
    """Sections of a run story, derived from a recorded event stream."""

    def __init__(self, events: Sequence[ObsEvent]) -> None:
        self.events: List[ObsEvent] = list(events)
        self.spans: List[Span] = derive_spans(self.events)
        self._index = {e.seq: e for e in self.events}
        #: The trailing ``run.summary`` attrs ({} when absent).
        self.summary: Dict[str, Any] = {}
        for event in reversed(self.events):
            if event.kind == "run.summary":
                self.summary = dict(event.attrs)
                break

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Build a report from a :func:`record_run` JSONL file."""
        return cls(EventBus.load_jsonl(path))

    # -- sections -------------------------------------------------------------
    def task_spans(self) -> List[Span]:
        """Completed task-attempt spans, sorted by start time."""
        return [s for s in self.spans if s.cat == "task"]

    def phase_table(self) -> ResultTable:
        """Per task function: count, makespan, busy core-s, mean waits.

        ``mean_queue_s`` is the submit-to-run delay of the task itself;
        ``admission_s`` is the owning job's admission wait (its
        ``job.submit`` -> ``job.admit`` span), averaged over the
        phase's tasks -- zero for tasks outside the job control plane.
        """
        grouped: Dict[str, List[Span]] = defaultdict(list)
        for span in self.task_spans():
            grouped[span.name].append(span)
        admission = {
            s.job: s.duration for s in self.spans if s.cat == "job.wait"
        }
        table = ResultTable(
            "Phase breakdown",
            [
                "phase",
                "tasks",
                "first_start",
                "last_end",
                "busy_core_s",
                "mean_queue_s",
                "admission_s",
            ],
        )
        for name in sorted(grouped):
            spans = grouped[name]
            waits = [s.attrs.get("queue_delay", 0.0) for s in spans]
            admissions = [admission.get(s.job, 0.0) for s in spans]
            table.add_row(
                phase=name,
                tasks=len(spans),
                first_start=min(s.start for s in spans),
                last_end=max(s.end for s in spans),
                busy_core_s=sum(s.duration for s in spans),
                mean_queue_s=sum(waits) / len(waits),
                admission_s=sum(admissions) / len(admissions),
            )
        return table

    def slowest_tasks(self, k: int = 10) -> ResultTable:
        """The ``k`` longest task attempts."""
        table = ResultTable(
            "Slowest tasks",
            ["task", "fn", "node", "job", "duration_s", "attempt", "status"],
        )
        ranked = sorted(
            self.task_spans(), key=lambda s: (-s.duration, s.task or "")
        )
        for span in ranked[:k]:
            table.add_row(
                task=span.task,
                fn=span.name,
                node=span.node,
                job=span.job or "-",
                duration_s=span.duration,
                attempt=span.attrs.get("attempt", 1),
                status=span.attrs.get("status", "?"),
            )
        return table

    def per_job_spill_bytes(self) -> Dict[str, float]:
        """Spill bytes written charged to each job bucket (from the
        recorded ``run.summary``)."""
        return {
            job_id: bucket.get("spill_bytes_written", 0.0)
            for job_id, bucket in self.summary.get("job_stats", {}).items()
        }

    def job_table(self) -> ResultTable:
        """One row per job seen on the bus: tenant, timings, key bytes."""
        job_stats: Dict[str, Dict[str, float]] = self.summary.get(
            "job_stats", {}
        )
        waits = {
            s.job: s.duration for s in self.spans if s.cat == "job.wait"
        }
        runs = {s.job: s for s in self.spans if s.cat == "job"}
        jobs = sorted(set(job_stats) | set(runs))
        table = ResultTable(
            "Jobs",
            [
                "job",
                "tenant",
                "status",
                "queue_wait_s",
                "duration_s",
                "tasks",
                "spill_bytes",
            ],
        )
        for job in jobs:
            span = runs.get(job)
            bucket = job_stats.get(job, {})
            table.add_row(
                job=job,
                tenant=(span.attrs.get("tenant") if span else None) or "-",
                status=(span.attrs.get("status") if span else None) or "-",
                queue_wait_s=waits.get(job, 0.0),
                duration_s=span.duration if span else 0.0,
                tasks=bucket.get("tasks_finished", 0.0),
                spill_bytes=bucket.get("spill_bytes_written", 0.0),
            )
        return table

    def fairness_ratio(self) -> Optional[float]:
        """Max/min completed-job duration ratio (None under two jobs)."""
        durations = [
            s.duration
            for s in self.spans
            if s.cat == "job" and s.attrs.get("status") == "ok" and s.duration
        ]
        if len(durations) < 2:
            return None
        return max(durations) / min(durations)

    def spill_amplification(self) -> Optional[float]:
        """Spill bytes written per task output byte (None without output)."""
        stats = self.summary.get("stats", {})
        output = stats.get("task_output_bytes", 0.0)
        if not output:
            return None
        return stats.get("spill_bytes_written", 0.0) / output

    def policy_decisions(self) -> Dict[str, Dict[str, int]]:
        """``policy.decision`` counts, grouped by policy then decision.

        Placement decisions additionally split by deciding *stage*
        (``place:affinity``, ``place:locality``, ...), which is what the
        affinity-honoured accounting below is derived from.
        """
        grouped: Dict[str, Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        for event in self.events:
            if event.kind != "policy.decision":
                continue
            policy = str(event.attrs.get("policy", "?"))
            decision = str(event.attrs.get("decision", "?"))
            stage = event.attrs.get("stage")
            if stage is not None:
                decision = f"{decision}:{stage}"
            grouped[policy][decision] += 1
        return {p: dict(d) for p, d in grouped.items()}

    def affinity_summary(self) -> Dict[str, int]:
        """Placement affinity accounting from ``policy.decision`` events.

        ``honoured``: the hint decided placement; ``fell_through``: a
        hint was set but another stage decided (dead/blacklisted hint);
        ``no_hint``: placements without an affinity hint.
        """
        honoured = fell_through = no_hint = 0
        for event in self.events:
            if event.kind != "policy.decision":
                continue
            if event.attrs.get("decision") != "place":
                continue
            if event.attrs.get("affinity") is None:
                no_hint += 1
            elif event.attrs.get("stage") == "affinity":
                honoured += 1
            else:
                fell_through += 1
        return {
            "honoured": honoured,
            "fell_through": fell_through,
            "no_hint": no_hint,
        }

    def policy_table(self) -> ResultTable:
        """One row per (policy, decision) pair seen on the bus."""
        table = ResultTable(
            "Policy decisions", ["policy", "decision", "count"]
        )
        grouped = self.policy_decisions()
        for policy in sorted(grouped):
            for decision in sorted(grouped[policy]):
                table.add_row(
                    policy=policy,
                    decision=decision,
                    count=grouped[policy][decision],
                )
        return table

    def plan_summary(self) -> Dict[str, Any]:
        """Planning-surface accounting from ``plan.lower`` /
        ``plan.replan`` events: per-variant lowered counts, mid-job
        variant switches, and in-flight bound adjustments ({} for runs
        without re-planning enabled, which emit no plan events)."""
        lowered: Dict[str, int] = {}
        switches = adjustments = 0
        for event in self.events:
            if event.kind == "plan.lower":
                variant = str(event.attrs.get("variant", "?"))
                lowered[variant] = lowered.get(variant, 0) + 1
            elif event.kind == "plan.replan":
                if event.attrs.get("param") is not None:
                    adjustments += 1
                else:
                    switches += 1
        if not lowered and not switches and not adjustments:
            return {}
        return {
            "lowered": lowered,
            "switches": switches,
            "bound_adjustments": adjustments,
        }

    def plan_table(self) -> ResultTable:
        """One row per planning event: lowers with the decided variant,
        rule, and estimate; replans with the before->after change and
        its estimated fractional gain."""
        table = ResultTable(
            "Plan",
            ["t", "job", "action", "variant", "decided_by", "est_s", "gain"],
        )
        for event in self.events:
            if event.kind == "plan.lower":
                table.add_row(
                    t=event.ts,
                    job=event.job or "-",
                    action="lower",
                    variant=str(event.attrs.get("variant", "?")),
                    decided_by=(
                        f"{event.attrs.get('rule', '?')}/"
                        f"{event.attrs.get('decided_by', '?')}"
                    ),
                    est_s=float(event.attrs.get("est_seconds", 0.0)),
                    gain=0.0,
                )
            elif event.kind == "plan.replan":
                if event.attrs.get("param") is not None:
                    change = (
                        f"{event.attrs['param']} "
                        f"{event.attrs.get('inflight_before')}->"
                        f"{event.attrs.get('inflight_after')}"
                    )
                    est_s = gain = 0.0
                else:
                    change = (
                        f"{event.attrs.get('variant_before')}->"
                        f"{event.attrs.get('variant_after')}"
                    )
                    est_s = float(event.attrs.get("est_after", 0.0))
                    gain = float(event.attrs.get("gain", 0.0))
                table.add_row(
                    t=event.ts,
                    job=event.job or "-",
                    action="replan",
                    variant=change,
                    decided_by=str(event.attrs.get("boundary", "?")),
                    est_s=est_s,
                    gain=gain,
                )
        return table

    def fault_timeline(self) -> List[str]:
        """Chronological fault / churn / death / retry lines with causal
        chains (membership changes are part of the same story: a drain
        fault causes a membership remove, which causes task retries)."""
        lines = []
        for event in self.events:
            if event.kind not in (
                "chaos.fault",
                "cluster.membership",
                "node.death",
                "node.restart",
                "executor.failure",
                "task.retry",
            ):
                continue
            chain = self._chain(event)
            suffix = ""
            if len(chain) > 1:
                suffix = "  <= " + " <= ".join(e.kind for e in chain[1:])
            where = event.node or event.task or event.job or ""
            detail = (
                event.attrs.get("fault")
                or event.attrs.get("action")
                or event.attrs.get("attempt")
            )
            detail_s = f" ({detail})" if detail is not None else ""
            lines.append(
                f"t={event.ts:10.3f}  {event.kind:<18} {where}{detail_s}{suffix}"
            )
        return lines

    def membership_summary(self) -> Dict[str, int]:
        """Cluster-churn accounting from ``cluster.membership`` events
        plus the lineage-recompute count the elasticity work targets
        (``joins`` / ``drains`` / ``removes`` / ``reconstructions``)."""
        actions = {"join": 0, "drain": 0, "remove": 0}
        for event in self.events:
            if event.kind != "cluster.membership":
                continue
            action = str(event.attrs.get("action", "?"))
            if action in actions:
                actions[action] += 1
        stats = self.summary.get("stats", {})
        return {
            "joins": actions["join"],
            "drains": actions["drain"],
            "removes": actions["remove"],
            "reconstructions": int(stats.get("lineage_reconstructions", 0)),
        }

    def streaming_summary(self) -> Dict[str, Any]:
        """Streaming-tier accounting from ``stream.*`` events: windows
        closed, records windowed, sources closed, and backpressure
        stalls split by reason ({} for batch-only runs)."""
        windows = records = sources = 0
        stalls: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "stream.window.close":
                windows += 1
                records += int(event.attrs.get("records", 0))
            elif event.kind == "stream.source.close":
                sources += 1
            elif event.kind == "stream.backpressure":
                reason = str(event.attrs.get("reason", "?"))
                stalls[reason] = stalls.get(reason, 0) + 1
        if not windows and not sources and not stalls:
            return {}
        return {
            "windows": windows,
            "records": records,
            "sources": sources,
            "backpressure_stalls": stalls,
        }

    def streaming_latency_table(self) -> ResultTable:
        """Global + per-tenant record-latency percentiles (p50/p99/p999)
        from the recorded ``run.summary`` metric histograms.

        Keys mirror :mod:`repro.streaming.job`'s metric names without
        importing the tier (obs sits below it in the layering order):
        the global series of ``stream.record_latency_s`` plus every
        tenant dimension of ``stream.tenant_latency_s``.
        """
        table = ResultTable(
            "Streaming record latency",
            ["scope", "records", "p50_s", "p99_s", "p999_s", "max_s"],
        )
        hists: Dict[str, Dict[str, float]] = self.summary.get(
            "metrics", {}
        ).get("histograms", {})

        def add(scope: str, summary: Dict[str, float]) -> None:
            table.add_row(
                scope=scope,
                records=int(summary.get("count", 0)),
                p50_s=summary.get("p50", 0.0),
                p99_s=summary.get("p99", 0.0),
                p999_s=summary.get("p999", 0.0),
                max_s=summary.get("max", 0.0),
            )

        global_summary = hists.get("stream.record_latency_s[<all>=<all>]")
        if global_summary:
            add("<global>", global_summary)
        tenant_prefix = "stream.tenant_latency_s[job="
        for key in sorted(hists):
            if key.startswith(tenant_prefix):
                add(key[len(tenant_prefix):-1], hists[key])
        return table

    def engine_summary(self, top_k: int = 5) -> Dict[str, Any]:
        """Self-profile of the *simulator itself* from the recorded
        ``run.summary`` (present when the run was recorded with a
        :class:`repro.obs.profile.SelfProfiler` attached): wall seconds,
        simulated-events-per-wall-second throughput, and the top
        wall-time categories with their shares ({} otherwise)."""
        profile = self.summary.get("profile")
        if not profile:
            return {}
        categories = profile.get("categories", {})
        fractions = profile.get("fractions", {})
        top = [
            {
                "category": category,
                "seconds": seconds,
                "share": fractions.get(category, 0.0),
            }
            for category, seconds in sorted(
                categories.items(), key=lambda kv: -kv[1]
            )[:top_k]
        ]
        return {
            "wall_time_s": profile.get("wall_time_s", 0.0),
            "sim_time_s": profile.get("sim_time_s", 0.0),
            "events_processed": int(profile.get("events_processed", 0)),
            "events_per_wall_s": profile.get("events_per_wall_s", 0.0),
            "sim_s_per_wall_s": profile.get("sim_s_per_wall_s", 0.0),
            "coverage_error": profile.get("coverage_error", 0.0),
            "top_categories": top,
            "counters": profile.get("counters", {}),
        }

    def engine_table(self, top_k: int = 5) -> ResultTable:
        """The Engine section's category rows (empty without a profile)."""
        table = ResultTable(
            "Engine self-profile", ["category", "wall_s", "share_pct"]
        )
        engine = self.engine_summary(top_k)
        for row in engine.get("top_categories", []):
            table.add_row(
                category=row["category"],
                wall_s=row["seconds"],
                share_pct=100.0 * row["share"],
            )
        return table

    def _chain(self, event: ObsEvent) -> List[ObsEvent]:
        chain = [event]
        seen = {event.seq}
        while chain[-1].cause is not None:
            parent = self._index.get(chain[-1].cause)
            if parent is None or parent.seq in seen:
                break
            chain.append(parent)
            seen.add(parent.seq)
        return chain

    # -- export ---------------------------------------------------------------
    def to_dict(self, top_k: int = 10) -> Dict[str, Any]:
        """Every section as plain JSON-safe data -- the machine-readable
        twin of :meth:`render`, consumed by ``report --json`` and the
        HTML run explorer."""
        stats = self.summary.get("stats", {})
        return {
            "events": len(self.events),
            "t_end": stats.get(
                "time", max((e.ts for e in self.events), default=0.0)
            ),
            "stats": stats,
            "phase_table": self.phase_table().to_dict(),
            "slowest_tasks": self.slowest_tasks(top_k).to_dict(),
            "job_table": self.job_table().to_dict(),
            "fairness_ratio": self.fairness_ratio(),
            "spill_amplification": self.spill_amplification(),
            "per_job_spill_bytes": self.per_job_spill_bytes(),
            "policy_decisions": self.policy_decisions(),
            "affinity_summary": self.affinity_summary(),
            "policy_table": self.policy_table().to_dict(),
            "plan_summary": self.plan_summary(),
            "plan_table": self.plan_table().to_dict(),
            "fault_timeline": self.fault_timeline(),
            "membership_summary": self.membership_summary(),
            "streaming_summary": self.streaming_summary(),
            "streaming_latency_table": self.streaming_latency_table().to_dict(),
            "engine_summary": self.engine_summary(),
        }

    # -- rendering ------------------------------------------------------------
    def render(self, top_k: int = 10) -> str:
        """The full multi-section report as one printable string."""
        parts: List[str] = []
        stats = self.summary.get("stats", {})
        parts.append(
            f"Run of {len(self.events)} events, "
            f"t_end={stats.get('time', max((e.ts for e in self.events), default=0.0)):g}s"
        )
        if self.task_spans():
            parts.append("")
            parts.append(self.phase_table().render())
            parts.append("")
            parts.append(self.slowest_tasks(top_k).render())
        job_table = self.job_table()
        if len(job_table):
            parts.append("")
            parts.append(job_table.render())
            ratio = self.fairness_ratio()
            if ratio is not None:
                parts.append(f"fairness (max/min job duration): {ratio:.2f}x")
        policy_table = self.policy_table()
        if len(policy_table):
            parts.append("")
            parts.append(policy_table.render())
            affinity = self.affinity_summary()
            if affinity["honoured"] or affinity["fell_through"]:
                parts.append(
                    "affinity: "
                    f"{affinity['honoured']} honoured, "
                    f"{affinity['fell_through']} fell through, "
                    f"{affinity['no_hint']} unhinted"
                )
        plan_table = self.plan_table()
        if len(plan_table):
            parts.append("")
            parts.append(plan_table.render())
            plan = self.plan_summary()
            parts.append(
                f"planning: {sum(plan['lowered'].values())} plans lowered, "
                f"{plan['switches']} mid-job switches, "
                f"{plan['bound_adjustments']} bound adjustments"
            )
        streaming = self.streaming_summary()
        if streaming:
            parts.append("")
            latency_table = self.streaming_latency_table()
            if len(latency_table):
                parts.append(latency_table.render())
            stalls = streaming["backpressure_stalls"]
            stall_s = (
                ", ".join(f"{n} x {r}" for r, n in sorted(stalls.items()))
                or "none"
            )
            parts.append(
                f"streaming: {streaming['records']} records over "
                f"{streaming['windows']} windows from "
                f"{streaming['sources']} sources; "
                f"backpressure stalls: {stall_s}"
            )
        amp = self.spill_amplification()
        if amp is not None:
            parts.append("")
            parts.append(
                f"spill amplification: {amp:.3f} bytes spilled per output byte"
            )
        membership = self.membership_summary()
        if membership["joins"] or membership["drains"] or membership["removes"]:
            parts.append("")
            parts.append(
                "cluster churn: "
                f"{membership['joins']} joins, "
                f"{membership['drains']} drains, "
                f"{membership['removes']} removes, "
                f"{membership['reconstructions']} lineage recomputes"
            )
        engine = self.engine_summary()
        if engine:
            parts.append("")
            parts.append(self.engine_table().render())
            parts.append(
                f"engine: {engine['events_processed']} events in "
                f"{engine['wall_time_s']:.3f}s wall "
                f"({engine['events_per_wall_s']:,.0f} events/s, "
                f"{engine['sim_s_per_wall_s']:.2f} sim-s/wall-s)"
            )
        timeline = self.fault_timeline()
        if timeline:
            parts.append("")
            parts.append("Fault / retry timeline")
            parts.extend("  " + line for line in timeline)
        return "\n".join(parts)
