"""Self-observability: the simulator measures its own wall-clock time.

Every other tier of :mod:`repro.obs` explains *simulated* time -- where
the modelled cluster spent its seconds.  This tier explains *host* time:
where the discrete-event engine, the futures runtime, and the obs hot
paths spend the real wall-clock seconds a run costs, so "make simcore
fast" is a measured campaign instead of guesswork (the ROADMAP's
raw-speed item).

- :class:`~repro.obs.profile.core.SelfProfiler` -- scoped wall-clock
  accounting with exclusive-time attribution (event-queue pop, handler
  dispatch keyed by subsystem, event-bus publish, metrics charging,
  driver handoffs), hot-loop counters (events processed, heap ops, bus
  publications, opt-in ``tracemalloc`` allocation tracking), and the
  first-class *simulated-events-per-wall-second* throughput metric.
  The per-category breakdown plus the ``untracked`` residue sums to the
  measured total wall time -- ``coverage_error()`` mirrors
  :meth:`repro.obs.perf.critpath.CriticalPath.coverage_error`.
- :mod:`~repro.obs.profile.flame` -- collapsed-stack (folded) export
  from the profiler's scope paths or an optional :mod:`cProfile`
  capture, and a standalone single-file SVG flamegraph renderer.

Attachment is strictly one-directional: ``SelfProfiler.attach(runtime)``
shadows hot methods on the *instances* (``Environment.step``,
``EventBus.emit``, ...) and ``detach()`` restores them, so
:mod:`repro.simcore` and :mod:`repro.futures` never import this package
(enforced by ``tools/check_layering.py``) and profiling is zero-cost
when off -- the golden event digests pin that the observer does not
perturb the observed.

See ``docs/profiling.md`` for the methodology and
``python -m repro.obs profile`` for the CLI.
"""

from repro.obs.profile.core import SelfProfiler
from repro.obs.profile.flame import (
    CProfileCapture,
    folded_from_cprofile,
    folded_from_profiler,
    render_flamegraph_svg,
    write_flamegraph,
)

__all__ = [
    "SelfProfiler",
    "CProfileCapture",
    "folded_from_profiler",
    "folded_from_cprofile",
    "render_flamegraph_svg",
    "write_flamegraph",
]
