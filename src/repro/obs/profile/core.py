"""Scoped wall-clock self-profiling of the simulator's own hot paths.

The accounting model is a classic profiler scope stack with *exclusive*
attribution: entering a scope starts its interval, leaving it charges
``elapsed - time_spent_in_child_scopes`` to the scope's category and
rolls the full elapsed interval up into the parent's child-time.  Scope
intervals are properly nested and never overlap, so

    sum(category seconds) + untracked == total wall time

holds by construction (``untracked`` is everything outside any scope:
driver-loop bookkeeping, test harness code, profiler overhead itself).
:meth:`SelfProfiler.coverage_error` reports the residual of that
identity exactly the way the critical-path analyzer proves *its*
sums-to-makespan invariant.

Attachment works by shadowing hot methods on *instances* -- never by
editing classes and never by the data plane importing this module:

- ``Environment.step`` is replaced with an instrumented twin that
  times the heap pop (``engine.pop``) and the callback dispatch,
  keyed by the subsystem the popped event resumes
  (``engine.dispatch.task``, ``engine.dispatch.driver``, ...);
- ``Environment._schedule`` / ``_schedule_callback`` count heap pushes;
- ``EventBus.emit`` is timed as ``bus.publish``;
- ``Runtime.charge_task`` / ``charge_object`` and the
  ``MetricRegistry`` write paths are timed as ``metrics.charge``;
- the driver host's handoffs (driver Python running between blocking
  calls) are timed as ``driver.exec``.

``detach()`` deletes the instance shadows, restoring the pristine class
methods -- profiling off is therefore *bit-for-bit* absent, which the
golden digest tests pin.  Overhead when on is a handful of
``perf_counter`` calls per simulated event, bounded (<5% on realistic
runs) by ``tests/test_self_profile.py``'s budget test.
"""

from __future__ import annotations

import heapq
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Category charged for heap pops + simulated-clock advancement.
ENGINE_POP = "engine.pop"

#: Prefix of the per-subsystem handler-dispatch categories.
DISPATCH_PREFIX = "engine.dispatch."

#: The residue category: wall time outside every scope.
UNTRACKED = "untracked"


def _dispatch_category(event: Any) -> str:
    """The ``engine.dispatch.<subsystem>`` category for a popped event.

    Subsystem resolution, cheapest-first: the event's own process name
    (``Process`` completions), else the owner of its first callback
    (a ``Process._resume`` bound method names the process the event
    resumes: ``task-...``, ``driver-get``, ``spark-map-...``), else the
    event's class name.  Name stems before the first ``-``/``:`` keep
    the category space small (``task``, ``driver``, ``job``, ...).
    """
    name = getattr(event, "name", None)
    if not isinstance(name, str) or not name:
        callbacks = event.callbacks
        if callbacks:
            owner = getattr(callbacks[0], "__self__", None)
            name = getattr(owner, "name", None)
    if isinstance(name, str) and name:
        stem = name.split("-", 1)[0].split(":", 1)[0] or "process"
    else:
        stem = type(event).__name__.strip("_").lower()
    return DISPATCH_PREFIX + stem


class SelfProfiler:
    """Wall-clock attribution, hot-loop counters, and throughput for
    the simulator itself.

    Typical use (what ``benchmarks/_harness.py`` does under
    ``--profile``)::

        prof = SelfProfiler()
        prof.attach(runtime)        # instruments this runtime's instances
        ...run the workload...
        prof.detach()               # restores the pristine methods
        prof.finish()               # stops the total-wall clock
        print(prof.render())

    One profiler may attach to several runtimes in sequence (a figure
    benchmark builds one per variant); categories, counters, and
    simulated seconds accumulate across attachments, and the total wall
    clock runs from the first ``start()``/``attach()`` to ``finish()``.
    """

    def __init__(
        self,
        trace_allocations: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.clock = clock
        #: Exclusive seconds per category.
        self.seconds: Dict[str, float] = {}
        #: Hot-loop counters (events_processed, heap_pushes, heap_pops,
        #: bus_publications, metric_charges, driver_handoffs, ...).
        self.counts: Dict[str, int] = {}
        #: Exclusive seconds per scope *path* (folded-stack data for the
        #: flamegraph exporter), keyed by the tuple of categories on the
        #: stack at exit time.
        self.folded: Dict[Tuple[str, ...], float] = {}
        #: Simulated seconds advanced while attached (across runtimes).
        self.sim_time_s = 0.0
        self.trace_allocations = trace_allocations
        # Frames are [category, start, child_s, path]; the folded-stack
        # path is built once at enter so exit stays allocation-light.
        self._stack: List[List[Any]] = []
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._runtime: Optional[Any] = None
        self._patched: List[Tuple[Any, str]] = []
        self._env_now_at_attach = 0.0
        self._started_tracemalloc = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the total-wall clock (idempotent; ``attach`` calls it)."""
        if self._started_at is None:
            if self.trace_allocations and not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
            self._started_at = self.clock()

    def finish(self) -> None:
        """Stop the total-wall clock (detaching first if still attached);
        idempotent.  Allocation totals are read here when tracing."""
        if self._finished_at is not None:
            return
        if self._runtime is not None:
            self.detach()
        if self._started_at is None:
            self._started_at = self.clock()
        if self.trace_allocations and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            self.counts["alloc_current_bytes"] = int(current)
            self.counts["alloc_peak_bytes"] = int(peak)
            if self._started_tracemalloc:
                tracemalloc.stop()
        self._finished_at = self.clock()

    @property
    def total_wall_s(self) -> float:
        """Measured wall seconds from ``start()`` to ``finish()`` (to
        *now* while still running)."""
        if self._started_at is None:
            return 0.0
        end = self._finished_at if self._finished_at is not None else self.clock()
        return end - self._started_at

    # -- the scope stack ---------------------------------------------------
    def _enter(self, category: str) -> None:
        stack = self._stack
        path = stack[-1][3] + (category,) if stack else (category,)
        stack.append([category, self.clock(), 0.0, path])

    def _exit(self) -> None:
        stack = self._stack
        frame = stack.pop()
        elapsed = self.clock() - frame[1]
        exclusive = elapsed - frame[2]
        category = frame[0]
        seconds = self.seconds
        seconds[category] = seconds.get(category, 0.0) + exclusive
        folded = self.folded
        path = frame[3]
        folded[path] = folded.get(path, 0.0) + exclusive
        if stack:
            stack[-1][2] += elapsed

    @contextmanager
    def scope(self, category: str) -> Iterator[None]:
        """Time a block under ``category`` (nest freely; exclusive
        accounting keeps the sum identity).  Public entry for obs-side
        hot paths the instance shadows cannot reach -- the bench harness
        wraps span derivation and trace export with it."""
        self.start()
        self._enter(category)
        try:
            yield
        finally:
            self._exit()

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a hot-loop counter by ``amount``."""
        self.counts[name] = self.counts.get(name, 0) + amount

    # -- instrumentation ---------------------------------------------------
    def attach(self, runtime: Any) -> None:
        """Instrument ``runtime``'s hot paths (engine loop, event bus,
        metrics charging, driver handoffs) by shadowing the bound
        methods on the instances.  Also publishes itself as
        ``runtime.self_profiler`` so :func:`repro.obs.report.record_run`
        can stamp the profile into the run summary."""
        if self._runtime is not None:
            raise RuntimeError("profiler is already attached; detach first")
        if self._finished_at is not None:
            raise RuntimeError("profiler already finished")
        self.start()
        self._runtime = runtime
        env = runtime.env
        self._env_now_at_attach = env.now
        self._shadow(env, "step", self._instrumented_step(env))
        self._shadow(env, "_schedule", self._counting(env._schedule, "heap_pushes"))
        self._shadow(
            env,
            "_schedule_callback",
            self._counting(env._schedule_callback, "heap_pushes"),
        )
        self._shadow(
            runtime.bus,
            "emit",
            self._scoped(runtime.bus.emit, "bus.publish", "bus_publications"),
        )
        self._shadow(
            runtime,
            "charge_task",
            self._scoped(runtime.charge_task, "metrics.charge", "metric_charges"),
        )
        self._shadow(
            runtime,
            "charge_object",
            self._scoped(runtime.charge_object, "metrics.charge", "metric_charges"),
        )
        metrics = runtime.metrics
        for method in ("counter", "gauge_set", "observe"):
            self._shadow(
                metrics,
                method,
                self._scoped(
                    getattr(metrics, method), "metrics.charge", "metric_charges"
                ),
            )
        host = getattr(runtime, "_driver", None)
        if host is not None:
            self._shadow(
                host,
                "_hand_off",
                self._scoped(host._hand_off, "driver.exec", "driver_handoffs"),
            )
        self.count("runtimes_attached", 1)
        runtime.self_profiler = self

    def detach(self) -> None:
        """Remove every instance shadow, restoring the pristine class
        methods; accumulates the simulated seconds the attachment
        covered.  Idempotent."""
        if self._runtime is None:
            return
        for obj, name in reversed(self._patched):
            try:
                delattr(obj, name)
            except AttributeError:
                pass
        self._patched.clear()
        self.sim_time_s += self._runtime.env.now - self._env_now_at_attach
        self._runtime = None

    @classmethod
    @contextmanager
    def attached(
        cls, runtime: Any, trace_allocations: bool = False
    ) -> Iterator["SelfProfiler"]:
        """Context manager: attach to ``runtime``, detach + finish on
        exit, yielding the profiler."""
        profiler = cls(trace_allocations=trace_allocations)
        profiler.attach(runtime)
        try:
            yield profiler
        finally:
            profiler.finish()

    def _shadow(self, obj: Any, name: str, replacement: Callable) -> None:
        """Install an instance-attribute shadow over a class method."""
        if name in vars(obj):
            raise RuntimeError(
                f"{type(obj).__name__}.{name} already carries an instance "
                f"shadow; refusing to stack profilers"
            )
        setattr(obj, name, replacement)
        self._patched.append((obj, name))

    def _counting(self, fn: Callable, counter: str) -> Callable:
        """A pass-through wrapper that only bumps ``counter``."""
        counts = self.counts

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            counts[counter] = counts.get(counter, 0) + 1
            return fn(*args, **kwargs)

        return wrapper

    def _scoped(self, fn: Callable, category: str, counter: str) -> Callable:
        """A wrapper timing ``fn`` under ``category`` and counting calls."""
        counts = self.counts
        enter = self._enter
        exit_ = self._exit

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            counts[counter] = counts.get(counter, 0) + 1
            enter(category)
            try:
                return fn(*args, **kwargs)
            finally:
                exit_()

        return wrapper

    def _instrumented_step(self, env: Any) -> Callable[[], None]:
        """The timed twin of :meth:`repro.simcore.Environment.step`.

        Must stay in sync with the pristine implementation: pop the next
        (when, seq, event) entry, check monotonicity, advance the clock,
        process callbacks.  The pop interval is charged to
        :data:`ENGINE_POP`; the callback interval opens a dispatch scope
        keyed by :func:`_dispatch_category`, so nested bus/metrics
        scopes subtract out of it.
        """
        heappop = heapq.heappop
        clock = self.clock
        seconds = self.seconds
        counts = self.counts
        stack = self._stack
        folded = self.folded

        def step() -> None:
            t0 = clock()
            when, _seq, event = heappop(env._queue)
            if when < env.now:
                raise RuntimeError("event queue went backwards in time")
            env.now = when
            t1 = clock()
            seconds[ENGINE_POP] = seconds.get(ENGINE_POP, 0.0) + (t1 - t0)
            if stack:  # pop time is a child of any enclosing scope
                stack[-1][2] += t1 - t0
                pop_path = stack[-1][3] + (ENGINE_POP,)
            else:
                pop_path = (ENGINE_POP,)
            folded[pop_path] = folded.get(pop_path, 0.0) + (t1 - t0)
            counts["events_processed"] = counts.get("events_processed", 0) + 1
            counts["heap_pops"] = counts.get("heap_pops", 0) + 1
            category = _dispatch_category(event)
            path = stack[-1][3] + (category,) if stack else (category,)
            stack.append([category, t1, 0.0, path])
            try:
                event._process_callbacks()
            finally:
                self._exit()

        return step

    # -- results -----------------------------------------------------------
    def tracked_s(self) -> float:
        """Seconds attributed to any category (sum of exclusives)."""
        return sum(self.seconds.values())

    def untracked_s(self) -> float:
        """Wall seconds outside every scope (total minus tracked,
        floored at zero)."""
        return max(0.0, self.total_wall_s - self.tracked_s())

    def breakdown(self) -> Dict[str, float]:
        """Exclusive seconds per category, plus the ``untracked``
        residue -- the values whose sum equals :attr:`total_wall_s`."""
        out = dict(sorted(self.seconds.items()))
        out[UNTRACKED] = self.untracked_s()
        return out

    def coverage_error(self) -> float:
        """|sum(breakdown) - total wall| / total wall -- ~0 by
        construction; reported so the CLI and the acceptance tests can
        prove the full-coverage invariant on real runs (mirrors
        ``CriticalPath.coverage_error``)."""
        total = self.total_wall_s
        if total <= 0:
            return 0.0
        return abs(sum(self.breakdown().values()) - total) / total

    def throughput(self) -> Dict[str, float]:
        """The headline speed metrics: simulated events retired per wall
        second and simulated seconds advanced per wall second."""
        total = self.total_wall_s
        events = self.counts.get("events_processed", 0)
        return {
            "events_processed": float(events),
            "wall_time_s": total,
            "sim_time_s": self.sim_time_s,
            "events_per_wall_s": events / total if total > 0 else 0.0,
            "sim_s_per_wall_s": self.sim_time_s / total if total > 0 else 0.0,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary: throughput, category seconds and
        fractions, counters, and the coverage residual.  This is what
        ``finish_bench`` stamps into ``BENCH_*.json`` as the ``profile``
        section and ``record_run`` embeds in ``run.summary``."""
        total = self.total_wall_s
        breakdown = self.breakdown()
        fractions = {
            cat: (s / total if total > 0 else 0.0)
            for cat, s in breakdown.items()
        }
        out: Dict[str, Any] = dict(self.throughput())
        out["categories"] = breakdown
        out["fractions"] = fractions
        out["counters"] = dict(sorted(self.counts.items()))
        out["coverage_error"] = self.coverage_error()
        return out

    def render(self, top_k: int = 12) -> str:
        """A printable breakdown: throughput header, the top categories
        with shares, and the hot-loop counters."""
        total = self.total_wall_s
        thr = self.throughput()
        parts = [
            f"Self-profile: {total:.3f}s wall, "
            f"{int(thr['events_processed'])} events "
            f"({thr['events_per_wall_s']:,.0f} events/s, "
            f"{thr['sim_s_per_wall_s']:.2f} sim-s/wall-s; "
            f"coverage error {100 * self.coverage_error():.3f}%)",
        ]
        ranked = sorted(self.breakdown().items(), key=lambda kv: -kv[1])
        for category, secs in ranked[:top_k]:
            share = 100.0 * secs / total if total > 0 else 0.0
            parts.append(f"  {category:<28} {secs:9.4f}s  {share:5.1f}%")
        if self.counts:
            counters = ", ".join(
                f"{k}={v}" for k, v in sorted(self.counts.items())
            )
            parts.append(f"  counters: {counters}")
        return "\n".join(parts)

    def __repr__(self) -> str:
        state = (
            "finished"
            if self._finished_at is not None
            else "attached"
            if self._runtime is not None
            else "idle"
        )
        return (
            f"<SelfProfiler {state}, {len(self.seconds)} categories, "
            f"{self.counts.get('events_processed', 0)} events>"
        )
