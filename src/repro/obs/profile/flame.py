"""Collapsed-stack (folded) export and standalone SVG flamegraphs.

Two producers feed the same folded format (one ``parent;child;leaf
value`` line per stack, the Brendan Gregg convention every flamegraph
tool reads):

- :func:`folded_from_profiler` -- the :class:`~repro.obs.profile.core.
  SelfProfiler` already keeps exclusive microseconds per *scope path*
  (category stacks like ``engine.dispatch.task;bus.publish``), so its
  export is exact.
- :func:`folded_from_cprofile` -- a :class:`CProfileCapture` wraps
  :mod:`cProfile` for function-level detail; since cProfile records a
  caller *graph* rather than stacks, stacks are reconstructed
  approximately by distributing each function's time over its callers
  proportionally (the flameprof technique).  Good for "which Python
  function is hot", not for exact attribution -- the scoped profiler
  owns the sums-to-total invariant.

:func:`render_flamegraph_svg` draws the folded data as a single
self-contained SVG string -- inline styles, embedded JS for hover
titles via ``<title>`` only, zero external references -- so the file
opens standalone from disk, matching the offline contract the HTML run
explorer pins.
"""

from __future__ import annotations

import cProfile
import html
import pstats
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Maximum stack depth reconstructed from a cProfile caller graph.
MAX_CPROFILE_DEPTH = 24

#: Fraction of root time below which a frame is dropped from the SVG.
MIN_FRAME_FRACTION = 1e-4


class CProfileCapture:
    """Opt-in :mod:`cProfile` capture for function-level flamegraphs.

    Used by ``python -m repro.obs profile --cprofile``; deliberately
    *not* enabled by the benchmarks ``--profile`` flag, whose wall-time
    numbers must stay honest -- cProfile's per-call hook would inflate
    them far past the scoped profiler's <5% budget.
    """

    def __init__(self) -> None:
        self._profile = cProfile.Profile()
        self._running = False

    def start(self) -> None:
        """Begin capturing (idempotent)."""
        if not self._running:
            self._profile.enable()
            self._running = True

    def stop(self) -> None:
        """Stop capturing (idempotent)."""
        if self._running:
            self._profile.disable()
            self._running = False

    def stats(self) -> pstats.Stats:
        """The captured :class:`pstats.Stats` (stops the capture)."""
        self.stop()
        return pstats.Stats(self._profile)

    def folded(self) -> Dict[Tuple[str, ...], float]:
        """Approximate folded stacks (seconds per path) from the
        capture, via :func:`folded_from_cprofile`."""
        return folded_from_cprofile(self.stats())

    def __enter__(self) -> "CProfileCapture":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def folded_from_profiler(profiler: Any) -> Dict[Tuple[str, ...], float]:
    """Exact folded stacks (exclusive seconds per category path) from a
    :class:`~repro.obs.profile.core.SelfProfiler`, plus its untracked
    residue as a root-level frame so the flame sums to total wall time."""
    folded: Dict[Tuple[str, ...], float] = {
        path: secs for path, secs in profiler.folded.items() if secs > 0
    }
    untracked = profiler.untracked_s()
    if untracked > 0:
        folded[("untracked",)] = folded.get(("untracked",), 0.0) + untracked
    return folded


def _frame_label(func: Tuple[str, int, str]) -> str:
    """``file:line(name)`` label for a cProfile function triple, with
    the path shortened to its last two components."""
    filename, lineno, name = func
    if filename == "~":
        return name  # builtins: '~', 0, "<built-in method ...>"
    short = "/".join(Path(filename).parts[-2:])
    return f"{short}:{lineno}({name})"


def folded_from_cprofile(
    stats: pstats.Stats, max_depth: int = MAX_CPROFILE_DEPTH
) -> Dict[Tuple[str, ...], float]:
    """Approximate folded stacks from a cProfile caller graph.

    cProfile stores, per function, total/cumulative time and a mapping
    of callers with per-edge call counts and times.  True stacks are
    gone, so each function's *own* (tt) time is attributed to a single
    reconstructed stack by walking the most-expensive caller edge
    upward (flameprof does a proportional split; the dominant-path walk
    keeps the output small and is just as readable).  Recursion and
    depth are clamped at ``max_depth``.
    """
    raw: Mapping[Any, Any] = stats.stats  # type: ignore[attr-defined]
    folded: Dict[Tuple[str, ...], float] = {}
    for func, (_cc, _nc, tt, _ct, _callers) in raw.items():
        if tt <= 0:
            continue
        stack: List[str] = [_frame_label(func)]
        node = func
        seen = {func}
        while len(stack) < max_depth:
            callers = raw[node][4]
            if not callers:
                break
            parent = max(
                callers.items(), key=lambda item: item[1][3]  # edge ct
            )[0]
            if parent in seen:
                break
            seen.add(parent)
            stack.append(_frame_label(parent))
            node = parent
        folded[tuple(reversed(stack))] = (
            folded.get(tuple(reversed(stack)), 0.0) + tt
        )
    return folded


def folded_lines(folded: Mapping[Tuple[str, ...], float]) -> List[str]:
    """The folded mapping as canonical ``a;b;c value`` text lines
    (microsecond integer values, sorted), ready for any external
    flamegraph tool."""
    lines = []
    for path, secs in sorted(folded.items()):
        micros = int(round(secs * 1e6))
        if micros <= 0:
            continue
        lines.append(";".join(path) + f" {micros}")
    return lines


class _Frame:
    """One box in the flamegraph: a path prefix with aggregate time."""

    __slots__ = ("name", "value", "children", "self_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.self_value = 0.0
        self.children: Dict[str, "_Frame"] = {}


def _build_tree(folded: Mapping[Tuple[str, ...], float]) -> _Frame:
    root = _Frame("all")
    for path, secs in folded.items():
        if secs <= 0:
            continue
        root.value += secs
        node = root
        for part in path:
            child = node.children.get(part)
            if child is None:
                child = node.children[part] = _Frame(part)
            child.value += secs
            node = child
        node.self_value += secs
    return root


#: Colour palette keyed by top-level category stem (engine / bus /
#: metrics / driver / obs / untracked / other), warm flame hues.
_PALETTE = {
    "engine": "#e4593b",
    "bus": "#e99c3b",
    "metrics": "#d4b13c",
    "driver": "#c4533a",
    "span": "#e07a45",
    "trace": "#cc8550",
    "untracked": "#b8b2a7",
}


def _color(name: str, depth: int) -> str:
    stem = name.split(".", 1)[0].split(":", 1)[0].split("(", 1)[0]
    base = _PALETTE.get(stem)
    if base is None:
        base = "#e9773e" if depth % 2 else "#f0934b"
    return base


def render_flamegraph_svg(
    folded: Mapping[Tuple[str, ...], float],
    title: str = "repro self-profile",
    width: int = 1200,
) -> str:
    """Render folded stacks as a single standalone SVG document.

    Pure inline SVG: embedded ``<style>``, per-frame ``<title>`` hover
    tooltips (name, seconds, share), no scripts and no external
    references -- the file opens directly from disk in any browser,
    the same offline contract the live HTML explorer pins.
    """
    root = _build_tree(folded)
    total = root.value
    row_h, pad, header = 17, 2, 38
    boxes: List[Tuple[float, float, int, _Frame]] = []  # x, w, depth, frame

    def layout(frame: _Frame, x: float, depth: int, scale: float) -> int:
        max_depth = depth
        cursor = x
        for name in sorted(frame.children):
            child = frame.children[name]
            w = child.value * scale
            if total > 0 and child.value / total >= MIN_FRAME_FRACTION:
                boxes.append((cursor, w, depth, child))
                max_depth = max(max_depth, layout(child, cursor, depth + 1, scale))
            cursor += w
        return max_depth

    scale = (width - 2 * pad) / total if total > 0 else 0.0
    depth = layout(root, pad, 0, scale) if total > 0 else 0
    height = header + (depth + 1) * (row_h + 1) + pad

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="Menlo, Consolas, monospace" font-size="11">',
        "<style>.f rect{stroke:#fff;stroke-width:0.5;rx:1}"
        ".f text{fill:#1b1b1b;pointer-events:none}"
        ".f:hover rect{stroke:#000}</style>",
        f'<rect width="{width}" height="{height}" fill="#fbf7f2"/>',
        f'<text x="{pad + 2}" y="16" font-size="14" font-weight="bold">'
        f"{html.escape(title)}</text>",
        f'<text x="{pad + 2}" y="31" fill="#666">total '
        f"{total:.4f}s wall &#183; hover a frame for its share</text>",
    ]
    for x, w, d, frame in boxes:
        if w < 0.5:
            w = 0.5
        y = header + d * (row_h + 1)
        share = 100.0 * frame.value / total if total > 0 else 0.0
        tooltip = html.escape(
            f"{frame.name}: {frame.value:.4f}s ({share:.2f}% of total)"
        )
        label = ""
        if w > 40:
            chars = max(1, int(w / 6.4) - 1)
            label = (
                f'<text x="{x + 3:.1f}" y="{y + 12}">'
                f"{html.escape(frame.name[:chars])}</text>"
            )
        parts.append(
            f'<g class="f"><title>{tooltip}</title>'
            f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{row_h}" '
            f'fill="{_color(frame.name, d)}"/>{label}</g>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_flamegraph(
    folded: Mapping[Tuple[str, ...], float],
    svg_path: Path,
    title: str = "repro self-profile",
    folded_path: Optional[Path] = None,
) -> Path:
    """Write the standalone SVG (and optionally the raw folded text
    beside it) and return the SVG path."""
    svg_path = Path(svg_path)
    svg_path.parent.mkdir(parents=True, exist_ok=True)
    svg_path.write_text(render_flamegraph_svg(folded, title=title))
    if folded_path is not None:
        Path(folded_path).write_text(
            "\n".join(folded_lines(folded)) + "\n"
        )
    return svg_path
