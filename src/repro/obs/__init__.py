"""Run-wide observability plane: event bus, span tracer, metric registry.

The paper's central claim -- shuffle-as-a-library matching monolithic
shuffle systems -- is only checkable if the data plane is *visible*:
spill/restore traffic, pipelined prefetching, scheduler placement, and
recovery after faults (Exoshuffle §5, Figs 4-9).  This package is the
measurement substrate the runtime, scheduler, object store, spilling
layer, node manager, jobs control plane, and chaos injector all publish
into:

- :class:`~repro.obs.events.EventBus` -- typed, timestamped, causally
  linked events with node/job/task/object attribution (one bus per
  :class:`~repro.futures.Runtime`);
- :mod:`repro.obs.trace` -- derives causal spans (task lifecycle,
  transfers, spill/restore I/O, job admission-to-completion) from the
  bus and exports Chrome-trace JSON and JSONL;
- :class:`~repro.obs.registry.MetricRegistry` -- counters, gauges, and
  histograms with per-node and per-job dimensions plus snapshot/delta
  reports;
- :mod:`repro.obs.report` -- the run reporter behind
  ``python -m repro.obs``: phase breakdowns, top-k slowest tasks,
  per-tenant fairness, spill amplification, fault/retry timelines;
- :mod:`repro.obs.perf` -- the analysis tier on top of the spans:
  critical-path extraction and bottleneck attribution
  (``python -m repro.obs critpath``), per-node utilization timelines
  (``usage``), and the benchmark baseline/regression gate (``diff``);
- :mod:`repro.obs.live` -- the live ops plane: fixed-interval
  time-series sampling of the bus (live or replayed, bit-for-bit
  identical), the terminal dashboard (``python -m repro.obs live``),
  and the single-file offline HTML run explorer (``html``);
- :mod:`repro.obs.profile` -- the self-observability tier: the
  simulator measuring its *own* wall-clock time
  (:class:`~repro.obs.profile.SelfProfiler` scoped attribution,
  hot-loop counters, events-per-wall-second throughput, flamegraph
  export; ``python -m repro.obs profile``).

See ``docs/observability.md`` for the event taxonomy and span model,
``docs/perf.md`` for the analysis methodology, ``docs/live.md``
for the live ops plane, and ``docs/profiling.md`` for the
self-profiler.
"""

from repro.obs.events import EVENT_KINDS, EventBus, ObsEvent
from repro.obs.live import (
    LiveDashboard,
    TimeSeriesSampler,
    render_html,
    write_html,
)
from repro.obs.perf import (
    CriticalPath,
    DiffReport,
    UsageTimeline,
    compare_benches,
    critical_path,
    derive_usage,
)
from repro.obs.profile import SelfProfiler
from repro.obs.registry import GLOBAL_DIM, MetricRegistry
from repro.obs.report import RunReport, record_run
from repro.obs.trace import (
    Span,
    derive_spans,
    export_span_jsonl,
    span_chrome_events,
    write_chrome_trace,
)

__all__ = [
    "EVENT_KINDS",
    "EventBus",
    "ObsEvent",
    "MetricRegistry",
    "GLOBAL_DIM",
    "RunReport",
    "record_run",
    "Span",
    "derive_spans",
    "span_chrome_events",
    "export_span_jsonl",
    "write_chrome_trace",
    "CriticalPath",
    "critical_path",
    "UsageTimeline",
    "derive_usage",
    "DiffReport",
    "compare_benches",
    "TimeSeriesSampler",
    "LiveDashboard",
    "render_html",
    "write_html",
    "SelfProfiler",
]
