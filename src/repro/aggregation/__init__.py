"""Online aggregation with streaming shuffle (§3.2.1, §5.2.1, Fig 5)."""

from repro.aggregation.app import (
    AggregationResult,
    kl_divergence,
    run_online_aggregation,
)

__all__ = ["AggregationResult", "kl_divergence", "run_online_aggregation"]
