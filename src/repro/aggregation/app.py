"""The online-aggregation application: top pages by language.

Two modes over the same inputs and operators:

- ``batch``: one simple shuffle over every hourly block; the aggregate
  exists only when the whole job finishes.
- ``streaming``: the streaming tier's round driver
  (:func:`repro.streaming.rounds.drive_rounds`, bit-for-bit equivalent
  to :func:`repro.shuffle.streaming_shuffle` at one in-flight round) in
  rounds; after each round an asynchronous aggregate task computes the
  partial ranking and its KL-divergence from the ground truth (the
  paper's error metric, footnote 4), giving the error-vs-time curve of
  Fig 5.

Per the paper, streaming pays extra total run time (the per-round
aggregates and round barriers) in exchange for partial results orders of
magnitude earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.futures import ObjectRef, Runtime
from repro.metrics.core import TimeSeries
from repro.plan import JobShape, ShuffleExpr, planner_for_runtime
from repro.shuffle import push_based_shuffle, simple_shuffle
from repro.shuffle.common import chunks
from repro.streaming.rounds import drive_rounds
from repro.workloads.pageviews import PageviewBlock, PageviewDataset


def kl_divergence(p: np.ndarray, p_hat: np.ndarray) -> float:
    """D_KL(p || p_hat) with the usual epsilon guard."""
    eps = 1e-12
    p = np.asarray(p, dtype=np.float64) + eps
    q = np.asarray(p_hat, dtype=np.float64) + eps
    p, q = p / p.sum(), q / q.sum()
    return float(np.sum(p * np.log(p / q)))


class PartialCounts:
    """Per-reducer accumulated counts with a declared byte size."""

    __slots__ = ("counts", "size_bytes")

    def __init__(self, counts: Dict[str, np.ndarray], size_bytes: int) -> None:
        self.counts = counts
        self.size_bytes = size_bytes

    @staticmethod
    def merge(parts: Sequence["PartialCounts"]) -> "PartialCounts":
        merged: Dict[str, np.ndarray] = {}
        for part in parts:
            for lang, counts in part.counts.items():
                if lang in merged:
                    merged[lang] = merged[lang] + counts
                else:
                    merged[lang] = counts.copy()
        size = max(p.size_bytes for p in parts)
        return PartialCounts(merged, size)


@dataclass
class AggregationResult:
    """Everything Fig 5 plots for one mode."""

    mode: str
    total_seconds: float
    error_series: TimeSeries
    map_progress: TimeSeries
    reduce_progress: TimeSeries
    final_error: float
    stats: Dict[str, Any] = field(default_factory=dict)

    def first_time_within(self, error: float) -> float:
        """Earliest simulated time with partial error <= ``error``."""
        for t, value in self.error_series.samples:
            if value <= error:
                return t
        return float("inf")


def _make_operators(dataset: PageviewDataset, num_reduces: int):
    """map/reduce/error operators shared by both modes.

    Map tasks stream their hour straight from the object store's S3-like
    source (the paper loads from S3): the input never occupies the object
    store, only the small per-reducer aggregates do.
    """
    lang_index = {lang: i for i, lang in enumerate(dataset.languages)}
    out_bytes = max(1, dataset.block_bytes // num_reduces)

    def map_fn(hour: int) -> List[PartialCounts]:
        block: PageviewBlock = dataset.hourly_block(hour)
        outputs: List[Dict[str, np.ndarray]] = [
            {} for _ in range(num_reduces)
        ]
        for lang, counts in block.counts.items():
            outputs[lang_index[lang] % num_reduces][lang] = counts
        return [PartialCounts(out, out_bytes) for out in outputs]

    def batch_reduce(*parts: PartialCounts) -> PartialCounts:
        return PartialCounts.merge(list(parts))

    def streaming_reduce(
        state: Optional[PartialCounts], *parts: PartialCounts
    ) -> PartialCounts:
        merged = list(parts) if state is None else [state, *parts]
        result = PartialCounts.merge(merged)
        # The "extra computation needed to produce partial results"
        # (§5.2.1): every round re-ranks the accumulated state so a
        # consumable top-pages answer exists, not just raw counts.
        for counts in result.counts.values():
            np.argsort(counts)
        return result

    truth = dataset.final_distribution()

    def error_of(states: Sequence[PartialCounts]) -> float:
        errors = []
        for state in states:
            for lang, counts in state.counts.items():
                total = counts.sum()
                if total <= 0:
                    continue
                errors.append(kl_divergence(truth[lang], counts / total))
        return float(np.mean(errors)) if errors else float("inf")

    return map_fn, batch_reduce, streaming_reduce, error_of


#: Effective S3 read throughput per map task.
S3_READ_BYTES_PER_SEC = 600e6


def _scan_cost(ctx) -> float:
    return (ctx.input_bytes + ctx.output_bytes) / 1e9  # ~1 GB/s scan+hash


def _make_map_cost(block_bytes: int):
    """Map cost: S3 read of the hour plus the scan+hash over it."""

    def map_cost(ctx) -> float:
        return (
            block_bytes / S3_READ_BYTES_PER_SEC
            + (block_bytes + ctx.output_bytes) / 1e9
        )

    return map_cost


def _streaming_reduce_cost(ctx) -> float:
    # scan+hash plus the per-round re-ranking of the full state.
    return _scan_cost(ctx) + ctx.output_bytes / 2e8


def run_online_aggregation(
    rt: Runtime,
    dataset: PageviewDataset,
    num_reduces: int = 8,
    mode: str = "streaming",
    hours_per_round: int = 12,
    variant: str = "simple",
) -> AggregationResult:
    """Run one mode end to end on ``rt`` (blocking).

    ``variant`` pins the batch arm's shuffle (``"simple"`` is Fig 5's
    contrast arm and the default); ``"auto"`` lets :mod:`repro.plan`
    choose between ``simple`` and ``push`` from the dataset size.
    Ignored in streaming mode, which always uses the round driver.
    """
    if mode not in ("streaming", "batch"):
        raise ValueError(f"unknown mode {mode!r}")
    map_fn, batch_reduce, streaming_reduce, error_of = _make_operators(
        dataset, num_reduces
    )
    error_series = TimeSeries("partial_error")
    map_cost = _make_map_cost(dataset.block_bytes)

    def record_error_on_completion(agg_ref: ObjectRef) -> None:
        def on_ready(_oid, error: Optional[BaseException]) -> None:
            if error is None:
                error_series.record(rt.env.now, rt.peek(agg_ref))

        rt.directory.on_ready(agg_ref.object_id, on_ready)

    aggregate_task = rt.remote(
        lambda *states: error_of(states), compute=5e-3
    )
    keepalive: List[ObjectRef] = []

    def driver() -> float:
        inputs = list(range(dataset.num_hours))
        start = rt.timestamp()
        if mode == "batch":
            plan = planner_for_runtime(rt).plan(
                ShuffleExpr(
                    shape=JobShape(
                        total_bytes=dataset.num_hours * dataset.block_bytes,
                        num_maps=dataset.num_hours,
                        num_reduces=num_reduces,
                    ),
                    backend=variant,
                    variants=("simple", "push"),
                    label="aggregation",
                ),
                default_rule="empirical",
            )
            if plan.variant == "push":
                states = push_based_shuffle(
                    rt, inputs, map_fn, batch_reduce, batch_reduce,
                    num_reduces,
                    map_options={"compute": map_cost},
                    merge_options={"compute": _scan_cost},
                    reduce_options={"compute": _scan_cost},
                )
            else:
                states = simple_shuffle(
                    rt, inputs, map_fn, batch_reduce, num_reduces,
                    map_options={"compute": map_cost},
                    reduce_options={"compute": _scan_cost},
                )
        else:
            rounds = chunks(inputs, hours_per_round)

            def on_round(_rnd: int, state_refs: List[ObjectRef]) -> None:
                agg_ref = aggregate_task.remote(*state_refs)
                keepalive.append(agg_ref)
                record_error_on_completion(agg_ref)

            states = drive_rounds(
                rt, rounds, map_fn, streaming_reduce, num_reduces,
                on_round=on_round,
                map_options={"compute": map_cost},
                reduce_options={"compute": _streaming_reduce_cost},
            )
        finals = rt.get(states)
        final_error = error_of(finals)
        error_series.record(rt.timestamp(), final_error)
        return rt.timestamp() - start, final_error

    total_seconds, final_error = rt.run(driver)
    map_progress, reduce_progress = _progress_series(rt)
    return AggregationResult(
        mode=mode,
        total_seconds=total_seconds,
        error_series=error_series,
        map_progress=map_progress,
        reduce_progress=reduce_progress,
        final_error=final_error,
        stats=rt.stats(),
    )


def _progress_series(rt: Runtime) -> tuple:
    """Fractions of map/reduce tasks finished over time (Fig 5's dotted
    and solid progress lines), reconstructed from task records."""
    map_times: List[float] = []
    reduce_times: List[float] = []
    for record in rt.tasks.values():
        if record.finished_at is None:
            continue
        name = record.spec.fn_name
        if name == "map_fn":
            map_times.append(record.finished_at)
        elif name in ("batch_reduce", "streaming_reduce"):
            reduce_times.append(record.finished_at)
    series = []
    for times, label in ((map_times, "map"), (reduce_times, "reduce")):
        progress = TimeSeries(label)
        for i, t in enumerate(sorted(times), start=1):
            progress.record(t, i / max(1, len(times)))
        series.append(progress)
    return series[0], series[1]
