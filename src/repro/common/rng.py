"""Deterministic randomness helpers.

Every stochastic choice in the reproduction (record keys, Zipf page
popularity, scheduler tie-breaking jitter, failure times) flows from an
explicit seed so that tests and benchmark tables are exactly repeatable.
``derive_seed`` splits a root seed into independent streams by name, so
adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation hashes the path, so streams are independent and stable:

    >>> derive_seed(7, "map", 3) == derive_seed(7, "map", 3)
    True
    >>> derive_seed(7, "map", 3) != derive_seed(7, "map", 4)
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def seeded_rng(root_seed: int, *names: object) -> np.random.Generator:
    """Return a numpy ``Generator`` seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *names))
