"""Deterministic randomness helpers.

Every stochastic choice in the reproduction (record keys, Zipf page
popularity, scheduler tie-breaking jitter, failure times) flows from an
explicit seed so that tests and benchmark tables are exactly repeatable.
``derive_seed`` splits a root seed into independent streams by name, so
adding a new consumer never perturbs existing ones.

Subsystems that want a *named* stream -- one whose derivation path is
declared once and reused everywhere -- register it with
:func:`register_stream` and draw from it with :func:`named_rng`.  The
registry makes stream identities explicit and collision-checked: two
subsystems cannot silently share (and therefore correlate) a stream, and
renaming a path is a reviewable one-line change.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    The derivation hashes the path, so streams are independent and stable:

    >>> derive_seed(7, "map", 3) == derive_seed(7, "map", 3)
    True
    >>> derive_seed(7, "map", 3) != derive_seed(7, "map", 4)
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "big")


def seeded_rng(root_seed: int, *names: object) -> np.random.Generator:
    """Return a numpy ``Generator`` seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(root_seed, *names))


#: Registered named streams: stream name -> derivation path.
_NAMED_STREAMS: Dict[str, Tuple[object, ...]] = {}


def register_stream(name: str, *path: object) -> None:
    """Declare a named RNG stream deriving from ``path``.

    Idempotent for identical re-registration; raises ``ValueError`` when
    the name is already bound to a *different* path (a collision that
    would correlate two supposedly independent streams).
    """
    key = tuple(path) if path else (name,)
    existing = _NAMED_STREAMS.get(name)
    if existing is not None:
        if existing != key:
            raise ValueError(
                f"RNG stream {name!r} already registered with path "
                f"{existing!r}, refusing to rebind to {key!r}"
            )
        return
    _NAMED_STREAMS[name] = key


def named_rng(root_seed: int, name: str, *extra: object) -> np.random.Generator:
    """A generator for the registered stream ``name`` under ``root_seed``.

    ``extra`` path elements split the stream further (e.g. per job index)
    without registering each split.  Raises ``KeyError`` for streams
    never registered -- typos fail loudly instead of minting ad-hoc
    streams.
    """
    path = _NAMED_STREAMS.get(name)
    if path is None:
        raise KeyError(
            f"RNG stream {name!r} is not registered; call register_stream first"
        )
    return seeded_rng(root_seed, *path, *extra)


#: Stream ordering multi-tenant job arrivals (registered here so every
#: consumer -- workload builder, benchmarks, tests -- shares one path).
JOB_ARRIVAL_STREAM = "jobs/arrival"
register_stream(JOB_ARRIVAL_STREAM, "jobs", "arrival")
