"""Shared building blocks: units, identifiers, errors, seeded randomness."""

from repro.common.errors import (
    LineageReconstructionError,
    ObjectLostError,
    OutOfMemoryError,
    ReproError,
    SchedulingError,
    TaskExecutionError,
)
from repro.common.ids import IdGenerator, NodeId, ObjectId, TaskId
from repro.common.rng import derive_seed, seeded_rng
from repro.common.units import (
    GB,
    GIB,
    KB,
    KIB,
    MB,
    MIB,
    TB,
    format_bytes,
    format_duration,
    parse_bytes,
)

__all__ = [
    "ReproError",
    "OutOfMemoryError",
    "ObjectLostError",
    "TaskExecutionError",
    "SchedulingError",
    "LineageReconstructionError",
    "IdGenerator",
    "NodeId",
    "ObjectId",
    "TaskId",
    "derive_seed",
    "seeded_rng",
    "KB",
    "KIB",
    "MB",
    "MIB",
    "GB",
    "GIB",
    "TB",
    "format_bytes",
    "format_duration",
    "parse_bytes",
]
