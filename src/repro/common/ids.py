"""Typed identifiers for nodes, tasks, and objects.

The runtime tracks per-task and per-object metadata explicitly (the paper's
"each task and object is an independent unit"), so identifiers appear in
nearly every subsystem.  They are small immutable wrappers over an integer
with a type tag, cheap to hash and order, and render stably in logs
(``T00042``, ``O00317``, ``N003``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass(frozen=True, order=True)
class _BaseId:
    """An integer identity with a short printable prefix."""

    index: int
    _PREFIX: ClassVar[str] = "?"
    _WIDTH: ClassVar[int] = 5

    def __str__(self) -> str:
        return f"{self._PREFIX}{self.index:0{self._WIDTH}d}"

    def __repr__(self) -> str:
        return str(self)


class NodeId(_BaseId):
    _PREFIX = "N"
    _WIDTH = 3


class TaskId(_BaseId):
    _PREFIX = "T"


class ObjectId(_BaseId):
    _PREFIX = "O"


@dataclass
class IdGenerator:
    """Monotonic id factory, one per runtime instance.

    Keeping the counters on an instance (not module globals) makes runs
    reproducible: two runtimes constructed in the same process hand out the
    same id sequences.
    """

    _tasks: "itertools.count[int]" = field(default_factory=itertools.count)
    _objects: "itertools.count[int]" = field(default_factory=itertools.count)
    _nodes: "itertools.count[int]" = field(default_factory=itertools.count)

    def next_task_id(self) -> TaskId:
        return TaskId(next(self._tasks))

    def next_object_id(self) -> ObjectId:
        return ObjectId(next(self._objects))

    def next_node_id(self) -> NodeId:
        return NodeId(next(self._nodes))
