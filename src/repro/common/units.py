"""Byte and time units, with human-readable formatting and parsing.

All sizes in this codebase are plain ``int`` bytes and all simulated
durations are ``float`` seconds.  These helpers exist so that configuration
and log output can speak in the units the paper uses (MB blocks, GB
partitions, TB datasets) without ambiguity about decimal vs binary
multiples.
"""

from __future__ import annotations

import re

# Decimal units -- used for dataset sizes, matching the sort benchmark's
# definition (a "100 TB" dataset is 1e14 bytes of 100-byte records).
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

# Binary units -- used for memory capacities (a 64 GiB node).
KIB = 2**10
MIB = 2**20
GIB = 2**30

_SUFFIXES = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
}

_BYTES_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]+)\s*$")


def parse_bytes(text: str) -> int:
    """Parse a human-readable size such as ``"2GB"`` or ``"512 MiB"``.

    >>> parse_bytes("2GB")
    2000000000
    >>> parse_bytes("1 GiB")
    1073741824
    """
    match = _BYTES_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable byte size: {text!r}")
    value, suffix = match.groups()
    multiplier = _SUFFIXES.get(suffix.lower())
    if multiplier is None:
        raise ValueError(f"unknown byte suffix {suffix!r} in {text!r}")
    return int(float(value) * multiplier)


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a decimal suffix.

    >>> format_bytes(1500000)
    '1.50MB'
    """
    size = float(num_bytes)
    for suffix, scale in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(size) >= scale:
            return f"{size / scale:.2f}{suffix}"
    return f"{int(size)}B"


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit.

    >>> format_duration(93.5)
    '1m33.5s'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rem = divmod(seconds, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{rem:.1f}s"
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours}h{minutes}m{rem:.0f}s"
