"""Exception hierarchy shared across the runtime and applications."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """An allocation could not be satisfied even after spilling.

    Raised by stores that have no spill path (e.g. the Dask-style
    per-executor heap stores in :mod:`repro.baselines.dask`) or when a
    single object exceeds every fallback capacity.
    """


class ObjectLostError(ReproError):
    """An object's last copy was lost and could not be reconstructed."""

    def __init__(self, object_id: object, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"object {object_id} lost{detail}")
        self.object_id = object_id


class TaskExecutionError(ReproError):
    """A task's user function raised; carries the underlying cause."""

    def __init__(self, task_id: object, cause: BaseException) -> None:
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause


class RetryExhaustedError(ReproError):
    """A task exceeded its :class:`~repro.futures.retry.RetryPolicy`'s
    maximum execution attempts and will not be retried again."""

    def __init__(self, task_id: object, attempts: int) -> None:
        super().__init__(
            f"task {task_id} gave up after {attempts} attempts"
        )
        self.task_id = task_id
        self.attempts = attempts


class TaskDeadlineError(ReproError):
    """A task's per-task deadline elapsed before an attempt succeeded."""

    def __init__(self, task_id: object, deadline_s: float) -> None:
        super().__init__(
            f"task {task_id} missed its {deadline_s:g}s deadline"
        )
        self.task_id = task_id
        self.deadline_s = deadline_s


class InvariantViolationError(ReproError):
    """A runtime invariant check failed (see :mod:`repro.chaos.invariants`).

    Carries the full list of violation descriptions so a single failure
    reports everything that is wrong with the run.
    """

    def __init__(self, violations: list) -> None:
        summary = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        super().__init__(
            f"{len(violations)} invariant violation(s): {summary}{more}"
        )
        self.violations = list(violations)


class SchedulingError(ReproError):
    """A task could not be placed (e.g. no alive node satisfies it)."""


class JobControlError(ReproError):
    """Base class for multi-tenant job control plane errors
    (:mod:`repro.jobs`)."""


class UnknownTenantError(JobControlError):
    """A job named a tenant the admission controller has never seen."""

    def __init__(self, tenant: str) -> None:
        super().__init__(f"unknown tenant {tenant!r}; register it first")
        self.tenant = tenant


class TenantQuotaExceededError(JobControlError):
    """A job's resource demand exceeds its tenant's quota outright, so
    queueing it could never help -- it is rejected at submission."""

    def __init__(
        self, tenant: str, resource: str, needed: float, limit: float
    ) -> None:
        super().__init__(
            f"tenant {tenant!r} quota exceeded: job needs {needed:g} "
            f"{resource}, quota allows {limit:g}"
        )
        self.tenant = tenant
        self.resource = resource
        self.needed = needed
        self.limit = limit


class AdmissionQueueFullError(JobControlError):
    """A tenant's admission queue is at its bound; submitting more work
    must wait for earlier jobs to drain (backpressure, not buffering)."""

    def __init__(self, tenant: str, depth: int) -> None:
        super().__init__(
            f"tenant {tenant!r} admission queue full ({depth} jobs queued)"
        )
        self.tenant = tenant
        self.depth = depth


class JobCancelledError(JobControlError):
    """The job was cancelled before (or while) running."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id!r} was cancelled")
        self.job_id = job_id


class LineageReconstructionError(ReproError):
    """Reconstruction failed: lineage was truncated or inputs unrecoverable."""
