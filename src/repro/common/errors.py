"""Exception hierarchy shared across the runtime and applications."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class OutOfMemoryError(ReproError):
    """An allocation could not be satisfied even after spilling.

    Raised by stores that have no spill path (e.g. the Dask-style
    per-executor heap stores in :mod:`repro.baselines.dask`) or when a
    single object exceeds every fallback capacity.
    """


class ObjectLostError(ReproError):
    """An object's last copy was lost and could not be reconstructed."""

    def __init__(self, object_id: object, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"object {object_id} lost{detail}")
        self.object_id = object_id


class TaskExecutionError(ReproError):
    """A task's user function raised; carries the underlying cause."""

    def __init__(self, task_id: object, cause: BaseException) -> None:
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause


class SchedulingError(ReproError):
    """A task could not be placed (e.g. no alive node satisfies it)."""


class LineageReconstructionError(ReproError):
    """Reconstruction failed: lineage was truncated or inputs unrecoverable."""
