"""Pluggable task retry/backoff policies.

The seed reproduction retried failed work unconditionally and
immediately -- fine for the single fail-and-restart experiment of
§5.1.5, but a production shuffle service (FuxiShuffle's motivation)
needs bounded retries, exponential backoff so a flapping node is not
hammered, and per-task deadlines so a wedged task surfaces as a typed
error instead of an infinite loop.  :class:`RetryPolicy` packages those
knobs; the runtime consults it on every resubmission
(:meth:`~repro.futures.runtime.Runtime.resubmit_task` and the node-death
path) and the scheduler consults :attr:`blacklist` state it derives from
the same failures.

All jitter is deterministic: it is drawn from
:func:`repro.common.rng.seeded_rng` keyed on (seed, task, attempt), so a
re-run with the same seed produces byte-identical backoff sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.rng import seeded_rng


@dataclass(frozen=True)
class RetryPolicy:
    """How the runtime re-executes interrupted or reconstructed tasks.

    The default policy reproduces the seed behaviour exactly: unlimited
    attempts, zero backoff, no deadline -- so enabling the policy layer
    costs nothing unless a field is changed.
    """

    #: Maximum executions of one task (first run included); 0 = unlimited.
    #: Exceeding it fails the task with
    #: :class:`~repro.common.errors.RetryExhaustedError`.
    max_attempts: int = 0

    #: Backoff before retry ``n`` is ``base_backoff_s * multiplier**(n-1)``
    #: seconds, capped at ``max_backoff_s``; 0 disables backoff entirely.
    base_backoff_s: float = 0.0

    #: Growth factor of the exponential backoff sequence.
    backoff_multiplier: float = 2.0

    #: Upper bound on any single backoff delay, seconds.
    max_backoff_s: float = 60.0

    #: Each delay is scaled by a factor drawn uniformly from
    #: ``[1 - jitter_fraction, 1 + jitter_fraction]`` (deterministically,
    #: from the policy seed and the task/attempt being delayed).
    jitter_fraction: float = 0.0

    #: Wall-clock (simulated) budget from task submission; a resubmission
    #: past the deadline fails the task with
    #: :class:`~repro.common.errors.TaskDeadlineError`.  None disables.
    task_deadline_s: Optional[float] = None

    #: Root seed of the jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0 (0 = unlimited)")
        if self.base_backoff_s < 0:
            raise ValueError("base backoff must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ValueError("task deadline must be positive when set")

    # -- decisions ----------------------------------------------------------
    def should_retry(self, attempts: int) -> bool:
        """True if a task that has run ``attempts`` times may run again."""
        return self.max_attempts == 0 or attempts < self.max_attempts

    def deadline_exceeded(self, submitted_at: float, now: float) -> bool:
        """True if the per-task deadline has elapsed since submission."""
        return (
            self.task_deadline_s is not None
            and now - submitted_at > self.task_deadline_s
        )

    def backoff_s(self, attempt: int, task_key: object = 0) -> float:
        """Delay before retry number ``attempt`` (1-based) of one task.

        Deterministic in ``(seed, task_key, attempt)``; the jittered
        value always stays within ``[raw * (1 - j), raw * (1 + j)]`` of
        the un-jittered exponential value and never exceeds
        ``max_backoff_s * (1 + j)``.
        """
        if attempt < 1:
            raise ValueError("retry attempts are 1-based")
        if self.base_backoff_s <= 0:
            return 0.0
        raw = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter_fraction <= 0:
            return raw
        rng = seeded_rng(self.seed, "retry-jitter", task_key, attempt)
        scale = 1.0 + self.jitter_fraction * (2.0 * float(rng.random()) - 1.0)
        return raw * scale

    def backoff_sequence(self, retries: int, task_key: object = 0) -> List[float]:
        """The first ``retries`` backoff delays for one task (for tests
        and capacity planning)."""
        return [self.backoff_s(n, task_key) for n in range(1, retries + 1)]
