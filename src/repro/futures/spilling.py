"""Transparent object spilling with write fusing (§4.2.2, Fig 7).

When a node's allocation queue is backlogged, the spill manager migrates
unpinned primary objects from store memory to local disk.  With fusing
enabled (the default), victims are coalesced into files of at least
``fuse_min_bytes`` written with one sequential operation; with fusing
disabled each object becomes its own write and pays a seek -- this is the
Fig 7 ablation that is up to 12x slower for 100 KB objects.

If nothing is spillable and nothing is in flight, the manager falls back
to satisfying the oldest queued request directly on the filesystem,
preserving liveness ("Ray falls back to allocating task output objects on
the filesystem", §4.2.2).

With ``RuntimeConfig.spill_backend = "shared"`` the spill *destination*
changes: victim batches stream out the node's NIC into the cluster-wide
:class:`~repro.cluster.shared_store.SharedStoreBackend` instead of onto
the local disk, and the directory records a node-agnostic shared
location.  Spilled bytes then survive the node's death -- recovery
re-reads instead of re-executing lineage (see ``docs/elasticity.md``).
The liveness fallback stays on the local filesystem under both backends.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, ObjectId
from repro.futures.policies.base import SpillCandidate, SpillPolicy
from repro.futures.policies.defaults import FusedSpillPolicy
from repro.metrics.core import Counters

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.cluster.shared_store import SharedStoreBackend
    from repro.futures.config import RuntimeConfig
    from repro.futures.directory import ObjectDirectory
    from repro.futures.object_store import ObjectStore
    from repro.obs.events import EventBus


class SpillFile:
    """One on-disk file holding one or more fused objects.

    ``next_index`` tracks the read head: a restore of the object right
    after the previously restored one rides OS readahead and skips the
    seek; any other access (including the first) pays it.
    """

    __slots__ = (
        "file_id",
        "node_id",
        "total_bytes",
        "live_bytes",
        "num_objects",
        "next_index",
    )

    def __init__(self, file_id: int, node_id: NodeId, total_bytes: int,
                 num_objects: int) -> None:
        self.file_id = file_id
        self.node_id = node_id
        self.total_bytes = total_bytes
        self.live_bytes = total_bytes
        self.num_objects = num_objects
        self.next_index: Optional[int] = None


class SpillSlot:
    """An object's position inside a spill file."""

    __slots__ = ("file", "size", "index")

    def __init__(self, file: SpillFile, size: int, index: int = 0) -> None:
        self.file = file
        self.size = size
        self.index = index


class SpillManager:
    """Per-node spilling and restore logic."""

    def __init__(
        self,
        node: "Node",
        store: "ObjectStore",
        directory: "ObjectDirectory",
        config: "RuntimeConfig",
        counters: Counters,
        charge: Optional[Callable[[ObjectId, str, float], None]] = None,
        bus: Optional["EventBus"] = None,
        policy: Optional[SpillPolicy] = None,
    ) -> None:
        self.node = node
        self.env = node.env
        self.store = store
        self.directory = directory
        self.config = config
        self.counters = counters
        #: Victim-selection/batching policy; the default reproduces the
        #: config-flag behaviour (fusing per ``enable_write_fusing``).
        self.policy: SpillPolicy = policy or FusedSpillPolicy(
            fuse_min_bytes=config.fuse_min_bytes,
            fused=config.enable_write_fusing,
        )
        #: Optional structured event bus; spill writes, restore reads,
        #: and filesystem fallbacks publish begin/end events into it.
        self.bus = bus
        #: Optional per-object charge hook ``(object_id, counter, amount)``
        #: mirroring spill I/O into per-job accounting buckets (the global
        #: counters above are always charged directly).
        self.charge = charge
        self._file_ids = itertools.count()
        self._slots: Dict[ObjectId, SpillSlot] = {}
        self._in_flight = 0
        #: Predicate marking objects that queued local tasks will consume;
        #: those are spilled only as a last resort (set by NodeManager).
        self.needed_soon = lambda oid: False
        #: The disaggregated spill tier, set by the runtime when
        #: ``config.spill_backend == "shared"``; None keeps the seed
        #: local-disk behaviour byte-for-byte.
        self.shared: Optional["SharedStoreBackend"] = None

    # -- queries --------------------------------------------------------------
    def is_spilled(self, object_id: ObjectId) -> bool:
        """True if this node's disk holds a copy of the object."""
        return object_id in self._slots

    def _has_durable_copy(self, object_id: ObjectId) -> bool:
        """True if a spilled copy exists locally or in the shared tier
        (either way, dropping the memory copy loses nothing)."""
        if object_id in self._slots:
            return True
        return self.shared is not None and self.shared.contains(object_id)

    def slot(self, object_id: ObjectId) -> SpillSlot:
        """The spill slot of a locally spilled object."""
        return self._slots[object_id]

    def spilled_objects(self) -> List[ObjectId]:
        """Object ids with a copy on this node's disk (insertion order)."""
        return list(self._slots)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def spilled_bytes(self) -> int:
        """Total bytes currently held on this node's disk."""
        return sum(slot.size for slot in self._slots.values())

    # -- the pressure valve --------------------------------------------------
    def kick(self) -> None:
        """React to store pressure; called whenever the queue backlogs.

        The spill *policy* decides how much to move, which objects to
        victimise (soon-needed arguments only as a last resort), and how
        victims group into files; this method owns the mechanism around
        it -- the in-flight latch, dropping already-spilled memory
        copies, and the filesystem fallback that preserves liveness.
        """
        if not self.config.enable_spilling:
            self._fallback_if_stuck()
            return
        if self._in_flight > 0:
            return  # current spill will re-kick on completion
        if self.store.backlog == 0:
            return
        target = self.policy.target_bytes(self.store.backlog_bytes)
        candidates = [
            SpillCandidate(
                object_id=oid,
                size=size,
                needed_soon=self.needed_soon(oid),
                spilled=self._has_durable_copy(oid),
            )
            for oid, size in self.store.spillable_entries()
        ]
        last_resort = False
        victims = self.policy.select_victims(
            candidates, target, last_resort=False
        )
        if not victims:
            # Objects already spilled but still in memory can simply be
            # dropped -- their disk copy is authoritative.
            if self._drop_already_spilled():
                return
            # Last resort: spill even soon-needed objects to stay live.
            last_resort = True
            victims = self.policy.select_victims(
                candidates, target, last_resort=True
            )
        if not victims:
            self._fallback_if_stuck()
            return
        batches = self.policy.make_batches(victims)
        if self.bus is not None:
            self.bus.emit(
                "policy.decision",
                node=self.node.node_id,
                policy=f"spill:{self.policy.name}",
                decision="spill-victims",
                candidates=len(candidates),
                bytes=sum(victim.size for victim in victims),
                batches=len(batches),
                last_resort=last_resort,
            )
        for batch in batches:
            self._start_spill([(v.object_id, v.size) for v in batch])

    def _drop_already_spilled(self) -> bool:
        dropped = False
        for oid in self.store.objects():
            if self._has_durable_copy(oid) and self.store.is_primary(oid):
                self.store.demote_to_cached(oid)
                dropped = True
        if dropped:
            self.store.pump()
        return dropped

    def _start_spill(self, batch: List[Tuple[ObjectId, int]]) -> None:
        if self.shared is not None:
            self._start_spill_shared(batch)
            return
        total = sum(size for _, size in batch)
        file = SpillFile(
            next(self._file_ids), self.node.node_id, total, len(batch)
        )
        for oid, _size in batch:
            self.store.pin(oid)  # data must stay while being written
        self._in_flight += 1
        self.counters.add("spill_bytes_written", total)
        self.counters.add("spill_files", 1)
        self.counters.add("disk_bytes_written", total)
        if self.charge is not None:
            for oid, size in batch:
                self.charge(oid, "spill_bytes_written", size)
        begin = None
        if self.bus is not None:
            begin = self.bus.emit(
                "spill.write.begin",
                node=self.node.node_id,
                bytes=total,
                objects=len(batch),
                file=file.file_id,
            )
        # One sequential write per file; an unfused "file" per object means
        # one seek-bearing operation per object.
        write = self.node.disk.transfer(
            total,
            latency=self.node.disk.per_op_latency,
        )
        write.add_callback(
            lambda event: self._finish_spill(file, batch, event.ok, begin)
        )

    def _start_spill_shared(self, batch: List[Tuple[ObjectId, int]]) -> None:
        """Stream a victim batch out the NIC into the shared tier.

        The write pays both the node's NIC egress and the shared store's
        aggregate bandwidth (plus its per-request latency), whichever is
        slower; no local disk I/O happens.
        """
        total = sum(size for _, size in batch)
        file_id = next(self._file_ids)
        for oid, _size in batch:
            self.store.pin(oid)  # data must stay while being written
        self._in_flight += 1
        self.counters.add("spill_bytes_written", total)
        self.counters.add("spill_files", 1)
        self.counters.add("shared_bytes_written", total)
        if self.charge is not None:
            for oid, size in batch:
                self.charge(oid, "spill_bytes_written", size)
        begin = None
        if self.bus is not None:
            begin = self.bus.emit(
                "spill.write.begin",
                node=self.node.node_id,
                bytes=total,
                objects=len(batch),
                file=file_id,
                backend="shared",
            )
        write = self.env.all_of(
            [self.node.nic_out.transfer(total), self.shared.write(total)]
        )
        write.add_callback(
            lambda event: self._finish_spill_shared(batch, event.ok, begin)
        )

    def _finish_spill_shared(
        self,
        batch: List[Tuple[ObjectId, int]],
        ok: bool,
        begin: Optional[object] = None,
    ) -> None:
        for oid, _size in batch:
            self.store.unpin(oid)
        if self.bus is not None:
            self.bus.emit(
                "spill.write.end",
                node=self.node.node_id,
                cause=getattr(begin, "seq", None),
                ok=ok,
                backend="shared",
            )
        if not ok:
            # The NIC died mid-write (node failure); the bytes never
            # reached the tier, the store is being cleared by the death
            # handler.
            self._in_flight -= 1
            return
        for oid, size in batch:
            if oid not in self.directory:
                continue  # freed (refcount zero) while the write flew
            self.shared.add(oid, size)
            self.directory.add_shared_location(oid)
            # The memory copy is no longer authoritative; free it now to
            # relieve pressure.
            self.directory.remove_memory_location(oid, self.node.node_id)
            self.store.free(oid)
        self._in_flight -= 1
        self.store.pump()
        self.kick()

    def _finish_spill(
        self,
        file: SpillFile,
        batch: List[Tuple[ObjectId, int]],
        ok: bool,
        begin: Optional[object] = None,
    ) -> None:
        # Note: ``_in_flight`` stays held until all bookkeeping below is
        # done; intermediate ``free``/``pump`` calls re-enter ``kick`` and
        # must not start a new spill that re-selects this batch's objects.
        for oid, _size in batch:
            self.store.unpin(oid)
        if self.bus is not None:
            self.bus.emit(
                "spill.write.end",
                node=self.node.node_id,
                cause=getattr(begin, "seq", None),
                ok=ok,
                file=file.file_id,
            )
        if not ok:
            # The disk died mid-spill (node failure); the store is being
            # cleared by the death handler, nothing more to do.
            self._in_flight -= 1
            return
        for position, (oid, size) in enumerate(batch):
            if oid not in self.directory:
                # Freed (refcount zero) while the write was in flight.
                file.live_bytes -= size
                continue
            self._slots[oid] = SpillSlot(file, size, index=position)
            self.directory.add_spill_location(oid, self.node.node_id, self._slots[oid])
            # The memory copy is no longer authoritative; free it now to
            # relieve pressure.
            self.directory.remove_memory_location(oid, self.node.node_id)
            self.store.free(oid)
        self._in_flight -= 1
        self.store.pump()
        self.kick()

    def _fallback_if_stuck(self) -> None:
        """Grant the oldest queued request directly on the filesystem."""
        if self._in_flight > 0:
            return
        request = self.store.take_head_request()
        if request is None:
            return
        self.counters.add("fallback_allocations", 1)
        self.counters.add("disk_bytes_written", request.size)
        if self.bus is not None:
            self.bus.emit(
                "spill.fallback",
                node=self.node.node_id,
                obj=request.object_id,
                bytes=request.size,
            )
        write = self.node.disk_write(request.size, sequential=True)

        def done(event: object) -> None:
            file = SpillFile(
                next(self._file_ids), self.node.node_id, request.size, 1
            )
            slot = SpillSlot(file, request.size)
            self._slots[request.object_id] = slot
            self.directory.add_spill_location(
                request.object_id, self.node.node_id, slot
            )
            if not request.event.triggered:
                request.event.succeed("disk")
            self.store.pump()

        write.add_callback(done)

    def adopt(self, object_id: ObjectId, size: int) -> None:
        """Record an object written straight to disk by its creating task
        (``output_to_disk`` task option); the disk write was already
        charged by the caller."""
        file = SpillFile(next(self._file_ids), self.node.node_id, size, 1)
        slot = SpillSlot(file, size)
        self._slots[object_id] = slot
        self.directory.add_spill_location(object_id, self.node.node_id, slot)

    # -- restore --------------------------------------------------------------
    def restore_read(self, object_id: ObjectId):
        """Charge the disk read to bring a spilled object's bytes back.

        Access-pattern aware: reading the object immediately after the
        previously read one in the same fused file rides readahead (no
        seek); the first access to a file and any out-of-order access pay
        the full seek.  Restoring a fused file front to back (the Fig 7
        microbenchmark, push-shuffle merged runs) is therefore nearly
        sequential, while scattered reads of tiny blocks (simple shuffle
        at high partition counts) hit the seek wall.
        """
        slot = self._slots[object_id]
        file = slot.file
        sequential = file.next_index is not None and slot.index == file.next_index
        file.next_index = slot.index + 1
        latency = 0.0 if sequential else None
        self.counters.add("spill_bytes_read", slot.size)
        self.counters.add("disk_bytes_read", slot.size)
        if self.charge is not None:
            self.charge(object_id, "spill_bytes_read", slot.size)
        begin = None
        if self.bus is not None:
            begin = self.bus.emit(
                "spill.restore.begin",
                node=self.node.node_id,
                obj=object_id,
                bytes=slot.size,
                sequential=sequential,
            )
        read = self.node.disk.transfer(slot.size, latency=latency)
        if self.bus is not None:
            begin_seq = getattr(begin, "seq", None)
            read.add_callback(
                lambda _event: self.bus.emit(
                    "spill.restore.end",
                    node=self.node.node_id,
                    obj=object_id,
                    cause=begin_seq,
                )
            )
        return read

    def shared_restore_read(self, object_id: ObjectId):
        """Charge the read bringing a shared-tier object to this node.

        Pays the node's NIC ingress and the shared store's bandwidth
        (plus its per-request latency); any node can issue this --
        including one that never wrote the object -- which is what makes
        the tier durable against node loss.
        """
        size = self.shared.size_of(object_id)
        self.counters.add("spill_bytes_read", size)
        self.counters.add("shared_bytes_read", size)
        if self.charge is not None:
            self.charge(object_id, "spill_bytes_read", size)
        begin = None
        if self.bus is not None:
            begin = self.bus.emit(
                "spill.restore.begin",
                node=self.node.node_id,
                obj=object_id,
                bytes=size,
                backend="shared",
            )
        read = self.env.all_of(
            [self.node.nic_in.transfer(size), self.shared.read(size)]
        )
        if self.bus is not None:
            begin_seq = getattr(begin, "seq", None)
            read.add_callback(
                lambda _event: self.bus.emit(
                    "spill.restore.end",
                    node=self.node.node_id,
                    obj=object_id,
                    cause=begin_seq,
                    backend="shared",
                )
            )
        return read

    # -- GC / failure ------------------------------------------------------
    def forget(self, object_id: ObjectId) -> None:
        """Release an object's spill slot (its refcount hit zero)."""
        slot = self._slots.pop(object_id, None)
        if slot is not None:
            slot.file.live_bytes -= slot.size
            self.directory.remove_spill_location(object_id, self.node.node_id)

    def clear(self) -> List[ObjectId]:
        """Node death: all local spill files are gone.

        Directory locations are deliberately left stale; the runtime's
        failure-detection handler removes them after the heartbeat timeout.
        """
        lost = list(self._slots)
        self._slots.clear()
        self._in_flight = 0
        return lost
