"""The per-node manager: object store, spilling, fetching, and execution.

This is the paper's generic ``NodeManager`` (Fig 3b): the one process per
node that owns the shared-memory object store and coordinates block
movement, replacing the external shuffle service of monolithic designs.
Executors stay stateless -- a task's outputs live in the store, so executor
(process) failures lose no data, and node failures are handled by lineage
reconstruction at the runtime level.

Execution flow per task (one simulation process each):

1. *Fetch* arguments.  With prefetching enabled (§4.2.2) this happens
   before a core is acquired, bounded by a fetch-concurrency semaphore, so
   argument I/O overlaps other tasks' execution.  With it disabled the
   task first occupies a core and then waits for I/O -- the Fig 7
   ablation.
2. *Execute*: charge the per-task overhead and the modelled compute time
   while holding a core; run the real Python function to produce real (or
   virtual) payloads.
3. *Store* outputs: allocate store memory (which may queue, spill, or fall
   back to disk) or, for ``output_to_disk`` tasks, write straight to disk.
   Generator tasks interleave compute and stores per yielded value, which
   is what bounds their memory footprint (§4.3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List

from repro.cluster.fabric import NodeFailure
from repro.common.errors import ObjectLostError, TaskExecutionError
from repro.common.ids import NodeId, ObjectId
from repro.futures.object_store import ObjectStore
from repro.futures.spilling import SpillManager
from repro.futures.task import (
    CostContext,
    PlainArg,
    TaskPhase,
    TaskRecord,
    TaskSpec,
)
from repro.futures.sizing import size_of
from repro.simcore import Event, Interrupt, Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.futures.runtime import Runtime


class NodeManager:
    """Owns one node's store, spill manager, and task execution."""

    def __init__(self, runtime: "Runtime", node: "Node") -> None:
        self.runtime = runtime
        self.node = node
        self.env = node.env
        self.node_id: NodeId = node.node_id
        self.store = ObjectStore(
            self.env,
            node.node_id,
            node.spec.object_store_bytes,
            on_pressure=self._on_pressure,
            on_evict_cached=self._on_evict_cached,
            bus=runtime.bus,
            policy=runtime.policies.memory,
        )
        self.spill = SpillManager(
            node,
            self.store,
            runtime.directory,
            runtime.config,
            runtime.counters,
            charge=runtime.charge_object,
            bus=runtime.bus,
            policy=runtime.policies.spill,
        )
        # Attach the disaggregated spill tier (None under the default
        # local backend, which keeps seed behaviour byte-for-byte).
        self.spill.shared = runtime.shared_store
        self.pending_tasks = 0
        self._fetch_sem = Resource(
            self.env,
            runtime.config.prefetch_concurrency,
            name=f"{node.node_id}.fetch",
        )
        # Spill protection consults the runtime-wide pending-consumer
        # table: a block's consumer may be queued on any node.
        self.spill.needed_soon = runtime.has_pending_consumer
        self._inflight_fetches: Dict[ObjectId, Event] = {}
        # Insertion-ordered (dicts, not sets): death handling interrupts
        # and resubmits in submission order, keeping runs deterministic --
        # set iteration order follows object hashes, which vary per run.
        self._procs: Dict[Any, None] = {}
        self._active_records: Dict[TaskRecord, None] = {}

    # -- store callbacks ----------------------------------------------------
    def _on_pressure(self) -> None:
        self.spill.kick()

    def _on_evict_cached(self, object_id: ObjectId) -> None:
        self.runtime.directory.remove_memory_location(object_id, self.node_id)

    # -- submission ------------------------------------------------------------
    def submit(self, record: TaskRecord) -> None:
        """Start a simulation process that runs ``record`` to completion."""
        record.assigned_node = self.node_id
        record.phase = TaskPhase.QUEUED
        self.pending_tasks += 1
        self._active_records[record] = None
        proc = self.env.process(
            self._run_task(record), name=f"task-{record.spec.task_id}"
        )
        self._procs[proc] = None
        proc.add_callback(lambda _event: self._procs.pop(proc, None))

    # -- executor failure (§4.2.3) --------------------------------------------
    def kill_executors(self) -> int:
        """Kill every executor *process* on this node, keeping the node
        (and crucially its object store and spill files) alive.

        This is the common failure mode the paper distinguishes from node
        death: because blocks live in the NodeManager's store rather than
        in executor memory, no objects are lost and no lineage
        reconstruction is needed -- in-flight tasks simply restart.
        Returns the number of tasks interrupted.
        """
        for proc in list(self._procs):
            proc.interrupt("executor killed")
        self._procs.clear()
        casualties = list(self._active_records)
        self._active_records.clear()
        self.pending_tasks = 0
        self.runtime.counters.add("executor_failures", 1)
        failure = self.runtime.bus.emit(
            "executor.failure", node=self.node_id, casualties=len(casualties)
        )
        cause = failure.seq if failure is not None else None
        self.runtime.lineage.note_node_fault_event(self.node_id, cause)

        def requeue() -> None:
            # Runs after the interrupts have been delivered, so the dying
            # task processes have finished unwinding.
            for record in casualties:
                if record.phase not in (TaskPhase.FINISHED, TaskPhase.FAILED):
                    self.runtime.resubmit_task(record, cause=cause)

        self.env.call_later(0.0, requeue)
        return len(casualties)

    # -- death handling ---------------------------------------------------------
    def kill(self) -> List[TaskRecord]:
        """Node died: interrupt resident work, drop all local state.

        Returns the task records that were in flight here so the runtime
        can requeue them after the failure-detection delay.
        """
        for proc in list(self._procs):
            proc.interrupt(NodeFailure(self.node_id))
        self._procs.clear()
        # Local state is gone instantly; the *directory* stays stale until
        # the failure-detection delay elapses (heartbeat timeout), so
        # remote peers keep trying this node and fail until then -- that is
        # what the §5.1.5 recovery delay consists of.
        self.store.clear()
        self.spill.clear()
        self._inflight_fetches.clear()
        casualties = list(self._active_records)
        self._active_records.clear()
        self.pending_tasks = 0
        return casualties

    # -- the task lifecycle -----------------------------------------------------
    def _run_task(self, record: TaskRecord) -> Iterator[Event]:
        spec = record.spec
        spec.attempts += 1
        config = self.runtime.config
        pinned: List[ObjectId] = []
        core_req = None
        fetch_req = None
        try:
            record.phase = TaskPhase.FETCHING
            if config.enable_prefetching:
                # Admission first (while holding nothing), then a fetch
                # slot: pollers must not starve other tasks' fetches.
                yield from self._await_admission(spec)
                fetch_req = self._fetch_sem.request()
                yield fetch_req
                arg_state = yield from self._ensure_args(spec, pinned)
                fetch_req.cancel()
                fetch_req = None
                core_req = self.node.cpu.request()
                yield core_req
            else:
                core_req = self.node.cpu.request()
                yield core_req
                arg_state = yield from self._ensure_args(spec, pinned)

            record.phase = TaskPhase.RUNNING
            record.started_at = self.env.now
            self.runtime.bus.emit(
                "task.run",
                task=spec.task_id,
                node=self.node_id,
                job=spec.options.job_id,
                attempt=spec.attempts,
                fn=spec.fn_name,
            )
            overhead = config.task_overhead_s + config.per_object_overhead_s * (
                len(spec.args) + len(spec.return_ids)
            )
            if overhead > 0:
                yield self.env.timeout(overhead)
            # Chaos straggler injection: an installed hook may tax this
            # attempt with extra latency (deterministic under its seed).
            delay_hook = self.runtime.task_delay_hook
            if delay_hook is not None:
                extra = float(delay_hook(spec, self.node_id))
                if extra > 0:
                    self.runtime.counters.add("straggler_delay_s", extra)
                    yield self.env.timeout(extra)
            # Arguments resident only on local disk are streamed in now.
            for oid, state in arg_state.items():
                if state == "disk":
                    yield self.spill.restore_read(oid)

            values = self._materialize_args(spec)
            yield from self._execute_and_store(spec, values)

            record.phase = TaskPhase.FINISHED
            record.finished_at = self.env.now
            self.runtime.charge_task(spec.options, "tasks_finished", 1)
            self.runtime.bus.emit(
                "task.finish",
                task=spec.task_id,
                node=self.node_id,
                job=spec.options.job_id,
                attempt=spec.attempts,
            )
            self._active_records.pop(record, None)
            self.pending_tasks -= 1
            self.runtime.task_finished(record)
        except Interrupt:
            # Node death: kill() already moved our record to the casualty
            # list and reset counters; just stop.
            record.phase = TaskPhase.QUEUED
        except (NodeFailure, IOError):
            # A local device failed under us -- same situation as above.
            record.phase = TaskPhase.QUEUED
        except ObjectLostError as exc:
            self._abandon(record)
            self.runtime.task_failed(record, exc)
        except Exception as exc:  # noqa: BLE001 - app errors become task errors
            self._abandon(record)
            self.runtime.task_failed(record, TaskExecutionError(spec.task_id, exc))
        finally:
            if fetch_req is not None:
                fetch_req.cancel()
            if core_req is not None:
                core_req.cancel()
            for oid in pinned:
                self.store.unpin(oid)

    def _abandon(self, record: TaskRecord) -> None:
        if record in self._active_records:
            self._active_records.pop(record, None)
            self.pending_tasks -= 1

    # -- argument handling -----------------------------------------------------
    def _await_admission(self, spec: TaskSpec) -> Iterator[Event]:
        """Prefetch admission control (§4.2.2).

        A task may start fetching arguments only when the bytes currently
        pinned by other fetching/executing tasks leave headroom under
        ``prefetch_capacity_fraction`` of the store -- unbounded
        fetch-ahead would pin more memory than the store holds and thrash
        it.  Admission happens while the task holds no pins and no fetch
        slot, so there is no hold-and-wait and no deadlock; a task whose
        arguments alone exceed the budget is admitted when the store is
        quiet.
        """
        directory = self.runtime.directory
        budget = int(
            self.runtime.config.prefetch_capacity_fraction * self.store.capacity
        )
        task_bytes = 0
        for oid in dict.fromkeys(spec.dependency_ids):
            record = directory.maybe_get(oid)
            if record is not None:
                task_bytes += record.size
        demand = min(task_bytes, budget)
        while (
            self.store.pinned_bytes > 0
            and self.store.pinned_bytes + demand > budget
        ):
            yield self.env.timeout(0.05)

    def _ensure_args(
        self, spec: TaskSpec, pinned: List[ObjectId]
    ) -> Iterator[Event]:
        """Make every ref argument readable locally; pins memory copies.

        Returns a dict of per-object residency: ``"memory"`` (pinned in the
        local store) or ``"disk"`` (spilled locally; read through from disk
        at execution time).
        """
        states: Dict[ObjectId, str] = {}
        for oid in dict.fromkeys(spec.dependency_ids):
            state = yield from self.ensure_local(oid)
            if state == "memory":
                pinned.append(oid)
            states[oid] = state
        return states

    def ensure_local(self, object_id: ObjectId) -> Iterator[Event]:
        """Bring one object to this node; returns ``"memory"`` or ``"disk"``.

        Memory results are pinned (caller must unpin).  Retries around
        evictions, races, and source failures; gives up only when the
        object is unrecoverable.
        """
        directory = self.runtime.directory
        for _attempt in range(200):
            record = directory.maybe_get(object_id)
            if record is None:
                raise ObjectLostError(object_id, "freed while required")
            if self.store.contains(object_id):
                self.store.pin(object_id)
                return "memory"
            if self.spill.is_spilled(object_id):
                if self.store.try_allocate(
                    object_id, record.size, primary=False, pin=True
                ):
                    yield self.spill.restore_read(object_id)
                    directory.add_memory_location(object_id, self.node_id)
                    return "memory"
                return "disk"
            holds_pin = yield from self._fetch_remote(object_id)
            if holds_pin:
                # The fetch allocated the entry pinned on our behalf, so
                # it cannot have been evicted under memory pressure.
                return "memory"
        raise ObjectLostError(object_id, "exceeded fetch attempts")

    def _fetch_remote(self, object_id: ObjectId) -> Iterator[Event]:
        """Fetch one object from another node, deduplicating in-flight work.

        Returns True when the caller now holds a pin on the local
        in-memory entry (initiator path); dedup waiters return False and
        must re-check + pin themselves.
        """
        existing = self._inflight_fetches.get(object_id)
        if existing is not None:
            yield existing
            return False
        done = self.env.event()
        self._inflight_fetches[object_id] = done
        try:
            holds_pin = yield from self._fetch_remote_inner(object_id)
            return holds_pin
        finally:
            if self._inflight_fetches.get(object_id) is done:
                del self._inflight_fetches[object_id]
            if not done.triggered:
                done.succeed()

    def _fetch_remote_inner(self, object_id: ObjectId) -> Iterator[Event]:
        runtime = self.runtime
        directory = runtime.directory
        for _attempt in range(100):
            record = directory.maybe_get(object_id)
            if record is None:
                raise ObjectLostError(object_id, "freed during fetch")
            if self.store.contains(object_id):
                self.store.pin(object_id)
                return True
            if self.spill.is_spilled(object_id):
                return False
            memory_sources = sorted(
                nid
                for nid in record.memory_nodes
                if nid != self.node_id and runtime.node_managers[nid].node.alive
            )
            spill_sources = sorted(
                nid
                for nid in record.spill_nodes
                if nid != self.node_id and runtime.node_managers[nid].node.alive
            )
            if not memory_sources and not spill_sources:
                shared = self.spill.shared
                if shared is not None and shared.contains(object_id):
                    # The disaggregated spill tier holds the only copy --
                    # the durability win: read it back instead of waiting
                    # for lineage to re-execute the creator.
                    holds_pin = yield from self._fetch_shared(
                        object_id, record.size
                    )
                    if holds_pin is not None:
                        return holds_pin
                    continue
                # No *alive* copy: wait for (re)creation.  The directory
                # may still claim stale locations on dead-but-undetected
                # nodes (making ensure_available a no-op), so back off and
                # let failure detection catch up before re-checking.
                yield runtime.ensure_available(object_id)
                yield self.env.timeout(runtime.config.fetch_retry_backoff_s)
                continue
            placement = None
            try:
                # Pinned for the duration of the transfer: a copy that is
                # still arriving must not be evicted under pressure.
                allocation = self.store.allocate(
                    object_id, record.size, primary=False, pin=True
                )
                placement = yield allocation
                if placement == "resident":
                    return True  # appeared meanwhile; allocate pinned it
                source = memory_sources[0] if memory_sources else spill_sources[0]
                if not memory_sources:
                    # Spilled at the source: streamed from its disk (§4.2.2).
                    yield runtime.node_managers[source].spill.restore_read(
                        object_id
                    )
                begin = runtime.bus.emit(
                    "transfer.begin",
                    node=self.node_id,
                    obj=object_id,
                    src=str(source),
                    bytes=record.size,
                )
                try:
                    yield runtime.cluster.send(source, self.node_id, record.size)
                except (NodeFailure, IOError):
                    runtime.bus.emit(
                        "transfer.end",
                        node=self.node_id,
                        obj=object_id,
                        cause=begin.seq if begin is not None else None,
                        ok=False,
                    )
                    raise
                runtime.bus.emit(
                    "transfer.end",
                    node=self.node_id,
                    obj=object_id,
                    cause=begin.seq if begin is not None else None,
                    ok=True,
                )
            except (NodeFailure, IOError):
                if placement == "memory":
                    self.store.free(object_id)
                yield self.env.timeout(runtime.config.fetch_retry_backoff_s)
                continue
            if placement == "memory":
                directory.add_memory_location(object_id, self.node_id)
                runtime.counters.add("fetched_objects", 1)
                return True
            # Disk-fallback grant: the bytes are on our local disk now.
            runtime.counters.add("fetched_objects", 1)
            return False
        raise ObjectLostError(object_id, "fetch retries exhausted")

    def _fetch_shared(self, object_id: ObjectId, size: int) -> Iterator[Event]:
        """Read one object back from the shared spill tier.

        Returns True (pinned in local memory), False (granted on local
        disk by the fallback valve), or None (failed mid-read; the
        caller's retry loop re-checks sources).
        """
        runtime = self.runtime
        placement = None
        try:
            # Pinned for the duration of the read, like a remote fetch.
            allocation = self.store.allocate(
                object_id, size, primary=False, pin=True
            )
            placement = yield allocation
            if placement == "resident":
                return True  # appeared meanwhile; allocate pinned it
            yield self.spill.shared_restore_read(object_id)
        except (NodeFailure, IOError):
            if placement == "memory":
                self.store.free(object_id)
            yield self.env.timeout(runtime.config.fetch_retry_backoff_s)
            return None
        if placement == "memory":
            runtime.directory.add_memory_location(object_id, self.node_id)
            runtime.counters.add("fetched_objects", 1)
            return True
        # Disk-fallback grant: the bytes landed on our local disk.
        runtime.counters.add("fetched_objects", 1)
        return False

    def _materialize_args(self, spec: TaskSpec) -> List[Any]:
        payloads = self.runtime.payloads
        values: List[Any] = []
        for arg in spec.args:
            if isinstance(arg, PlainArg):
                values.append(arg.value)
            else:
                values.append(payloads[arg.object_id])
        return values

    # -- execution --------------------------------------------------------------
    def _execute_and_store(
        self, spec: TaskSpec, values: List[Any]
    ) -> Iterator[Event]:
        options = spec.options
        input_bytes = self._input_bytes(spec)
        if spec.is_generator:
            yield from self._run_generator(spec, values, input_bytes)
        else:
            outputs = self._call_plain(spec, values)
            output_bytes = sum(size_of(value) for value in outputs)
            duration = self._compute_seconds(
                options.compute, input_bytes, output_bytes, spec
            )
            if duration > 0:
                yield self.env.timeout(duration)
            self.runtime.charge_task(options, "compute_seconds", duration)
            for object_id, value in zip(spec.return_ids, outputs):
                yield from self._store_output(object_id, value, options)

    def _run_generator(
        self, spec: TaskSpec, values: List[Any], input_bytes: int
    ) -> Iterator[Event]:
        generator = spec.fn(*values)
        produced = 0
        per_item_input = input_bytes / max(1, len(spec.return_ids))
        for object_id in spec.return_ids:
            try:
                value = next(generator)
            except StopIteration:
                raise ValueError(
                    f"generator task {spec.fn_name} yielded {produced} values, "
                    f"declared num_returns={len(spec.return_ids)}"
                ) from None
            produced += 1
            item_bytes = size_of(value)
            duration = self._compute_seconds(
                spec.options.compute,
                per_item_input,
                item_bytes,
                spec,
                per_item=True,
            )
            if duration > 0:
                yield self.env.timeout(duration)
            self.runtime.charge_task(spec.options, "compute_seconds", duration)
            yield from self._store_output(object_id, value, spec.options)
        # A well-formed generator is now exhausted.
        try:
            next(generator)
        except StopIteration:
            return
        raise ValueError(
            f"generator task {spec.fn_name} yielded more than "
            f"num_returns={len(spec.return_ids)} values"
        )

    def _call_plain(self, spec: TaskSpec, values: List[Any]) -> List[Any]:
        result = spec.fn(*values)
        if len(spec.return_ids) == 1:
            return [result]
        if not isinstance(result, (tuple, list)):
            raise TypeError(
                f"task {spec.fn_name} declared num_returns="
                f"{len(spec.return_ids)} but returned {type(result).__name__}"
            )
        if len(result) != len(spec.return_ids):
            raise ValueError(
                f"task {spec.fn_name} returned {len(result)} values, declared "
                f"num_returns={len(spec.return_ids)}"
            )
        return list(result)

    def _store_output(
        self, object_id: ObjectId, value: Any, options: Any
    ) -> Iterator[Event]:
        directory = self.runtime.directory
        size = size_of(value)
        if object_id not in directory:
            return  # all refs dropped before the task finished; discard
        self.runtime.payloads[object_id] = value
        self.runtime.charge_task(options, "task_output_bytes", size)
        if options.output_to_disk:
            self.runtime.counters.add("disk_bytes_written", size)
            self.runtime.counters.add("output_bytes_written", size)
            begin = self.runtime.bus.emit(
                "disk.write.begin",
                node=self.node_id,
                obj=object_id,
                job=options.job_id,
                bytes=size,
            )
            yield self.node.disk_write(size, sequential=True)
            self.runtime.bus.emit(
                "disk.write.end",
                node=self.node_id,
                obj=object_id,
                cause=begin.seq if begin is not None else None,
            )
            self.spill.adopt(object_id, size)
        else:
            allocation = self.store.allocate(object_id, size, primary=True)
            placement = yield allocation
            if placement == "memory":
                directory.add_memory_location(object_id, self.node_id)
            # "disk": the spill manager's fallback already recorded the
            # spill location and charged the write.
        directory.mark_created(object_id, size)
        self.runtime.bus.emit(
            "object.create",
            obj=object_id,
            node=self.node_id,
            job=options.job_id,
            bytes=size,
        )

    # -- cost model -------------------------------------------------------------
    def _input_bytes(self, spec: TaskSpec) -> int:
        directory = self.runtime.directory
        total = 0
        for arg in spec.args:
            if isinstance(arg, PlainArg):
                total += size_of(arg.value)
            else:
                record = directory.maybe_get(arg.object_id)
                if record is not None:
                    total += record.size
        return total

    def _compute_seconds(
        self,
        compute: Any,
        input_bytes: float,
        output_bytes: float,
        spec: TaskSpec,
        per_item: bool = False,
    ) -> float:
        dilation = self.node.compute_dilation
        if compute is None:
            throughput = self.runtime.config.cpu_throughput_bytes_per_sec
            return dilation * (input_bytes + output_bytes) / throughput
        if callable(compute):
            context = CostContext(
                input_bytes=int(input_bytes),
                output_bytes=int(output_bytes),
                num_args=len(spec.args),
                num_returns=len(spec.return_ids),
            )
            seconds = float(compute(context))
        else:
            seconds = float(compute)
            if per_item:
                seconds /= max(1, len(spec.return_ids))
        if seconds < 0:
            raise ValueError(f"negative compute time from {spec.fn_name}")
        return dilation * seconds

    def __repr__(self) -> str:
        return f"<NodeManager {self.node_id} pending={self.pending_tasks}>"
