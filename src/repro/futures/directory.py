"""Global object metadata: sizes, locations, reference counts.

The paper's limitation discussion (§7) notes that a distributed-futures
system stores metadata separately for each task and object -- this module
is that metadata.  Records use ``__slots__`` because shuffle creates one
record per intermediate block (M x R of them for simple shuffle).

Location state per object:

- ``memory_nodes`` -- nodes holding an in-memory copy in their store.
- ``spill_nodes`` -- nodes holding an on-disk (spilled) copy; the mapped
  value is the spill manager's slot handle, opaque to the directory.
- ``shared`` -- the disaggregated spill tier holds a copy (node-agnostic:
  it survives any node's death).

An object is *created* once its task has stored it at least once, and
*available* while any copy survives.  Created-but-unavailable objects are
lost and need lineage reconstruction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.common.ids import NodeId, ObjectId, TaskId


class ObjectRecord:
    """Metadata for one object."""

    __slots__ = (
        "size",
        "creator",
        "refcount",
        "created",
        "error",
        "memory_nodes",
        "spill_nodes",
        "shared",
    )

    def __init__(self, creator: Optional[TaskId]) -> None:
        self.size = 0
        self.creator = creator
        self.refcount = 0
        self.created = False
        self.error: Optional[BaseException] = None
        self.memory_nodes: Set[NodeId] = set()
        self.spill_nodes: Dict[NodeId, Any] = {}
        self.shared = False

    @property
    def available(self) -> bool:
        return self.created and bool(
            self.memory_nodes or self.spill_nodes or self.shared
        )

    @property
    def lost(self) -> bool:
        return self.created and not (
            self.memory_nodes or self.spill_nodes or self.shared
        )


class ObjectDirectory:
    """All object records, plus creation notification plumbing."""

    def __init__(self, on_refcount_zero: Callable[[ObjectId], None]) -> None:
        self._records: Dict[ObjectId, ObjectRecord] = {}
        self._on_refcount_zero = on_refcount_zero
        self._creation_waiters: Dict[
            ObjectId, List[Callable[[ObjectId, Optional[BaseException]], None]]
        ] = {}

    # -- record lifecycle ---------------------------------------------------
    def register(self, object_id: ObjectId, creator: Optional[TaskId]) -> ObjectRecord:
        """Create the record for a not-yet-computed object."""
        if object_id in self._records:
            raise ValueError(f"object {object_id} already registered")
        record = ObjectRecord(creator)
        self._records[object_id] = record
        return record

    def get(self, object_id: ObjectId) -> ObjectRecord:
        """The record for ``object_id`` (KeyError if unknown)."""
        return self._records[object_id]

    def maybe_get(self, object_id: ObjectId) -> Optional[ObjectRecord]:
        """The record for ``object_id``, or None if unknown."""
        return self._records.get(object_id)

    def drop(self, object_id: ObjectId) -> None:
        """Forget an object entirely (after global eviction)."""
        self._records.pop(object_id, None)
        self._creation_waiters.pop(object_id, None)

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- creation -------------------------------------------------------------
    def mark_created(self, object_id: ObjectId, size: int) -> None:
        """Record that the object now exists with the given size."""
        record = self._records.get(object_id)
        if record is None:
            return  # freed (refcount zero) before its task finished storing
        record.size = size
        if record.created:
            return
        record.created = True
        for callback in self._creation_waiters.pop(object_id, []):
            callback(object_id, None)

    def mark_failed(self, object_id: ObjectId, error: BaseException) -> None:
        """The creating task failed; waiters observe the error."""
        record = self._records.get(object_id)
        if record is None:
            return
        record.error = error
        for callback in self._creation_waiters.pop(object_id, []):
            callback(object_id, error)

    def mark_uncreated(self, object_id: ObjectId) -> None:
        """Roll an object back to not-created (lost, pending rebuild)."""
        record = self._records.get(object_id)
        if record is not None:
            record.created = False

    def error_of(self, object_id: ObjectId) -> Optional[BaseException]:
        """The creating task's error, if it failed."""
        record = self._records.get(object_id)
        return record.error if record is not None else None

    def is_created(self, object_id: ObjectId) -> bool:
        """True once the object has been produced at least once."""
        record = self._records.get(object_id)
        return record is not None and record.created

    def is_available(self, object_id: ObjectId) -> bool:
        """True while at least one copy (memory, disk, or the shared
        tier) survives."""
        record = self._records.get(object_id)
        return record is not None and record.available

    def on_ready(
        self,
        object_id: ObjectId,
        callback: Callable[[ObjectId, Optional[BaseException]], None],
    ) -> None:
        """Invoke ``callback(object_id, error)`` once the object is created
        (``error is None``) or its creating task has failed.

        Fires immediately (synchronously) if the outcome is already known.
        """
        record = self._records[object_id]
        if record.created:
            callback(object_id, None)
        elif record.error is not None:
            callback(object_id, record.error)
        else:
            self._creation_waiters.setdefault(object_id, []).append(callback)

    # -- locations ------------------------------------------------------------
    def add_memory_location(self, object_id: ObjectId, node_id: NodeId) -> None:
        """Record an in-memory copy on ``node_id`` (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.memory_nodes.add(node_id)

    def remove_memory_location(self, object_id: ObjectId, node_id: NodeId) -> None:
        """Forget an in-memory copy (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.memory_nodes.discard(node_id)

    def add_spill_location(
        self, object_id: ObjectId, node_id: NodeId, slot: Any
    ) -> None:
        """Record an on-disk copy and its spill slot (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.spill_nodes[node_id] = slot

    def remove_spill_location(self, object_id: ObjectId, node_id: NodeId) -> None:
        """Forget an on-disk copy (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.spill_nodes.pop(node_id, None)

    def add_shared_location(self, object_id: ObjectId) -> None:
        """Record a copy in the disaggregated spill tier (no-op if
        unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.shared = True

    def remove_shared_location(self, object_id: ObjectId) -> None:
        """Forget the disaggregated-tier copy (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.shared = False

    def is_shared(self, object_id: ObjectId) -> bool:
        """True while the disaggregated spill tier holds a copy."""
        record = self._records.get(object_id)
        return record is not None and record.shared

    def locations(self, object_id: ObjectId) -> Set[NodeId]:
        """All nodes holding any copy of the object."""
        record = self._records[object_id]
        return set(record.memory_nodes) | set(record.spill_nodes)

    # -- reference counting -----------------------------------------------
    def incref(self, object_id: ObjectId) -> None:
        """Add one reference (no-op if unknown)."""
        record = self._records.get(object_id)
        if record is not None:
            record.refcount += 1

    def decref(self, object_id: ObjectId) -> None:
        """Drop one reference; fires the zero callback at zero."""
        record = self._records.get(object_id)
        if record is None:
            return
        record.refcount -= 1
        if record.refcount <= 0:
            self._on_refcount_zero(object_id)

    # -- bulk queries ----------------------------------------------------------
    def lost_objects(self) -> List[ObjectId]:
        """Created objects with no surviving copy."""
        return [oid for oid, record in self._records.items() if record.lost]

    def items(self) -> List[tuple]:
        """A snapshot of ``(object_id, record)`` pairs (for invariant
        checking and introspection)."""
        return list(self._records.items())
