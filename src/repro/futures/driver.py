"""Deterministic co-simulation of plain-Python driver code.

The paper's shuffle libraries are ordinary blocking Python programs
(Listings 1-3): they call ``.remote()`` eagerly and block on ``get`` /
``wait``.  To run such code unchanged against the simulated cluster, each
driver executes on its own thread with a strict handoff against the
simulation loop: at any instant exactly one of {a driver thread, the
simulation loop} is running.

- While a driver runs, the simulation is parked, so driver-side calls
  into runtime state need no locks and simulated time does not advance
  (driver CPU time is free, as in the paper's model where the driver only
  submits metadata).
- When a driver blocks (``get``, ``wait``, ``sleep``), it hands the
  loop a wake-up event; the loop steps the simulation until that event is
  processed, then hands control back.

A host serves one *primary* driver (started by :meth:`DriverHost.run`)
plus any number of *subdrivers* it spawns (:meth:`DriverHost.spawn`).
Subdrivers are how the multi-tenant job control plane (:mod:`repro.jobs`)
runs many concurrent blocking jobs against one cluster: each job is an
ordinary driver program, parked and resumed cooperatively.  Handoffs
follow spawn order among runnable drivers, so the interleaving is a
deterministic function of the program, not of OS scheduling.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simcore import Environment, Event


class DriverError(RuntimeError):
    """The simulation deadlocked or was misused from the driver."""


class _DriverChannel:
    """One cooperatively scheduled driver thread and its handoff state."""

    def __init__(self, host: "DriverHost", name: str, label: Optional[str]) -> None:
        self.host = host
        self.name = name
        #: Opaque tag for work submitted while this driver runs (the jobs
        #: layer sets it to the job id so tasks are attributed).
        self.label = label
        #: Released by the controller to resume this driver.
        self.sem = threading.Semaphore(0)
        #: The event this driver is parked on (None = runnable).
        self.wake: Optional[Event] = None
        #: ("ok", value) or ("err", exc) once the body returned.
        self.outcome: Optional[Tuple[str, Any]] = None
        #: Simulation event triggered with the body's result at completion
        #: (what :meth:`DriverHost.join` blocks on).
        self.done: Event = host.env.event()
        self.reaped = False
        self.thread: Optional[threading.Thread] = None

    @property
    def finished(self) -> bool:
        return self.outcome is not None

    @property
    def runnable(self) -> bool:
        """True when the controller may hand this driver the CPU."""
        if self.outcome is not None:
            return False
        return self.wake is None or self.wake.processed

    def start(self, fn: Callable[..., Any], args: Any, kwargs: Any) -> None:
        """Launch the thread; it parks until the controller resumes it."""

        def body() -> None:
            self.sem.acquire()  # wait for the first handoff
            try:
                result = fn(*args, **kwargs)
                self.outcome = ("ok", result)
            except BaseException as exc:  # noqa: BLE001 - re-raised at join/run
                self.outcome = ("err", exc)
            finally:
                self.host._sim_sem.release()

        self.thread = threading.Thread(
            target=body, name=f"repro-{self.name}", daemon=True
        )
        self.thread.start()

    def __repr__(self) -> str:
        state = (
            "finished" if self.finished
            else "parked" if self.wake is not None and not self.wake.processed
            else "runnable"
        )
        return f"<driver {self.name} {state}>"


class DriverHandle:
    """Public handle on a spawned subdriver (see :meth:`DriverHost.spawn`).

    ``done`` is a simulation event that fires with the subdriver's return
    value (or its exception) when the body finishes; pass the handle to
    :meth:`DriverHost.join` to block on it from another driver.
    """

    def __init__(self, channel: _DriverChannel) -> None:
        self._channel = channel

    @property
    def name(self) -> str:
        """The subdriver's diagnostic name."""
        return self._channel.name

    @property
    def label(self) -> Optional[str]:
        """The work-attribution label the subdriver was spawned with."""
        return self._channel.label

    @property
    def done(self) -> Event:
        """Completion event (fires with the body's result, or its error)."""
        return self._channel.done

    @property
    def finished(self) -> bool:
        """True once the subdriver's body has returned or raised."""
        return self._channel.finished

    def __repr__(self) -> str:
        return f"<DriverHandle {self._channel!r}>"


class DriverHost:
    """Runs one primary driver (plus spawned subdrivers) against a
    simulation environment, one thread at a time."""

    def __init__(self, env: Environment, bus: Optional[Any] = None) -> None:
        self.env = env
        #: Optional structured event bus (:class:`repro.obs.EventBus`);
        #: subdriver lifecycles publish ``driver.spawn``/``driver.finish``.
        self.bus = bus
        self._sim_sem = threading.Semaphore(0)
        self._channels: Dict[threading.Thread, _DriverChannel] = {}
        self._order: List[_DriverChannel] = []
        self._seq = itertools.count()
        self._active = False

    @property
    def in_driver(self) -> bool:
        """True when called from a driver thread of an active run."""
        return self._active and threading.current_thread() in self._channels

    def current_label(self) -> Optional[str]:
        """The label of the driver thread making this call (None outside
        drivers or for unlabeled drivers) -- the task-attribution hook."""
        channel = self._channels.get(threading.current_thread())
        return channel.label if channel is not None else None

    # -- the controller loop -------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn(*args, **kwargs)`` as the primary driver; return its
        result.

        Must be called from the simulation's controlling thread.  The
        simulation advances only while every driver is blocked.  Raises
        :class:`DriverError` if the primary returns while spawned
        subdrivers are still running -- a driver that forks jobs must join
        them (the job control plane always does).
        """
        if self._active:
            raise DriverError("a driver is already running")
        self._active = True
        try:
            primary = self._make_channel(fn, args, kwargs, name="driver", label=None)
            while not primary.finished:
                channel = self._next_runnable()
                if channel is not None:
                    self._hand_off(channel)
                    continue
                if self.env.peek() == float("inf"):
                    parked = ", ".join(
                        f"{c.name} on {c.wake!r}"
                        for c in self._order
                        if not c.finished
                    )
                    raise DriverError(
                        f"simulation deadlock at t={self.env.now}: drivers "
                        f"blocked ({parked}) but no events remain"
                    )
                self.env.step()
            if primary.thread is not None:
                primary.thread.join(timeout=30)
            kind, value = primary.outcome  # type: ignore[misc]
            if kind == "err":
                raise value
            live = [c.name for c in self._order if not c.finished]
            if live:
                raise DriverError(
                    f"primary driver returned with subdrivers still "
                    f"running: {live}; join them before returning"
                )
            return value
        finally:
            self._active = False
            self._channels.clear()
            self._order.clear()

    def _make_channel(
        self,
        fn: Callable[..., Any],
        args: Any,
        kwargs: Any,
        name: str,
        label: Optional[str],
    ) -> _DriverChannel:
        channel = _DriverChannel(self, name=name, label=label)
        channel.start(fn, args, kwargs)
        assert channel.thread is not None
        self._channels[channel.thread] = channel
        self._order.append(channel)
        return channel

    def _next_runnable(self) -> Optional[_DriverChannel]:
        """The runnable driver that spawned earliest (deterministic)."""
        for channel in self._order:
            if channel.runnable:
                return channel
        return None

    def _hand_off(self, channel: _DriverChannel) -> None:
        """Run ``channel`` until it parks or finishes; then reap."""
        channel.wake = None
        channel.sem.release()
        self._sim_sem.acquire()
        if channel.finished and not channel.reaped:
            channel.reaped = True
            kind, value = channel.outcome  # type: ignore[misc]
            if self.bus is not None and channel.label is not None:
                self.bus.emit(
                    "driver.finish",
                    job=channel.label,
                    name=channel.name,
                    ok=kind == "ok",
                )
            # Triggering env events is safe here: the simulation is parked.
            if kind == "ok":
                channel.done.succeed(value)
            else:
                channel.done.fail(value)

    # -- called from driver threads -------------------------------------------
    def block_on(self, event: Event) -> Any:
        """Park the calling driver until ``event`` is processed; return its
        value.

        Raises the event's exception (in the driver) if it failed.
        """
        channel = self._channels.get(threading.current_thread())
        if channel is None or not self._active:
            raise DriverError(
                "blocking driver APIs (get/wait/sleep) may only be called "
                "from inside a Runtime.run() driver function"
            )
        channel.wake = event
        self._sim_sem.release()
        channel.sem.acquire()
        return event.value

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "",
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> DriverHandle:
        """Start ``fn`` as a concurrent subdriver; returns a handle.

        May only be called from a running driver thread (the simulation is
        parked then, so registration is race-free).  The subdriver starts
        parked and first runs when the spawning driver next blocks; it may
        use every blocking driver API and spawn further subdrivers.
        ``label`` tags tasks submitted while the subdriver runs (the jobs
        layer passes the job id).
        """
        if not self.in_driver:
            raise DriverError("spawn() must be called from a running driver")
        seq = next(self._seq)
        channel = self._make_channel(
            fn, args, kwargs, name=name or f"subdriver-{seq}", label=label
        )
        if self.bus is not None and label is not None:
            self.bus.emit("driver.spawn", job=label, name=channel.name)
        return DriverHandle(channel)

    def join(self, handle: DriverHandle) -> Any:
        """Block the calling driver until ``handle``'s subdriver finishes;
        return its result or re-raise its error."""
        return self.block_on(handle.done)
