"""Deterministic co-simulation of plain-Python driver code.

The paper's shuffle libraries are ordinary blocking Python programs
(Listings 1-3): they call ``.remote()`` eagerly and block on ``get`` /
``wait``.  To run such code unchanged against the simulated cluster, the
driver executes on its own thread with a strict handoff against the
simulation loop: at any instant exactly one of {driver thread, simulation
loop} is running.

- While the driver runs, the simulation is parked, so driver-side calls
  into runtime state need no locks and simulated time does not advance
  (driver CPU time is free, as in the paper's model where the driver only
  submits metadata).
- When the driver blocks (``get``, ``wait``, ``sleep``), it hands the
  loop a wake-up event; the loop steps the simulation until that event is
  processed, then hands control back.

The result is fully deterministic: the interleaving is a function of the
program, not of OS scheduling.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Tuple

from repro.simcore import Environment, Event


class DriverError(RuntimeError):
    """The simulation deadlocked or was misused from the driver."""


class DriverHost:
    """Runs one driver function against a simulation environment."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._thread: Optional[threading.Thread] = None
        self._sim_sem = threading.Semaphore(0)
        self._driver_sem = threading.Semaphore(0)
        self._wake: Optional[Event] = None
        self._outcome: Optional[Tuple[str, Any]] = None
        self._active = False

    @property
    def in_driver(self) -> bool:
        """True when called from the driver thread of an active run."""
        return self._active and threading.current_thread() is self._thread

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn(*args, **kwargs)`` as the driver; return its result.

        Must be called from the simulation's controlling thread.  The
        simulation advances only while the driver is blocked.
        """
        if self._active:
            raise DriverError("a driver is already running")
        self._active = True
        self._outcome = None
        self._wake = None

        def body() -> None:
            try:
                result = fn(*args, **kwargs)
                self._outcome = ("ok", result)
            except BaseException as exc:  # noqa: BLE001 - re-raised in run()
                self._outcome = ("err", exc)
            finally:
                self._sim_sem.release()

        self._thread = threading.Thread(
            target=body, name="repro-driver", daemon=True
        )
        self._thread.start()
        try:
            while True:
                self._sim_sem.acquire()
                if self._outcome is not None:
                    self._thread.join(timeout=30)
                    kind, value = self._outcome
                    if kind == "err":
                        raise value
                    return value
                wake = self._wake
                assert wake is not None, "driver blocked without a wake event"
                self._drive_until(wake)
                self._driver_sem.release()
        finally:
            self._active = False

    def _drive_until(self, wake: Event) -> None:
        env = self.env
        while not wake.processed:
            if env.peek() == float("inf"):
                raise DriverError(
                    f"simulation deadlock at t={env.now}: driver is blocked "
                    f"on {wake!r} but no events remain"
                )
            env.step()

    # -- called from the driver thread ----------------------------------------
    def block_on(self, event: Event) -> Any:
        """Park the driver until ``event`` is processed; return its value.

        Raises the event's exception (in the driver) if it failed.
        """
        if not self.in_driver:
            raise DriverError(
                "blocking driver APIs (get/wait/sleep) may only be called "
                "from inside a Runtime.run() driver function"
            )
        self._wake = event
        self._sim_sem.release()
        self._driver_sem.acquire()
        return event.value
