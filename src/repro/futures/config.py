"""Runtime configuration knobs.

Each field corresponds to a mechanism in §4 of the paper; the Fig 7
microbenchmark and the ablation benches toggle them individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import MB
from repro.futures.retry import RetryPolicy


@dataclass
class RuntimeConfig:
    """Tunable behaviour of the distributed-futures data plane."""

    # -- compute cost model -------------------------------------------------
    #: Bytes of task input+output one core processes per second when a task
    #: declares no explicit compute cost.  Calibrated so that sort-style
    #: record processing is somewhat faster than a d3 node's disk, making
    #: disk the bottleneck as the paper observes (§5.1.1).
    cpu_throughput_bytes_per_sec: float = 500 * MB

    #: Fixed scheduling/launch overhead per task, seconds.  Models RPC and
    #: worker lease costs.
    task_overhead_s: float = 2e-3

    #: Metadata cost per task argument and per return object, seconds.  A
    #: distributed-futures system tracks every object individually, so a
    #: simple shuffle's M x R blocks cost O(M x R) metadata work -- the
    #: paper's main scalability limitation (§7) and a driver of ES-simple's
    #: degradation at high partition counts (§5.1.2).  Monolithic systems
    #: share per-stage metadata and do not pay this.
    per_object_overhead_s: float = 0.1e-3

    # -- object store ---------------------------------------------------------
    #: Spill objects when the allocation queue is backlogged (always true in
    #: the paper; exposed for tests).
    enable_spilling: bool = True

    #: Coalesce spilled objects into files of at least this size (§4.2.2,
    #: "Ray fuses objects into at least 100 MB files").
    fuse_min_bytes: int = 100 * MB

    #: When False, every spilled object becomes its own file and every
    #: spill write pays a seek (the Fig 7 "fusing off" ablation).
    enable_write_fusing: bool = True

    #: Fetch arguments of queued tasks ahead of execution using spare store
    #: memory (§4.2.2).  The Fig 7 "prefetch off" ablation disables this.
    enable_prefetching: bool = True

    #: Maximum number of in-flight argument prefetches per node.
    prefetch_concurrency: int = 8

    #: Fraction of store capacity that prefetched-but-unexecuted arguments
    #: may occupy, bounding thrashing from over-eager fetching.
    prefetch_capacity_fraction: float = 0.5

    # -- scheduling --------------------------------------------------------
    #: Prefer placing a task where most of its argument bytes live.
    enable_locality_scheduling: bool = True

    #: Honour soft node-affinity hints (§4.3.2).
    enable_node_affinity: bool = True

    # -- fault tolerance ------------------------------------------------------
    #: Reconstruct lost objects by re-executing their creating tasks
    #: (§4.2.3).  When False, a lost object raises ObjectLostError.
    enable_lineage_reconstruction: bool = True

    #: Seconds between a node dying and the runtime noticing (heartbeat
    #: timeout).  Contributes to the 20-50 s recovery delta in §5.1.5.
    failure_detection_s: float = 10.0

    #: Backoff before retrying a fetch whose source died mid-transfer.
    fetch_retry_backoff_s: float = 1.0

    #: How task re-executions are paced and bounded.  The default policy
    #: is transparent (unlimited immediate retries, no deadline); chaos
    #: and production-style runs tighten it.
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)

    #: Seconds for which the scheduler avoids placing new tasks on a node
    #: that just failed (even after it restarts), so a flapping node does
    #: not keep swallowing work.  0 disables blacklisting.
    blacklist_cooldown_s: float = 0.0

    # -- policy plane -------------------------------------------------------
    #: Registry name of the placement policy (``repro.futures.policies``).
    #: The built-in ``"default"`` composes blacklist / affinity / locality
    #: / least-loaded stages honouring the enable_* flags above; the
    #: ablation arms select ``"load-only"`` or ``"random"`` here.
    placement_policy: str = "default"

    #: Registry name of the store memory policy (cached-copy eviction
    #: order and allocation-queue admission).
    memory_policy: str = "default"

    #: Registry name of the spill policy (victim selection, target
    #: sizing, write fusing).  ``"unfused"`` forces one file per object
    #: regardless of ``enable_write_fusing``.
    spill_policy: str = "default"

    #: Registry name of the dispatch policy.  ``"fifo"`` launches tasks
    #: as they become ready; ``"fair-share"`` runs weighted virtual-time
    #: queueing (normally installed by the jobs control plane instead).
    dispatch_policy: str = "fifo"

    #: Concurrent task slots per alive core granted by slot-limited
    #: dispatch policies (fair sharing).
    fair_share_slots_per_core: float = 1.0

    #: Registry name of the autoscale policy.  ``"none"`` (the default)
    #: never changes the cluster; ``"threshold"`` grows under allocation
    #: and dispatch queue pressure and shrinks when idle, between
    #: ``autoscale_min_nodes`` and ``autoscale_max_nodes``.
    autoscale_policy: str = "none"

    # -- elasticity ----------------------------------------------------------
    #: Lower bound on cluster size the autoscaler may shrink to.
    autoscale_min_nodes: int = 1

    #: Upper bound on cluster size the autoscaler may grow to.  0 means
    #: "the size the cluster was created with" (no growth).
    autoscale_max_nodes: int = 0

    #: Queued work per available task slot above which the threshold
    #: autoscaler requests growth.
    autoscale_grow_pressure: float = 2.0

    #: Queued work per available task slot below which the threshold
    #: autoscaler drains an idle node (0 shrinks only when fully idle).
    autoscale_shrink_pressure: float = 0.0

    #: Minimum simulated seconds between autoscaling decisions, so one
    #: pressure spike does not add a node per queued task.
    autoscale_interval_s: float = 5.0

    # -- spill backend --------------------------------------------------------
    #: Where spilled objects live: ``"local"`` writes to the owning
    #: node's disk (lost with the node, as in the paper); ``"shared"``
    #: writes through a disaggregated store so spilled bytes survive
    #: node loss without lineage recompute.
    spill_backend: str = "local"

    #: Aggregate bandwidth of the shared spill store, bytes/second.
    shared_store_bandwidth_bytes_per_sec: float = 1000 * MB

    #: Per-operation latency of the shared spill store, seconds (models
    #: the request round-trip of a remote blob/object service).
    shared_store_latency_s: float = 10e-3

    # -- planning -------------------------------------------------------------
    #: Which lowering rule ``variant="auto"`` resolves through
    #: (:mod:`repro.plan`).  ``"default"`` keeps each surface's legacy
    #: rule -- jobs lower with the cost model, the dataframe with the
    #: empirical two-way crossover; ``"cost"`` or ``"empirical"`` force
    #: one rule everywhere.
    planner: str = "default"

    #: Adaptive mid-job re-planning: ``"off"`` (plans are final; runs
    #: are bit-for-bit identical to builds without the plan layer) or
    #: ``"on"`` (the planner subscribes to the event bus, may re-lower
    #: the remaining plan at stage/round boundaries, and emits
    #: ``plan.lower`` / ``plan.replan`` events).
    replan: str = "off"

    # -- misc -----------------------------------------------------------------
    #: Root seed for any stochastic runtime behaviour (tie-breaking).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cpu_throughput_bytes_per_sec <= 0:
            raise ValueError("cpu throughput must be positive")
        if self.task_overhead_s < 0 or self.per_object_overhead_s < 0:
            raise ValueError("task overheads must be non-negative")
        if self.fuse_min_bytes < 1:
            raise ValueError("fuse_min_bytes must be positive")
        if self.prefetch_concurrency < 1:
            raise ValueError("prefetch concurrency must be >= 1")
        if not 0 < self.prefetch_capacity_fraction <= 1:
            raise ValueError("prefetch capacity fraction must be in (0, 1]")
        if self.failure_detection_s < 0:
            raise ValueError("failure detection delay must be non-negative")
        if self.blacklist_cooldown_s < 0:
            raise ValueError("blacklist cooldown must be non-negative")
        for kind_field in (
            "placement_policy",
            "memory_policy",
            "spill_policy",
            "dispatch_policy",
            "autoscale_policy",
        ):
            if not getattr(self, kind_field):
                raise ValueError(f"{kind_field} must be a non-empty name")
        if self.fair_share_slots_per_core <= 0:
            raise ValueError("fair_share_slots_per_core must be positive")
        if self.autoscale_min_nodes < 1:
            raise ValueError("autoscale_min_nodes must be >= 1")
        if self.autoscale_max_nodes < 0:
            raise ValueError("autoscale_max_nodes must be >= 0")
        if (
            self.autoscale_max_nodes
            and self.autoscale_max_nodes < self.autoscale_min_nodes
        ):
            raise ValueError("autoscale_max_nodes must be >= autoscale_min_nodes")
        if self.autoscale_grow_pressure <= self.autoscale_shrink_pressure:
            raise ValueError(
                "autoscale_grow_pressure must exceed autoscale_shrink_pressure"
            )
        if self.autoscale_shrink_pressure < 0:
            raise ValueError("autoscale_shrink_pressure must be non-negative")
        if self.autoscale_interval_s < 0:
            raise ValueError("autoscale_interval_s must be non-negative")
        if self.planner not in ("default", "cost", "empirical"):
            raise ValueError(
                "planner must be 'default', 'cost', or 'empirical'"
            )
        if self.replan not in ("off", "on"):
            raise ValueError("replan must be 'off' or 'on'")
        if self.spill_backend not in ("local", "shared"):
            raise ValueError("spill_backend must be 'local' or 'shared'")
        if self.shared_store_bandwidth_bytes_per_sec <= 0:
            raise ValueError("shared store bandwidth must be positive")
        if self.shared_store_latency_s < 0:
            raise ValueError("shared store latency must be non-negative")
