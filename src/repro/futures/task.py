"""Task specifications: what the driver submits and lineage remembers.

A :class:`TaskSpec` is deliberately *plain data*: argument references are
recorded as :class:`ObjectId`, not live :class:`ObjectRef` instances, so a
spec can sit in the lineage log without pinning its inputs.  The runtime
separately holds the live argument refs of *pending* tasks and drops them
at completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.common.ids import NodeId, ObjectId, TaskId


class TaskPhase(enum.Enum):
    """Where a task currently is in its lifecycle."""

    WAITING_DEPS = "waiting_deps"
    QUEUED = "queued"
    FETCHING = "fetching"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"


@dataclass(frozen=True)
class RefArg:
    """A positional argument that is a distributed future."""

    object_id: ObjectId


@dataclass(frozen=True)
class PlainArg:
    """A positional argument passed by value."""

    value: Any


Arg = Union[RefArg, PlainArg]


@dataclass(frozen=True)
class CostContext:
    """Inputs available to a task's compute-cost callable."""

    input_bytes: int
    output_bytes: int
    num_args: int
    num_returns: int


#: A compute-cost declaration: ``None`` (derive from bytes), a constant
#: number of core-seconds, or a callable of :class:`CostContext`.
ComputeCost = Union[None, float, int, Callable[[CostContext], float]]


@dataclass(frozen=True)
class TaskOptions:
    """Per-invocation options (``RemoteFunction.options(...)``)."""

    num_returns: int = 1
    #: Soft node-affinity hint (§4.3.2): preferred placement, honoured when
    #: the node is alive, otherwise any suitable node is used.
    node: Optional[NodeId] = None
    compute: ComputeCost = None
    #: Persist outputs straight to local disk (final outputs of a sort job,
    #: Spark-style materialisation) instead of store memory.
    output_to_disk: bool = False
    name: str = ""
    #: The job this task belongs to (multi-tenant control plane).  Stamped
    #: automatically from the submitting driver's label by
    #: ``Runtime.submit_task``; drives fair-share scheduling and per-job
    #: accounting.  ``None`` = unattributed (single-job runs).
    job_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_returns < 1:
            raise ValueError("num_returns must be >= 1")


@dataclass
class TaskSpec:
    """Everything needed to run (and re-run) one task."""

    task_id: TaskId
    fn: Callable[..., Any]
    fn_name: str
    args: Tuple[Arg, ...]
    options: TaskOptions
    return_ids: Tuple[ObjectId, ...]
    is_generator: bool = False
    #: Bumped on each (re-)execution attempt, for introspection and tests.
    attempts: int = 0

    @property
    def dependency_ids(self) -> List[ObjectId]:
        return [arg.object_id for arg in self.args if isinstance(arg, RefArg)]

    def __repr__(self) -> str:
        return (
            f"<TaskSpec {self.task_id} {self.fn_name} "
            f"deps={len(self.dependency_ids)} returns={len(self.return_ids)}>"
        )


@dataclass(eq=False)  # identity semantics: records live in sets
class TaskRecord:
    """Mutable runtime state of a submitted task."""

    spec: TaskSpec
    phase: TaskPhase = TaskPhase.WAITING_DEPS
    assigned_node: Optional[NodeId] = None
    pending_deps: int = 0
    #: Live argument refs held while the task is pending, released on
    #: completion so argument objects become evictable.
    held_refs: List[Any] = field(default_factory=list)
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Whether this task currently contributes to the runtime's
    #: pending-consumer counts (spill protection of its arguments).
    counted: bool = False
    #: Whether this task currently counts toward the runtime's in-flight
    #: total (autoscale pressure); guarded on both transitions so a
    #: record re-entering flight (lineage reconstruction) is counted
    #: exactly once per live episode.
    in_flight: bool = False
