"""The per-node shared-memory object store (§4.2.1-4.2.2).

The store manages a fixed byte budget.  Allocations (new task outputs, and
copies of objects fetched as task arguments) go through a FIFO queue: if
spare memory exists the request is granted immediately; otherwise the
store first drops *cached copies* (objects fetched from elsewhere whose
primary copy lives on another node or on disk -- dropping them costs no
I/O), and if that is not enough the request parks in the queue and the
node's spill manager is nudged.

Entries are *primary* (this store holds the authoritative in-memory copy,
which must be spilled before being dropped) or *cached* (re-fetchable).
Pins mark entries in active use by an executing task or in-flight
transfer; pinned entries are never dropped or spilled.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.ids import NodeId, ObjectId
from repro.futures.policies.base import (
    AllocationView,
    CachedCopyView,
    MemoryPolicy,
)
from repro.futures.policies.defaults import InsertionOrderMemoryPolicy
from repro.simcore import Environment, Event


class _Entry:
    __slots__ = ("size", "primary", "pins")

    def __init__(self, size: int, primary: bool, pins: int) -> None:
        self.size = size
        self.primary = primary
        self.pins = pins


class AllocationRequest:
    """A queued claim for store memory."""

    __slots__ = ("object_id", "size", "primary", "pin", "event")

    def __init__(
        self,
        env: Environment,
        object_id: ObjectId,
        size: int,
        primary: bool,
        pin: bool,
    ) -> None:
        self.object_id = object_id
        self.size = size
        self.primary = primary
        self.pin = pin
        self.event = Event(env)


class ObjectStore:
    """One node's object store."""

    def __init__(
        self,
        env: Environment,
        node_id: NodeId,
        capacity_bytes: int,
        on_pressure: Optional[Callable[[], None]] = None,
        on_evict_cached: Optional[Callable[[ObjectId], None]] = None,
        bus: Optional[object] = None,
        policy: Optional[MemoryPolicy] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("store capacity must be positive")
        self.env = env
        self.node_id = node_id
        #: The admission/eviction policy (insertion-order FIFO when not
        #: overridden, matching Ray's creation-order behaviour).
        self.policy: MemoryPolicy = policy or InsertionOrderMemoryPolicy()
        #: Optional structured event bus (:class:`repro.obs.EventBus`);
        #: parked allocations publish ``store.pressure`` events into it.
        self.bus = bus
        self.capacity = capacity_bytes
        self.used_bytes = 0
        #: Bytes of entries currently pinned by executing/fetching tasks.
        #: The prefetcher gates on this to bound fetch-ahead memory.
        self.pinned_bytes = 0
        # Insertion-ordered so eviction/spill candidates come out oldest
        # first, approximating Ray's creation-order spilling.
        self._entries: "OrderedDict[ObjectId, _Entry]" = OrderedDict()
        self._queue: Deque[AllocationRequest] = deque()
        self._on_pressure = on_pressure or (lambda: None)
        self._on_evict_cached = on_evict_cached or (lambda oid: None)
        # statistics
        self.total_allocations = 0
        self.cached_evictions = 0
        self.peak_used_bytes = 0

    # -- queries ------------------------------------------------------------
    def contains(self, object_id: ObjectId) -> bool:
        """True if the object is resident in this store."""
        return object_id in self._entries

    def entry_size(self, object_id: ObjectId) -> int:
        """Stored size of a resident entry."""
        return self._entries[object_id].size

    def is_primary(self, object_id: ObjectId) -> bool:
        """True if this store holds the authoritative copy."""
        return self._entries[object_id].primary

    def is_pinned(self, object_id: ObjectId) -> bool:
        """True if the resident entry is pinned by an active task or
        in-flight transfer (such entries are never dropped or spilled)."""
        return self._entries[object_id].pins > 0

    @property
    def spare_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def backlog(self) -> int:
        return len(self._queue)

    @property
    def backlog_bytes(self) -> int:
        return sum(req.size for req in self._queue)

    def head_request(self) -> Optional[AllocationRequest]:
        """The oldest queued allocation, if any."""
        return self._queue[0] if self._queue else None

    def objects(self) -> List[ObjectId]:
        """Resident object ids in insertion order."""
        return list(self._entries)

    # -- allocation ------------------------------------------------------------
    def allocate(
        self, object_id: ObjectId, size: int, primary: bool, pin: bool = False
    ) -> Event:
        """Reserve ``size`` bytes for ``object_id``.

        The returned event succeeds once the entry is resident.  Objects
        already resident are granted immediately (idempotent; a cached
        entry is upgraded to primary if requested).
        """
        if size < 0:
            raise ValueError("negative allocation size")
        self.total_allocations += 1
        existing = self._entries.get(object_id)
        if existing is not None:
            if primary:
                existing.primary = True
            if pin:
                self.pin(object_id)
            done = Event(self.env)
            done.succeed("resident")
            return done
        request = AllocationRequest(self.env, object_id, size, primary, pin)
        if self._try_grant(request):
            return request.event
        self._queue.append(request)
        if self.bus is not None:
            self.bus.emit(
                "store.pressure",
                node=self.node_id,
                obj=object_id,
                bytes=size,
                backlog=len(self._queue),
            )
        self._on_pressure()
        return request.event

    def try_allocate(
        self, object_id: ObjectId, size: int, primary: bool, pin: bool = False
    ) -> bool:
        """Allocate only if it fits right now (no queueing); True on success.

        Used by restore and prefetch paths that have a cheaper fallback
        (reading through from disk) and must not park in the queue.
        """
        if object_id in self._entries:
            if pin:
                self.pin(object_id)
            if primary:
                self._entries[object_id].primary = True
            return True
        request = AllocationRequest(self.env, object_id, size, primary, pin)
        return self._try_grant(request)

    def _try_grant(self, request: AllocationRequest) -> bool:
        if request.size > self.capacity - self.used_bytes:
            self._evict_cached(
                request.size - (self.capacity - self.used_bytes), request
            )
        if request.size > self.capacity - self.used_bytes:
            return False
        self._admit(request)
        return True

    def _admit(self, request: AllocationRequest) -> None:
        self.used_bytes += request.size
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes)
        self._entries[request.object_id] = _Entry(
            request.size, request.primary, 1 if request.pin else 0
        )
        if request.pin:
            self.pinned_bytes += request.size
        request.event.succeed("memory")

    def _evict_cached(
        self, needed: int, request: Optional[AllocationRequest] = None
    ) -> int:
        """Drop unpinned cached copies until ``needed`` bytes are freed.

        The memory policy orders the victims; the default drops oldest
        (insertion order) first.
        """
        freed = 0
        cached = [
            CachedCopyView(object_id=oid, size=entry.size)
            for oid, entry in self._entries.items()
            if not entry.primary and entry.pins == 0
        ]
        if not cached:
            return 0
        view = (
            AllocationView(
                object_id=request.object_id,
                size=request.size,
                primary=request.primary,
            )
            if request is not None
            else None
        )
        for victim in self.policy.eviction_order(view, cached):
            if freed >= needed:
                break
            entry = self._entries.pop(victim.object_id, None)
            if entry is None or entry.primary or entry.pins > 0:
                continue  # policy returned something no longer evictable
            self.used_bytes -= entry.size
            freed += entry.size
            self.cached_evictions += 1
            self._on_evict_cached(victim.object_id)
        return freed

    def pump(self) -> None:
        """Grant queued requests that now fit (called after memory frees).

        The memory policy picks which queued request is considered next;
        the default (``strict_fifo``) always services the queue head, so
        a request that does not fit blocks everything behind it -- the
        head-of-line behaviour Ray's store exhibits.
        """
        if getattr(self.policy, "strict_fifo", True):
            while self._queue:
                request = self._queue[0]
                if not self._try_grant(request):
                    break
                self._queue.popleft()
        else:
            while self._queue:
                views = [
                    AllocationView(
                        object_id=req.object_id,
                        size=req.size,
                        primary=req.primary,
                    )
                    for req in self._queue
                ]
                index = self.policy.next_grant(views)
                if not 0 <= index < len(self._queue):
                    index = 0
                request = self._queue[index]
                if not self._try_grant(request):
                    break
                del self._queue[index]
        if self._queue:
            self._on_pressure()

    def take_head_request(self) -> Optional[AllocationRequest]:
        """Remove and return the oldest queued request (for disk fallback)."""
        return self._queue.popleft() if self._queue else None

    # -- pinning -----------------------------------------------------------
    def pin(self, object_id: ObjectId) -> None:
        """Mark an entry in active use (never dropped or spilled)."""
        entry = self._entries[object_id]
        if entry.pins == 0:
            self.pinned_bytes += entry.size
        entry.pins += 1

    def unpin(self, object_id: ObjectId) -> None:
        """Release one pin (no-op if absent or unpinned)."""
        entry = self._entries.get(object_id)
        if entry is not None and entry.pins > 0:
            entry.pins -= 1
            if entry.pins == 0:
                self.pinned_bytes -= entry.size

    def demote_to_cached(self, object_id: ObjectId) -> None:
        """Mark an entry re-fetchable (its authoritative copy is elsewhere,
        e.g. it was just spilled to disk)."""
        entry = self._entries.get(object_id)
        if entry is not None:
            entry.primary = False

    # -- release -----------------------------------------------------------------
    def free(self, object_id: ObjectId) -> bool:
        """Drop an entry unconditionally (GC or post-spill); True if present."""
        entry = self._entries.pop(object_id, None)
        if entry is None:
            return False
        self.used_bytes -= entry.size
        if entry.pins > 0:
            self.pinned_bytes -= entry.size
        self.pump()
        return True

    def spillable_entries(self) -> List[Tuple[ObjectId, int]]:
        """Every unpinned primary entry as ``(object_id, size)``, in
        insertion (creation) order.

        This is the raw candidate list handed to the node's
        :class:`~repro.futures.policies.SpillPolicy`; the policy applies
        target sizing, consumer protection, and batching on top.
        """
        return [
            (oid, entry.size)
            for oid, entry in self._entries.items()
            if entry.primary and entry.pins == 0
        ]

    def spill_candidates(
        self,
        max_bytes: int,
        skip: Optional[Callable[[ObjectId], bool]] = None,
    ) -> List[Tuple[ObjectId, int]]:
        """Oldest unpinned primary entries totalling up to ``max_bytes``.

        ``skip`` lets the caller protect objects that queued local tasks
        are about to consume -- spilling those would just force an
        immediate restore.
        """
        chosen: List[Tuple[ObjectId, int]] = []
        total = 0
        for oid, entry in self._entries.items():
            if total >= max_bytes:
                break
            if entry.primary and entry.pins == 0:
                if skip is not None and skip(oid):
                    continue
                chosen.append((oid, entry.size))
                total += entry.size
        return chosen

    def clear(self) -> List[ObjectId]:
        """Drop everything (node death); returns the object ids lost.

        Queued allocation requests fail: their waiters (tasks on the dying
        node) are being interrupted anyway.
        """
        lost = list(self._entries)
        self._entries.clear()
        self.used_bytes = 0
        self.pinned_bytes = 0
        queue, self._queue = self._queue, deque()
        for request in queue:
            if not request.event.triggered:
                request.event.fail(IOError(f"store on {self.node_id} cleared"))
        return lost

    def __repr__(self) -> str:
        return (
            f"<ObjectStore {self.node_id} {self.used_bytes}/{self.capacity}B "
            f"entries={len(self._entries)} backlog={len(self._queue)}>"
        )
