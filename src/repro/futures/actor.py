"""Minimal actor support: stateful workers with serialised method calls.

The paper's ML listing (Listing 2) drives a ``trainer`` actor: a stateful
remote object whose methods execute one at a time on its home node, with
arguments resolved from the object store like any task.  This module
implements exactly that on top of the task machinery:

    trainer = rt.actor(Trainer, learning_rate=0.1).options(node=n).remote()
    ref = trainer.train.remote(block_ref)       # methods return ObjectRefs
    result = rt.get(ref)

Serialisation is by construction: every method call's task takes the
previous call's completion token as a hidden dependency, so calls run in
submission order and never concurrently -- which makes mutating ``self``
safe and deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from repro.common.ids import NodeId
from repro.futures.refs import ObjectRef
from repro.futures.remote import RemoteFunction, _reject_nested_refs
from repro.futures.task import TaskOptions


class ActorMethod:
    """A bound, remotely-invocable method of one actor instance."""

    def __init__(self, handle: "ActorHandle", method_name: str) -> None:
        self._handle = handle
        self._method_name = method_name

    def remote(self, *args: Any) -> ObjectRef:
        """Invoke the method as a task; returns the result ref."""
        return self._handle._invoke(self._method_name, args)

    def __repr__(self) -> str:
        return f"<ActorMethod {self._handle._cls.__name__}.{self._method_name}>"


class ActorHandle:
    """A reference to a living actor instance."""

    def __init__(
        self,
        runtime: Any,
        cls: Type,
        init_args: tuple,
        options: TaskOptions,
    ) -> None:
        self._runtime = runtime
        self._cls = cls
        self._options = options
        self._instance_box: Dict[str, Any] = {}

        cls_name = cls.__name__

        def construct(*args: Any):
            self._instance_box["instance"] = cls(*args)
            return None

        construct.__name__ = f"{cls_name}.__init__"
        ctor = RemoteFunction(runtime, construct, options)
        self._token: ObjectRef = ctor.remote(*init_args)

    def __getattr__(self, name: str) -> ActorMethod:
        if name.startswith("_"):
            raise AttributeError(name)
        if not callable(getattr(self._cls, name, None)):
            raise AttributeError(
                f"{self._cls.__name__} has no method {name!r}"
            )
        return ActorMethod(self, name)

    def _invoke(self, method_name: str, args: tuple) -> ObjectRef:
        _reject_nested_refs(args)
        box = self._instance_box

        def call(_token: Any, *call_args: Any):
            instance = box["instance"]
            return getattr(instance, method_name)(*call_args)

        call.__name__ = f"{self._cls.__name__}.{method_name}"
        task = RemoteFunction(self._runtime, call, self._options)
        # The previous call's token is the first argument: calls serialise.
        ref = task.remote(self._token, *args)
        self._token = ref
        return ref

    @property
    def home_node(self) -> Optional[NodeId]:
        return self._options.node

    def __repr__(self) -> str:
        return f"<ActorHandle {self._cls.__name__} node={self._options.node}>"


class ActorClass:
    """The result of ``rt.actor(Cls)``: configurable, then instantiable."""

    def __init__(self, runtime: Any, cls: Type, options: TaskOptions) -> None:
        self._runtime = runtime
        self._cls = cls
        self._options = options

    def options(self, **overrides: Any) -> "ActorClass":
        """A copy of this actor class with updated task options."""
        import dataclasses

        return ActorClass(
            self._runtime,
            self._cls,
            dataclasses.replace(self._options, **overrides),
        )

    def remote(self, *args: Any) -> ActorHandle:
        """Instantiate the actor (non-blocking)."""
        return ActorHandle(self._runtime, self._cls, args, self._options)

    def __repr__(self) -> str:
        return f"<ActorClass {self._cls.__name__}>"
