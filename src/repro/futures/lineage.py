"""Lineage-based reconstruction and fault-cause bookkeeping (§4.2.3).

:class:`LineageManager` owns everything the runtime does about failure:
reacting to node death, cleaning stale directory metadata after the
heartbeat timeout, re-executing interrupted or reconstructed tasks under
the configured :class:`~repro.futures.retry.RetryPolicy`, and the
chaos-causality plumbing that links retry events back to the fault that
triggered them.  :class:`~repro.futures.runtime.Runtime` delegates its
public fault-tolerance surface here, keeping the runtime itself to
wiring and the driver-facing API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.common.errors import (
    ObjectLostError,
    RetryExhaustedError,
    TaskDeadlineError,
)
from repro.common.ids import NodeId, ObjectId
from repro.futures.refs import ObjectRef, make_ref
from repro.futures.task import TaskPhase, TaskRecord
from repro.simcore import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.futures.runtime import Runtime


class LineageManager:
    """Re-executes lost work from the driver-side lineage log."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        #: Chaos causality plumbing: fault event seqs noted by the
        #: injector before it kills a node / loses an object, consumed
        #: when the death or reconstruction is observed so retry events
        #: link back to the fault that caused them.
        self._fault_causes: Dict[NodeId, int] = {}
        self._object_fault_causes: Dict[ObjectId, int] = {}
        self._last_fault_event: Dict[NodeId, int] = {}

    # -- fault-cause notes --------------------------------------------------
    def note_fault_cause(self, node_id: NodeId, seq: Optional[int]) -> None:
        """Record the event seq of a fault about to kill ``node_id`` so
        the ensuing ``node.death`` links back to it (chaos injector)."""
        if seq is not None:
            self._fault_causes[node_id] = seq

    def note_object_fault(self, object_id: ObjectId, seq: Optional[int]) -> None:
        """Record the fault seq behind an object loss so the eventual
        reconstruction retry links back to it (chaos injector)."""
        if seq is not None:
            self._object_fault_causes[object_id] = seq

    def note_node_fault_event(self, node_id: NodeId, seq: Optional[int]) -> None:
        """Remember the latest death/executor-failure event on a node;
        retries of tasks assigned there default their cause to it."""
        if seq is not None:
            self._last_fault_event[node_id] = seq

    def last_fault_event(self, node_id: Optional[NodeId]) -> Optional[int]:
        """The most recent fault event seq noted for ``node_id``."""
        if node_id is None:
            return None
        return self._last_fault_event.get(node_id)

    # -- node death ---------------------------------------------------------
    def on_node_death(self, node: "Node") -> None:
        """A node died: drop its local state now, clean directory
        metadata and re-execute casualties after the detection delay."""
        runtime = self.runtime
        manager = runtime.node_managers[node.node_id]
        casualties = manager.kill()
        lost_objects = runtime.directory_objects_on(node.node_id)
        runtime.counters.add("node_failures", 1)
        death = runtime.bus.emit(
            "node.death",
            node=node.node_id,
            cause=self._fault_causes.pop(node.node_id, None),
            casualties=len(casualties),
            lost_objects=len(lost_objects),
        )
        death_seq = death.seq if death is not None else None
        self.note_node_fault_event(node.node_id, death_seq)
        runtime.scheduler.note_failure(node.node_id)
        runtime.env.call_later(
            runtime.config.failure_detection_s,
            lambda: self._after_failure_detected(
                node, casualties, lost_objects, death_seq
            ),
        )

    def _after_failure_detected(
        self,
        node: "Node",
        casualties: List[TaskRecord],
        lost_objects: List[ObjectId],
        cause: Optional[int] = None,
    ) -> None:
        """Heartbeat timeout elapsed: clean metadata and re-execute."""
        runtime = self.runtime
        for oid in lost_objects:
            runtime.directory.remove_memory_location(oid, node.node_id)
            runtime.directory.remove_spill_location(oid, node.node_id)
            runtime.maybe_drop_payload(oid)
        for record in casualties:
            if record.phase in (TaskPhase.FINISHED, TaskPhase.FAILED):
                continue
            self.resubmit(record, cause=cause)

    # -- re-execution -------------------------------------------------------
    def resubmit(self, record: TaskRecord, cause: Optional[int] = None) -> None:
        """Re-execute a task (lineage reconstruction, §4.2.3).

        The configured :class:`~repro.futures.retry.RetryPolicy` governs
        the re-execution: a task past its attempt budget or per-task
        deadline fails permanently with a typed error, and retries may be
        delayed by deterministic exponential backoff.  Every verdict is
        published as a ``policy.decision`` event.
        """
        runtime = self.runtime
        spec = record.spec
        policy = runtime.config.retry_policy
        if not policy.should_retry(spec.attempts):
            self._emit_decision(record, "give-up-attempts", spec.attempts)
            runtime.task_failed(
                record, RetryExhaustedError(spec.task_id, spec.attempts)
            )
            return
        if policy.deadline_exceeded(record.submitted_at, runtime.env.now):
            self._emit_decision(record, "give-up-deadline", spec.attempts)
            runtime.task_failed(
                record, TaskDeadlineError(spec.task_id, policy.task_deadline_s)
            )
            return
        runtime.charge_task(spec.options, "tasks_resubmitted", 1)
        # A reconstructed task re-enters flight (autoscale pressure);
        # interrupted casualties never left it, and the guard makes this
        # a no-op for them.
        runtime._note_task_inflight(record)
        if cause is None and record.assigned_node is not None:
            cause = self._last_fault_event.get(record.assigned_node)
        runtime.bus.emit(
            "task.retry",
            task=spec.task_id,
            job=spec.options.job_id,
            node=record.assigned_node,
            cause=cause,
            attempt=spec.attempts + 1,
        )
        for oid in spec.return_ids:
            dep_record = runtime.directory.maybe_get(oid)
            if dep_record is not None and not dep_record.available:
                runtime.directory.mark_uncreated(oid)
        held: List[ObjectRef] = []
        for dep in dict.fromkeys(spec.dependency_ids):
            if dep not in runtime.directory:
                runtime.directory.register(
                    dep, creator=runtime._object_creator.get(dep)
                )
            held.append(make_ref(runtime, dep))
            if not runtime.directory.is_available(dep):
                # Recursively arrange for the dependency to exist again.
                self.ensure_available(dep)
        stale, record.held_refs = record.held_refs, held
        for ref in stale:
            # A record interrupted mid-run still holds the previous
            # attempt's argument refs; release them or the arguments'
            # refcounts stay inflated forever.
            ref.release()
        delay = policy.backoff_s(max(1, spec.attempts), task_key=spec.task_id.index)
        self._emit_decision(record, "retry", spec.attempts + 1, backoff_s=delay)
        if delay > 0:
            # Claim the record now so racing consumers observing a
            # FINISHED/FAILED phase cannot double-resubmit it during the
            # backoff window.
            record.phase = TaskPhase.WAITING_DEPS
            runtime.counters.add("retry_backoff_s", delay)
            runtime.env.call_later(
                delay, lambda: runtime._schedule_when_ready(record)
            )
        else:
            runtime._schedule_when_ready(record)

    def _emit_decision(
        self,
        record: TaskRecord,
        choice: str,
        attempt: int,
        backoff_s: float = 0.0,
    ) -> None:
        """Publish one retry-policy verdict on the obs bus."""
        self.runtime.bus.emit(
            "policy.decision",
            task=record.spec.task_id,
            job=record.spec.options.job_id,
            node=record.assigned_node,
            policy="retry",
            decision=choice,
            attempt=attempt,
            backoff_s=backoff_s,
        )

    def ensure_available(self, object_id: ObjectId) -> Event:
        """An event that fires once the object has a live copy somewhere.

        Triggers lineage reconstruction for lost objects.  Fails with
        :class:`ObjectLostError` when reconstruction is impossible
        (``put()`` objects, truncated lineage, reconstruction disabled) or
        with the creating task's error if it failed.
        """
        runtime = self.runtime
        event = runtime.env.event()
        record = runtime.directory.maybe_get(object_id)
        if record is None:
            return event.fail(ObjectLostError(object_id, "freed"))
        if record.error is not None:
            return event.fail(record.error)
        if record.available:
            return event.succeed()
        creator_id = record.creator
        creator = (
            runtime.tasks.get(creator_id) if creator_id is not None else None
        )
        if creator is None:
            # put() objects and truncated lineage are unrecoverable.
            return event.fail(ObjectLostError(object_id, "no creating task"))
        if creator.phase in (TaskPhase.FINISHED, TaskPhase.FAILED):
            # The creator ran to completion but no copy survives -- either
            # the object was lost to a failure, or its record was dropped
            # (freed) and has been re-registered by a recovering consumer.
            # Either way the creator must run again.
            if not runtime.config.enable_lineage_reconstruction:
                return event.fail(ObjectLostError(object_id, "unreconstructable"))
            runtime.directory.mark_uncreated(object_id)
            # This is a true lineage *recompute* (re-running a finished
            # creator because no copy survives), counted separately from
            # interrupted-task resubmits -- the disaggregated spill tier
            # exists precisely to drive this number to zero.
            runtime.counters.add("lineage_reconstructions", 1)
            self.resubmit(
                creator, cause=self._object_fault_causes.pop(object_id, None)
            )
        # else: the creating task is in flight; its completion will fire.

        def on_ready(_oid: ObjectId, error: Optional[BaseException]) -> None:
            if event.triggered:
                return
            if error is not None:
                event.fail(error)
            else:
                event.succeed()

        runtime.directory.on_ready(object_id, on_ready)
        return event
