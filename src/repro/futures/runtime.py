"""The distributed-futures runtime: Ray-as-the-paper-describes-it.

:class:`Runtime` wires the pieces together: one :class:`NodeManager` per
cluster node (object store + spill manager + executors), the global object
directory, the scheduler, lineage-based reconstruction, and the driver
host.  Its public surface is the Ray-style API used throughout the paper's
listings:

- ``runtime.remote(fn, **options)`` / ``fn.options(...)`` / ``.remote()``
- ``runtime.get(refs)``, ``runtime.wait(refs, ...)``, ``runtime.put(v)``
- ``runtime.run(driver_fn)`` to execute a blocking driver program
- ``runtime.free(refs)`` for eager eviction (the ``del`` in Listing 3)

Fault tolerance follows §4.2.3: the driver-side lineage (all task specs)
is replayed to reconstruct lost objects; executor failures lose no objects
because stores belong to node managers, and node failures trigger
re-execution after a detection delay.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.fabric import Cluster
from repro.cluster.membership import ClusterMembership
from repro.cluster.shared_store import SharedStoreBackend
from repro.cluster.specs import ClusterSpec, NodeSpec
from repro.common.errors import ObjectLostError
from repro.common.ids import IdGenerator, NodeId, ObjectId, TaskId
from repro.futures.config import RuntimeConfig
from repro.futures.directory import ObjectDirectory
from repro.futures.driver import DriverHandle, DriverHost
from repro.futures.lineage import LineageManager
from repro.futures.node_manager import NodeManager
from repro.futures.policies.registry import PolicyStack, resolve_policies
from repro.futures.refs import ObjectRef, make_ref
from repro.futures.remote import RemoteFunction
from repro.futures.scheduler import Scheduler
from repro.futures.sizing import size_of
from repro.futures.task import (
    Arg,
    PlainArg,
    RefArg,
    TaskOptions,
    TaskPhase,
    TaskRecord,
    TaskSpec,
)
from repro.metrics.core import Counters
from repro.obs.events import EventBus
from repro.obs.registry import MetricRegistry
from repro.simcore import Environment, Event

#: Per-job accounting bucket for work carrying no job id (plain
#: single-driver runs, or background restores not tied to any task).
UNATTRIBUTED_JOB = "<unattributed>"


class Runtime:
    """A simulated Ray cluster plus the driver-facing API."""

    def __init__(
        self,
        cluster: Union[Cluster, ClusterSpec],
        config: Optional[RuntimeConfig] = None,
        env: Optional[Environment] = None,
    ) -> None:
        self.env = env or Environment()
        if isinstance(cluster, ClusterSpec):
            cluster = Cluster(self.env, cluster)
        elif cluster.env is not self.env:
            raise ValueError("cluster and runtime must share an Environment")
        self.cluster = cluster
        self.config = config or RuntimeConfig()
        self.ids: IdGenerator = cluster.ids
        self.counters = Counters()
        #: Structured event bus (repro.obs): every subsystem publishes
        #: typed, causally linked events here; exported by the tracer
        #: and the run reporter.
        self.bus = EventBus(clock=lambda: self.env.now)
        #: Dimensioned metrics (per-node / per-job counters, gauges,
        #: histograms) fed alongside the flat ``counters``.
        self.metrics = MetricRegistry()
        #: The resolved policy stack (placement, memory, spill, dispatch)
        #: named by the config and instantiated from the registry; the
        #: scheduler and every node manager consult it.
        self.policies: PolicyStack = resolve_policies(self.config)
        #: Fault tolerance: node-death handling, retry pacing, and
        #: lineage reconstruction (§4.2.3) live here.
        self.lineage = LineageManager(self)
        #: Per-job counter buckets keyed by job id (multi-tenant control
        #: plane); every charge path adds to both the global counters and
        #: the owning job's bucket, so bucket sums equal the global value
        #: exactly (checked by the chaos invariant checker).
        self.job_counters: Dict[str, Counters] = {}
        self.payloads: Dict[ObjectId, Any] = {}
        self.directory = ObjectDirectory(on_refcount_zero=self._evict_object)
        self.tasks: Dict[TaskId, TaskRecord] = {}
        self._object_creator: Dict[ObjectId, TaskId] = {}
        #: Objects that submitted-but-unfinished tasks will consume.  The
        #: spill managers treat these as spill-of-last-resort: spilling a
        #: block a pending consumer is about to read forces an immediate
        #: restore (write + read for nothing).
        self._pending_consumers: Dict[ObjectId, int] = {}
        #: The disaggregated spill tier (``spill_backend="shared"``);
        #: None keeps the paper's node-local spill behaviour.
        self.shared_store: Optional[SharedStoreBackend] = None
        if self.config.spill_backend == "shared":
            self.shared_store = SharedStoreBackend(
                self.env,
                self.config.shared_store_bandwidth_bytes_per_sec,
                per_op_latency_s=self.config.shared_store_latency_s,
            )
        #: Mid-run cluster elasticity: per-node lifecycle state (active /
        #: draining / removed) behind :meth:`add_node` /
        #: :meth:`drain_node` / :meth:`remove_node`.
        self.membership = ClusterMembership(cluster.node_ids)
        #: Cluster size at construction; the autoscaler's default growth
        #: ceiling when ``autoscale_max_nodes`` is 0.
        self._initial_node_count = len(cluster)
        #: Submitted-but-unfinished tasks, cluster-wide (autoscale input).
        self._inflight_tasks = 0
        #: Whether an autoscale decision point is already scheduled; the
        #: flag debounces ticks so at most one timer is pending.  Never
        #: set while ``autoscale_policy == "none"``, so static runs
        #: schedule no extra simulation events at all.
        self._autoscaler_armed = False
        self.node_managers: Dict[NodeId, NodeManager] = {}
        for node in cluster:
            manager = NodeManager(self, node)
            self.node_managers[node.node_id] = manager
            node.on_death(self.lineage.on_node_death)
        self.scheduler = Scheduler(self)
        self.driver_node_id: NodeId = cluster.node_ids[0]
        self._driver = DriverHost(self.env, bus=self.bus)
        #: Optional chaos hook: ``hook(spec, node_id) -> extra_seconds``
        #: taxes a task attempt with additional latency (straggler
        #: injection).  Installed by :class:`repro.chaos.ChaosInjector`.
        self.task_delay_hook: Optional[Callable[[TaskSpec, NodeId], float]] = None
        #: Duck-typed self-profiler slot, set by
        #: ``repro.obs.profile.SelfProfiler.attach`` (like
        #: :meth:`attach_sampler`, the data plane never imports the
        #: profiler); ``record_run`` stamps its summary when present.
        self.self_profiler: Optional[Any] = None
        #: Duck-typed planning-surface slot, set by
        #: :meth:`attach_planner` (normally via
        #: ``repro.plan.planner_for_runtime`` when ``config.replan`` is
        #: on).  The data plane never imports the plan layer: drivers
        #: announce :meth:`stage_boundary` and whatever planner is
        #: attached decides whether to re-plan.
        self.planner: Optional[Any] = None

    # -- construction helpers -------------------------------------------------
    @classmethod
    def create(
        cls,
        node_spec: NodeSpec,
        num_nodes: int,
        config: Optional[RuntimeConfig] = None,
    ) -> "Runtime":
        """A homogeneous cluster runtime in one call."""
        env = Environment()
        cluster = Cluster.homogeneous(env, node_spec, num_nodes)
        return cls(cluster, config=config, env=env)

    @property
    def now(self) -> float:
        return self.env.now

    @property
    def driver_manager(self) -> NodeManager:
        return self.node_managers[self.driver_node_id]

    # -- remote functions ---------------------------------------------------
    def remote(self, fn: Any = None, **options: Any) -> Any:
        """Declare a remote function; usable as a decorator.

        ``rt.remote(fn)`` or ``@rt.remote(num_returns=4, compute=1.5)``.
        """
        if fn is None:
            task_options = TaskOptions(**options)

            def decorate(inner_fn: Any) -> RemoteFunction:
                return RemoteFunction(self, inner_fn, task_options)

            return decorate
        return RemoteFunction(self, fn, TaskOptions(**options))

    def actor(self, cls: Any, **options: Any) -> Any:
        """Declare an actor class (Listing 2's ``trainer`` pattern).

        ``rt.actor(Trainer).options(node=n).remote(args)`` returns a
        handle whose method calls are tasks serialised on the actor.
        """
        from repro.futures.actor import ActorClass

        return ActorClass(self, cls, TaskOptions(**options))

    # -- per-job accounting ---------------------------------------------------
    def job_bucket(self, job_id: Optional[str]) -> Counters:
        """The per-job counter bucket for ``job_id`` (created on demand);
        unattributed work lands in the :data:`UNATTRIBUTED_JOB` bucket."""
        key = job_id if job_id is not None else UNATTRIBUTED_JOB
        bucket = self.job_counters.get(key)
        if bucket is None:
            bucket = self.job_counters[key] = Counters()
        return bucket

    def charge_task(
        self, options: TaskOptions, name: str, amount: float = 1.0
    ) -> None:
        """Increment a counter globally *and* in the owning job's bucket.

        Every task-attributable counter must go through here (not
        ``self.counters.add``) so per-job buckets sum exactly to the
        global totals -- the accounting invariant the chaos checker
        asserts when the jobs layer is active.
        """
        self.counters.add(name, amount)
        self.job_bucket(options.job_id).add(name, amount)
        key = options.job_id if options.job_id is not None else UNATTRIBUTED_JOB
        self.metrics.counter(name, amount, job=key)

    def charge_object(
        self, object_id: ObjectId, name: str, amount: float = 1.0
    ) -> None:
        """Per-job side of an object-attributed charge (spill bytes).

        The spill manager already adds the global total itself; this maps
        the object back to its creating task's job and mirrors the amount
        into that bucket only.
        """
        job_id: Optional[str] = None
        creator = self._object_creator.get(object_id)
        if creator is not None:
            record = self.tasks.get(creator)
            if record is not None:
                job_id = record.spec.options.job_id
        self.job_bucket(job_id).add(name, amount)
        key = job_id if job_id is not None else UNATTRIBUTED_JOB
        self.metrics.counter(name, amount, job=key)

    # -- submission (driver-side, non-blocking) -----------------------------
    def submit_task(
        self,
        fn: Any,
        args: Sequence[Any],
        options: TaskOptions,
        fn_name: str,
        is_generator: bool,
    ) -> List[ObjectRef]:
        """Create and schedule one task (the ``.remote()`` entry point);
        returns one ref per declared return."""
        if options.job_id is None:
            # Attribute work to the submitting driver: the jobs layer runs
            # each job as a labeled subdriver, so its task graph is tagged
            # without libraries knowing about jobs at all.
            label = self._driver.current_label()
            if label is not None:
                options = dataclasses.replace(options, job_id=label)
        task_id = self.ids.next_task_id()
        return_ids = tuple(
            self.ids.next_object_id() for _ in range(options.num_returns)
        )
        arg_descs: List[Arg] = []
        held_refs: List[ObjectRef] = []
        for arg in args:
            if isinstance(arg, ObjectRef):
                if arg.object_id not in self.directory:
                    raise ObjectLostError(arg.object_id, "argument already freed")
                arg_descs.append(RefArg(arg.object_id))
                held_refs.append(make_ref(self, arg.object_id))
            else:
                arg_descs.append(PlainArg(arg))
        spec = TaskSpec(
            task_id=task_id,
            fn=fn,
            fn_name=fn_name,
            args=tuple(arg_descs),
            options=options,
            return_ids=return_ids,
            is_generator=is_generator,
        )
        record = TaskRecord(spec, held_refs=held_refs, submitted_at=self.env.now)
        self.tasks[task_id] = record
        for oid in return_ids:
            self.directory.register(oid, creator=task_id)
            self._object_creator[oid] = task_id
        refs = [make_ref(self, oid) for oid in return_ids]
        self.charge_task(options, "tasks_submitted", 1)
        self._note_task_inflight(record)
        self.bus.emit(
            "task.submit",
            task=task_id,
            job=options.job_id,
            fn=fn_name,
            returns=[str(oid) for oid in return_ids],
            deps=[str(a.object_id) for a in arg_descs if isinstance(a, RefArg)],
        )
        self._schedule_when_ready(record)
        return refs

    def has_pending_consumer(self, object_id: ObjectId) -> bool:
        """True if a submitted-but-unfinished task will consume this object
        (spill managers treat such objects as last-resort victims)."""
        return self._pending_consumers.get(object_id, 0) > 0

    def _count_consumers(self, record: TaskRecord, delta: int) -> None:
        for oid in record.spec.dependency_ids:
            count = self._pending_consumers.get(oid, 0) + delta
            if count > 0:
                self._pending_consumers[oid] = count
            else:
                self._pending_consumers.pop(oid, None)

    def _schedule_when_ready(self, record: TaskRecord) -> None:
        """Dispatch once every dependency object is created."""
        if not record.counted:
            record.counted = True
            self._count_consumers(record, +1)
        record.phase = TaskPhase.WAITING_DEPS
        deps = list(dict.fromkeys(record.spec.dependency_ids))
        pending = [oid for oid in deps if not self.directory.is_created(oid)]
        record.pending_deps = len(pending)
        if record.pending_deps == 0:
            self._dispatch(record)
            return

        def on_dep_ready(_oid: ObjectId, error: Optional[BaseException]) -> None:
            if record.phase is not TaskPhase.WAITING_DEPS:
                return
            if error is not None:
                self.task_failed(record, error)
                return
            record.pending_deps -= 1
            if record.pending_deps == 0:
                self._dispatch(record)

        for oid in pending:
            self.directory.on_ready(oid, on_dep_ready)

    def _dispatch(self, record: TaskRecord) -> None:
        self.scheduler.dispatch(record)

    # -- task completion callbacks (from NodeManager) -------------------------
    def task_finished(self, record: TaskRecord) -> None:
        """NodeManager callback: release the finished task's argument refs."""
        self._note_task_settled(record)
        if record.counted:
            record.counted = False
            self._count_consumers(record, -1)
        for ref in record.held_refs:
            ref.release()
        record.held_refs = []
        self.scheduler.task_done(record)

    def task_failed(self, record: TaskRecord, error: BaseException) -> None:
        """NodeManager callback: mark returns failed, release arguments."""
        self._note_task_settled(record)
        record.phase = TaskPhase.FAILED
        record.finished_at = self.env.now
        if record.counted:
            record.counted = False
            self._count_consumers(record, -1)
        self.charge_task(record.spec.options, "tasks_failed", 1)
        self.bus.emit(
            "task.fail",
            task=record.spec.task_id,
            job=record.spec.options.job_id,
            node=record.assigned_node,
            error=type(error).__name__,
        )
        for oid in record.spec.return_ids:
            self.directory.mark_failed(oid, error)
        for ref in record.held_refs:
            ref.release()
        record.held_refs = []
        self.scheduler.task_done(record)

    # -- reference counting & eviction -----------------------------------------
    def incref(self, object_id: ObjectId) -> None:
        """Add one reference to an object (used by ObjectRef creation)."""
        self.directory.incref(object_id)

    def decref(self, object_id: ObjectId) -> None:
        """Drop one reference; at zero the object is evicted everywhere."""
        self.directory.decref(object_id)

    def free(self, refs: Sequence[ObjectRef]) -> None:
        """Eagerly release references (equivalent to ``del`` in Listing 3)."""
        for ref in refs:
            ref.release()

    def retain_until(
        self, refs: Sequence[ObjectRef], until: Sequence[ObjectRef]
    ) -> None:
        """Keep ``refs`` alive until every object in ``until`` is created.

        This is how a shuffle library keeps intermediate blocks around for
        recovery durability (ES-push, §4.3.1) without blocking: the extra
        references die as soon as the downstream results exist.
        """
        holder = [make_ref(self, ref.object_id) for ref in refs]
        remaining = {"count": len(until)}
        if remaining["count"] == 0:
            for held in holder:
                held.release()
            return

        def on_ready(_oid: ObjectId, _error: Optional[BaseException]) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                for held in holder:
                    held.release()

        for ref in until:
            self.directory.on_ready(ref.object_id, on_ready)

    def _evict_object(self, object_id: ObjectId) -> None:
        record = self.directory.maybe_get(object_id)
        if record is None:
            return
        for node_id in list(record.memory_nodes):
            manager = self.node_managers.get(node_id)
            if manager is not None:
                manager.store.free(object_id)
            record.memory_nodes.discard(node_id)
        for node_id in list(record.spill_nodes):
            manager = self.node_managers.get(node_id)
            if manager is not None:
                manager.spill.forget(object_id)
        if record.shared and self.shared_store is not None:
            self.shared_store.forget(object_id)
        self.payloads.pop(object_id, None)
        self.directory.drop(object_id)
        self.counters.add("objects_evicted", 1)
        self.bus.emit("object.evict", obj=object_id)

    def maybe_drop_payload(self, object_id: ObjectId) -> None:
        """Drop the Python payload if no copy survives anywhere."""
        if not self.directory.is_available(object_id):
            self.payloads.pop(object_id, None)

    # -- fault tolerance (delegated to the LineageManager) --------------------
    def note_fault_cause(self, node_id: NodeId, seq: Optional[int]) -> None:
        """Record the event seq of a fault about to kill ``node_id`` so
        the ensuing ``node.death`` links back to it (chaos injector)."""
        self.lineage.note_fault_cause(node_id, seq)

    def note_object_fault(self, object_id: ObjectId, seq: Optional[int]) -> None:
        """Record the fault seq behind an object loss so the eventual
        reconstruction retry links back to it (chaos injector)."""
        self.lineage.note_object_fault(object_id, seq)

    def directory_objects_on(self, node_id: NodeId) -> List[ObjectId]:
        """Objects the directory currently places (in any form) on a node."""
        found = []
        for oid in list(self.payloads):
            record = self.directory.maybe_get(oid)
            if record is None:
                continue
            if node_id in record.memory_nodes or node_id in record.spill_nodes:
                found.append(oid)
        return found

    def resubmit_task(
        self, record: TaskRecord, cause: Optional[int] = None
    ) -> None:
        """Public entry for re-executing an interrupted task (used by
        executor-failure handling; node failures go through the
        detection path).  ``cause`` is the triggering fault's event seq."""
        self.lineage.resubmit(record, cause=cause)

    def ensure_available(self, object_id: ObjectId) -> Event:
        """An event that fires once the object has a live copy somewhere
        (triggering lineage reconstruction for lost objects; see
        :meth:`LineageManager.ensure_available`)."""
        return self.lineage.ensure_available(object_id)

    # -- cluster elasticity ---------------------------------------------------
    def _note_task_inflight(self, record: TaskRecord) -> None:
        """A task entered (or re-entered) flight: count it toward
        autoscale pressure and make sure a decision point is pending.
        Guarded by ``record.in_flight`` so each live episode counts
        exactly once."""
        if not record.in_flight:
            record.in_flight = True
            self._inflight_tasks += 1
        self._maybe_arm_autoscaler()

    def _note_task_settled(self, record: TaskRecord) -> None:
        """A task reached a terminal phase: stop counting it."""
        if record.in_flight:
            record.in_flight = False
            self._inflight_tasks -= 1

    def add_node(self, node_spec: Optional[NodeSpec] = None) -> NodeId:
        """Join a new node to the running cluster (elastic scale-up).

        Provisions the node in the fabric, builds its manager, registers
        the usual death handling, and announces the join on the event
        bus.  The scheduler sees the node as a placement candidate from
        the next dependency-ready task onward.  Defaults to the spec of
        the cluster's first founding node (homogeneous growth).
        """
        spec = node_spec or self.cluster.spec.nodes[0]
        node = self.cluster.add_node(spec)
        manager = NodeManager(self, node)
        self.node_managers[node.node_id] = manager
        node.on_death(self.lineage.on_node_death)
        self.membership.add(node.node_id)
        self.counters.add("nodes_added", 1)
        self.bus.emit(
            "cluster.membership",
            node=node.node_id,
            action="join",
            active=self.membership.active_count(),
        )
        return node.node_id

    def drain_node(self, node_id: NodeId) -> None:
        """Begin a graceful departure: the node finishes what it is
        running but receives no new placements (it behaves like a
        blacklisted node).  The autoscaler -- or an explicit
        :meth:`remove_node` call -- completes the departure once the
        node is idle.  The driver node may never drain."""
        if node_id == self.driver_node_id:
            raise ValueError("cannot drain the driver node")
        self.membership.drain(node_id)
        self.counters.add("nodes_drained", 1)
        self.bus.emit(
            "cluster.membership",
            node=node_id,
            action="drain",
            active=self.membership.active_count(),
        )

    def remove_node(
        self, node_id: NodeId, cause: Optional[int] = None
    ) -> None:
        """Complete a node's departure (from active or draining).

        This is a *planned* removal, unlike a crash: resident work is
        interrupted and resubmitted immediately, and directory metadata
        is cleaned right away -- there is no heartbeat-timeout detection
        delay and no scheduler blacklisting.  Objects whose only copies
        lived here become reconstruction work for the lineage manager,
        unless the shared spill tier still holds them
        (``spill_backend="shared"``), in which case consumers simply
        read them back.  ``cause`` optionally links the ensuing retry
        events to a triggering fault/chaos event.
        """
        if node_id == self.driver_node_id:
            raise ValueError("cannot remove the driver node")
        manager = self.node_managers[node_id]
        self.membership.remove(node_id)
        casualties = manager.kill()
        lost_objects = self.directory_objects_on(node_id)
        # Planned departure: no death listeners, no detection delay.
        manager.node.retire()
        departure = self.bus.emit(
            "cluster.membership",
            node=node_id,
            action="remove",
            cause=cause,
            casualties=len(casualties),
            lost_objects=len(lost_objects),
            active=self.membership.active_count(),
        )
        seq = departure.seq if departure is not None else cause
        self.lineage.note_node_fault_event(node_id, seq)
        self.counters.add("nodes_removed", 1)
        for oid in lost_objects:
            self.directory.remove_memory_location(oid, node_id)
            self.directory.remove_spill_location(oid, node_id)
            self.maybe_drop_payload(oid)

        def requeue() -> None:
            # After the interrupts have unwound the dying task processes.
            for record in casualties:
                if record.phase not in (TaskPhase.FINISHED, TaskPhase.FAILED):
                    self.lineage.resubmit(record, cause=seq)

        self.env.call_later(0.0, requeue)

    def _maybe_arm_autoscaler(self) -> None:
        """Schedule one autoscale decision point, if none is pending.

        A no-op under ``autoscale_policy="none"`` -- the elasticity plane
        then adds zero simulation events, keeping static runs
        event-for-event identical to the seed (pinned by the golden
        digest tests).
        """
        if self._autoscaler_armed:
            return
        if self.policies.autoscale.name == "none":
            return
        self._autoscaler_armed = True
        self.env.call_later(
            self.config.autoscale_interval_s, self._autoscale_tick
        )

    def _autoscale_view(self) -> "AutoscaleView":
        """Aggregate cluster pressure for the autoscale policy."""
        from repro.futures.policies.base import AutoscaleView

        queued_allocations = sum(
            manager.store.backlog
            for node_id, manager in self.node_managers.items()
            if self.membership.is_active(node_id) and manager.node.alive
        )
        return AutoscaleView(
            now=self.env.now,
            active_nodes=self.membership.active_count(),
            draining_nodes=self.membership.draining_count(),
            pending_tasks=max(0, self._inflight_tasks),
            queued_allocations=queued_allocations,
            total_slots=self.scheduler.total_slots,
            min_nodes=self.config.autoscale_min_nodes,
            max_nodes=self.config.autoscale_max_nodes
            or self._initial_node_count,
        )

    def _autoscale_tick(self) -> None:
        """One debounced autoscale decision point.

        Completes pending drains whose nodes went idle, asks the policy
        to grow/shrink/hold, enacts the answer, and re-arms while work
        (or a drain) is still outstanding -- so the timer chain always
        terminates and ``env.run()`` can drain the event queue.
        """
        self._autoscaler_armed = False
        self._complete_drains()
        view = self._autoscale_view()
        decision = self.policies.autoscale.decide(view)
        if decision.action not in ("grow", "shrink", "hold"):
            raise ValueError(
                f"autoscale policy returned unknown action {decision.action!r}"
            )
        if decision.action != "hold":
            self.bus.emit(
                "policy.decision",
                policy=f"autoscale:{self.policies.autoscale.name}",
                decision=decision.action,
                count=decision.count,
                reason=decision.reason,
            )
        if decision.action == "grow":
            for _ in range(max(1, decision.count)):
                self.add_node()
        elif decision.action == "shrink":
            for _ in range(max(1, decision.count)):
                victim = self._pick_drain_victim()
                if victim is None:
                    break
                self.drain_node(victim)
        if self._inflight_tasks > 0 or self.membership.draining_count() > 0:
            self._maybe_arm_autoscaler()

    def _complete_drains(self) -> None:
        """Remove draining nodes that have finished their resident work."""
        for node_id in self.membership.draining_nodes():
            manager = self.node_managers[node_id]
            if manager.pending_tasks == 0:
                self.remove_node(node_id)

    def _pick_drain_victim(self) -> Optional[NodeId]:
        """The active non-driver node to drain on a shrink decision:
        fewest pending tasks, newest first on ties (scale-in releases
        the most recently added capacity, like cloud autoscalers)."""
        candidates = [
            node_id
            for node_id in self.membership.active_nodes()
            if node_id != self.driver_node_id
            and self.node_managers[node_id].node.alive
        ]
        if not candidates:
            return None
        order = {node_id: i for i, node_id in enumerate(self.node_managers)}
        return min(
            candidates,
            key=lambda nid: (
                self.node_managers[nid].pending_tasks,
                -order[nid],
            ),
        )

    # -- driver-facing blocking API ------------------------------------------
    def run(self, fn: Any, *args: Any, **kwargs: Any) -> Any:
        """Execute ``fn`` as the driver program; returns its result.

        Simulated time advances while the driver blocks; ``runtime.now``
        after ``run`` returns is the job completion time.
        """
        return self._driver.run(fn, *args, **kwargs)

    def get(self, refs: Union[ObjectRef, Sequence[ObjectRef]]) -> Any:
        """Fetch object values to the driver (blocking)."""
        single = isinstance(refs, ObjectRef)
        ref_list = [refs] if single else list(refs)
        for ref in ref_list:
            if not isinstance(ref, ObjectRef):
                raise TypeError(f"get expects ObjectRefs, got {type(ref).__name__}")
        proc = self.env.process(
            self._get_proc([ref.object_id for ref in ref_list]), name="driver-get"
        )
        values = self._driver.block_on(proc)
        return values[0] if single else values

    def _get_proc(self, object_ids: List[ObjectId]) -> Iterator[Event]:
        manager = self.driver_manager
        values: List[Any] = []
        for oid in object_ids:
            yield self.ensure_available(oid)
            state = yield from manager.ensure_local(oid)
            if state == "memory":
                manager.store.unpin(oid)
            else:
                # Resident only on the driver node's disk: stream it in.
                yield manager.spill.restore_read(oid)
            values.append(self.payloads[oid])
        return values

    def wait(
        self,
        refs: Sequence[ObjectRef],
        num_returns: int = 1,
        timeout: Optional[float] = None,
    ) -> Tuple[List[ObjectRef], List[ObjectRef]]:
        """Block until ``num_returns`` of ``refs`` are computed (§3.1).

        Returns ``(ready, not_ready)`` preserving input order.  Objects
        whose task failed count as ready (their ``get`` raises), matching
        Ray.  Does not fetch values -- this is the pipelining/backpressure
        primitive of Listing 3 L22.
        """
        ref_list = list(refs)
        if not 1 <= num_returns <= len(ref_list):
            raise ValueError(
                f"num_returns={num_returns} out of range for {len(ref_list)} refs"
            )
        done = self.env.event()
        state = {"ready": 0}

        def on_ready(_oid: ObjectId, _error: Optional[BaseException]) -> None:
            state["ready"] += 1
            if state["ready"] >= num_returns and not done.triggered:
                done.succeed()

        for ref in ref_list:
            if ref.object_id in self.directory:
                self.directory.on_ready(ref.object_id, on_ready)
            else:
                on_ready(ref.object_id, None)
        if not done.triggered and timeout is not None:
            wake: Event = self.env.any_of([done, self.env.timeout(timeout)])
        else:
            wake = done
        self._driver.block_on(wake)
        ready, not_ready = [], []
        for ref in ref_list:
            record = self.directory.maybe_get(ref.object_id)
            is_ready = (
                record is None or record.created or record.error is not None
            )
            (ready if is_ready else not_ready).append(ref)
        return ready, not_ready

    def put(self, value: Any) -> ObjectRef:
        """Store a driver-local value in the object store (blocking)."""
        object_id = self.ids.next_object_id()
        self.directory.register(object_id, creator=None)
        ref = make_ref(self, object_id)
        proc = self.env.process(self._put_proc(object_id, value), name="driver-put")
        self._driver.block_on(proc)
        return ref

    def _put_proc(self, object_id: ObjectId, value: Any) -> Iterator[Event]:
        manager = self.driver_manager
        size = size_of(value)
        self.payloads[object_id] = value
        allocation = manager.store.allocate(object_id, size, primary=True)
        placement = yield allocation
        if placement == "memory":
            self.directory.add_memory_location(object_id, manager.node_id)
        self.directory.mark_created(object_id, size)
        self.bus.emit(
            "object.create", obj=object_id, node=manager.node_id, bytes=size
        )

    def replicate(self, refs: Sequence[ObjectRef], copies: int = 2) -> None:
        """Ensure each object has at least ``copies`` durable copies on
        distinct alive nodes (blocking; driver-side).

        This is the §4.2.3 replica-tuning knob the paper sketches as
        future work: the application chooses extra redundancy for blocks
        it cannot afford to reconstruct.  Replicas are *primary* entries
        on their nodes, so memory pressure spills them instead of
        dropping them.
        """
        if copies < 1:
            raise ValueError("need at least one copy")
        proc = self.env.process(
            self._replicate_proc([ref.object_id for ref in refs], copies),
            name="driver-replicate",
        )
        self._driver.block_on(proc)

    def _replicate_proc(
        self, object_ids: List[ObjectId], copies: int
    ) -> Iterator[Event]:
        for oid in object_ids:
            yield self.ensure_available(oid)
            record = self.directory.maybe_get(oid)
            if record is None:
                continue
            existing = {
                nid
                for nid in self.directory.locations(oid)
                if self.node_managers[nid].node.alive
            }
            targets = [
                nid
                for nid in sorted(self.node_managers)
                if nid not in existing and self.node_managers[nid].node.alive
            ]
            for nid in targets[: max(0, copies - len(existing))]:
                manager = self.node_managers[nid]
                state = yield from manager.ensure_local(oid)
                # Promote the copy to primary: it now spills under
                # pressure rather than being dropped.
                manager.store.try_allocate(oid, record.size, primary=True)
                if state == "memory":
                    manager.store.unpin(oid)
                self.counters.add("replicas_created", 1)

    def peek(self, ref: ObjectRef) -> Any:
        """Read an object's payload *without* simulating any I/O.

        For offline validation and metrics only (e.g. checking a finished
        sort's output) -- using it inside a workload would bypass the data
        plane the reproduction is measuring.
        """
        if ref.object_id not in self.payloads:
            raise ObjectLostError(ref.object_id, "no payload to peek at")
        return self.payloads[ref.object_id]

    def sleep(self, seconds: float) -> None:
        """Advance simulated time from the driver (like ``time.sleep``)."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._driver.block_on(self.env.timeout(seconds))

    # -- concurrent drivers (multi-tenant job control plane) -------------------
    def spawn_driver(
        self,
        fn: Any,
        *args: Any,
        name: str = "",
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> DriverHandle:
        """Start ``fn`` as a concurrent subdriver program (from a driver).

        The subdriver may use every blocking API (``get``/``wait``/
        ``sleep``) and runs cooperatively with its siblings -- this is how
        the jobs layer (:mod:`repro.jobs`) executes many blocking shuffle
        jobs against one cluster.  ``label`` becomes the ``job_id``
        stamped onto every task the subdriver submits.
        """
        return self._driver.spawn(fn, *args, name=name, label=label, **kwargs)

    def join_driver(self, handle: DriverHandle) -> Any:
        """Block until a spawned subdriver finishes; return its result or
        re-raise its error (driver-side)."""
        return self._driver.join(handle)

    def wait_event(self, event: Event) -> Any:
        """Block the calling driver on an arbitrary simulation event
        (e.g. ``env.any_of`` over subdriver completion events)."""
        return self._driver.block_on(event)

    def on_ready(
        self,
        ref: ObjectRef,
        callback: Callable[[ObjectId, Optional[BaseException]], None],
    ) -> None:
        """Invoke ``callback(object_id, error)`` once ``ref`` is created
        (or its task failed terminally), without blocking.

        The non-blocking completion hook long-lived jobs build on: the
        streaming tier timestamps aggregate visibility this way, and the
        online-aggregation app records its error-vs-time curve with it.
        Fires immediately if the object already exists.
        """
        self.directory.on_ready(ref.object_id, callback)

    def allocation_backlog(self) -> int:
        """Bytes parked in the allocation queues of active, alive nodes.

        The memory policy's admission queue is where store overload
        shows up first; this aggregate is the data-plane pressure signal
        the streaming tier's backpressure controller (and the threshold
        autoscaler) key off.
        """
        return sum(
            manager.store.backlog
            for node_id, manager in self.node_managers.items()
            if self.membership.is_active(node_id) and manager.node.alive
        )

    def timestamp(self) -> float:
        """Current simulated time (driver-side convenience)."""
        return self.env.now

    # -- introspection (§4.3.1 "runtime introspection") -----------------------
    def locations_of(self, ref: ObjectRef) -> List[NodeId]:
        """Where an object currently lives (memory or disk)."""
        record = self.directory.maybe_get(ref.object_id)
        if record is None or not record.created:
            return []
        return sorted(set(record.memory_nodes) | set(record.spill_nodes))

    def object_size(self, ref: ObjectRef) -> int:
        """Size in bytes of a created object (0 if not yet created)."""
        record = self.directory.maybe_get(ref.object_id)
        return record.size if record is not None and record.created else 0

    def task_attempts(self, ref: ObjectRef) -> int:
        """How many times the creating task of ``ref`` has executed."""
        creator_id = self._object_creator.get(ref.object_id)
        if creator_id is None:
            return 0
        return self.tasks[creator_id].spec.attempts

    def stats(self) -> Dict[str, Any]:
        """A summary snapshot for benchmarks and EXPERIMENTS.md tables."""
        snapshot = dict(self.counters.as_dict())
        snapshot["time"] = self.env.now
        snapshot["network_bytes"] = self.cluster.network_bytes_sent
        snapshot["store_peak_bytes"] = sum(
            manager.store.peak_used_bytes
            for manager in self.node_managers.values()
        )
        return snapshot

    def cluster_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-node hardware capacities, keyed by node id.

        Recorded into ``run.summary`` so the perf layer can turn event
        activity into utilization *fractions* (busy cores / total cores,
        disk and NIC busy against their bandwidth, store occupancy
        against capacity) offline, from the trace file alone.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for node_id, manager in self.node_managers.items():
            spec = manager.node.spec
            out[str(node_id)] = {
                "name": spec.name,
                "cores": spec.cores,
                "object_store_bytes": spec.object_store_bytes,
                "disk_bandwidth_bytes_per_sec": spec.disk.bandwidth_bytes_per_sec,
                "nic_bandwidth_bytes_per_sec": spec.nic.bandwidth_bytes_per_sec,
            }
        return out

    def job_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-job counter snapshots keyed by job id (buckets filled by
        :meth:`charge_task` / :meth:`charge_object`)."""
        return {
            job_id: bucket.snapshot()
            for job_id, bucket in self.job_counters.items()
        }

    def sample_gauges(self) -> None:
        """Sample point-in-time per-node gauges into :attr:`metrics`.

        Called by :func:`repro.obs.record_run` before export (and usable
        mid-run for occupancy timelines): object-store occupancy, pinned
        bytes, allocation backlog, and spilled bytes per node.
        """
        for node_id, manager in self.node_managers.items():
            store = manager.store
            self.metrics.gauge_set(
                "store_used_bytes", store.used_bytes, node=node_id
            )
            self.metrics.gauge_set(
                "store_pinned_bytes", store.pinned_bytes, node=node_id
            )
            self.metrics.gauge_set(
                "store_backlog", store.backlog, node=node_id
            )
            self.metrics.gauge_set(
                "spilled_bytes", manager.spill.spilled_bytes, node=node_id
            )

    def attach_sampler(self, sampler: Any) -> Callable[[], None]:
        """Attach a live telemetry consumer to the event bus.

        ``sampler`` is duck-typed (the data plane never imports the obs
        live package): an optional ``on_attach(runtime)`` hook fires
        first -- samplers capture the clock and the cluster capacity
        snapshot there -- then ``on_event`` is subscribed to the bus.
        Returns the unsubscribe callable.
        """
        on_attach = getattr(sampler, "on_attach", None)
        if on_attach is not None:
            on_attach(self)
        return self.bus.subscribe(sampler.on_event)

    def attach_planner(self, planner: Any) -> None:
        """Install a planning surface on the duck-typed ``planner`` slot.

        Like :meth:`attach_sampler`, the runtime holds the object
        without importing its package (``repro.plan`` stays an optional
        layer above the data plane).  Call sites that resolve
        ``variant="auto"`` find the shared planner here, and
        :meth:`stage_boundary` forwards boundary announcements to it.
        """
        self.planner = planner

    def stage_boundary(self, label: str, **info: Any) -> Optional[Any]:
        """Announce a stage/round boundary to the attached planner.

        Drivers running multi-stage work call this between stages with
        whatever context they have (``plan=``, ``remaining_shape=``,
        ``job=``, ``inflight=``); the attached planner's duck-typed
        ``on_stage_boundary`` hook may return a revised plan (or bound)
        for the remaining work.  A no-op returning ``None`` when no
        planner is attached or it declines -- static runs pay nothing.
        """
        if self.planner is None:
            return None
        hook = getattr(self.planner, "on_stage_boundary", None)
        if hook is None:
            return None
        return hook(label, **info)
