"""The user-facing remote-function API (``@runtime.remote``).

Mirrors the Ray API shown in the paper's listings::

    sort_map = rt.remote(sort_map_fn)
    refs = sort_map.options(num_returns=R).remote(part)
    value = rt.get(refs[0])
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import TYPE_CHECKING, Any, Callable, List, Sequence, Union

from repro.futures.refs import ObjectRef
from repro.futures.task import TaskOptions

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime


class RemoteFunction:
    """A Python function bound to a runtime, invocable as a task."""

    def __init__(
        self,
        runtime: "Runtime",
        fn: Callable[..., Any],
        options: TaskOptions,
    ) -> None:
        if not callable(fn):
            raise TypeError(f"remote target must be callable, got {fn!r}")
        self._runtime = runtime
        self._fn = fn
        self._options = options
        self._is_generator = inspect.isgeneratorfunction(fn)
        self._name = options.name or getattr(fn, "__name__", "anonymous")

    @property
    def fn(self) -> Callable[..., Any]:
        return self._fn

    @property
    def task_options(self) -> TaskOptions:
        return self._options

    def options(self, **overrides: Any) -> "RemoteFunction":
        """A copy of this remote function with updated task options."""
        new_options = dataclasses.replace(self._options, **overrides)
        return RemoteFunction(self._runtime, self._fn, new_options)

    def remote(self, *args: Any) -> Union[ObjectRef, List[ObjectRef]]:
        """Submit one invocation; non-blocking.

        Returns one :class:`ObjectRef` when ``num_returns == 1``, else a
        list of refs (one per return), exactly like Ray.
        """
        _reject_nested_refs(args)
        refs = self._runtime.submit_task(
            self._fn, args, self._options, self._name, self._is_generator
        )
        if self._options.num_returns == 1:
            return refs[0]
        return refs

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        raise TypeError(
            f"remote function {self._name!r} cannot be called directly; "
            "use .remote(...)"
        )

    def __repr__(self) -> str:
        return f"<RemoteFunction {self._name} {self._options}>"


def _reject_nested_refs(args: Sequence[Any]) -> None:
    """Only top-level arguments may be ObjectRefs (as in the listings);
    refs buried inside containers would silently pass without resolution,
    so they are rejected loudly."""
    for arg in args:
        if isinstance(arg, ObjectRef):
            continue
        if isinstance(arg, (list, tuple, set)):
            if any(isinstance(item, ObjectRef) for item in arg):
                raise TypeError(
                    "ObjectRef nested inside a container argument; pass refs "
                    "as top-level arguments (e.g. fn.remote(*refs))"
                )
        elif isinstance(arg, dict):
            if any(
                isinstance(x, ObjectRef) for kv in arg.items() for x in kv
            ):
                raise TypeError(
                    "ObjectRef nested inside a dict argument; pass refs as "
                    "top-level arguments"
                )
