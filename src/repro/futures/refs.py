"""Distributed futures: first-class references to eventual remote values.

An :class:`ObjectRef` is what ``.remote()`` returns and what tasks accept
as arguments.  The runtime reference-counts *instances*: each live
``ObjectRef`` pointing at an object keeps that object reachable, and
dropping the last one (``del map_results`` in the push-based shuffle,
Listing 3 L29) lets the runtime evict the object everywhere without
spilling it -- the write-amplification/recovery trade-off of §4.3.1.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.ids import ObjectId

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime


class ObjectRef:
    """A handle to an object that may live anywhere in the cluster."""

    __slots__ = ("object_id", "_release", "_released", "__weakref__")

    def __init__(
        self,
        object_id: ObjectId,
        release: Optional[Callable[[ObjectId], None]] = None,
    ) -> None:
        self.object_id = object_id
        self._release = release
        self._released = False

    def release(self) -> None:
        """Explicitly drop this handle's count (idempotent)."""
        if self._released:
            return
        self._released = True
        if self._release is not None:
            self._release(self.object_id)

    def __del__(self) -> None:
        try:
            self.release()
        except Exception:  # noqa: BLE001 - never raise during GC/shutdown
            pass

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectRef) and other.object_id == self.object_id

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __repr__(self) -> str:
        return f"ObjectRef({self.object_id})"


def make_ref(runtime: "Runtime", object_id: ObjectId) -> ObjectRef:
    """Create a counted reference bound to ``runtime``.

    The release callback holds only a weak reference to the runtime so that
    dangling ``ObjectRef`` instances never keep a finished runtime alive.
    """
    runtime_ref = weakref.ref(runtime)

    def release(oid: ObjectId) -> None:
        live_runtime = runtime_ref()
        if live_runtime is not None:
            live_runtime.decref(oid)

    runtime.incref(object_id)
    return ObjectRef(object_id, release)
