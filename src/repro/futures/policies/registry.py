"""The string-keyed policy registry and config-driven resolution.

Policies are registered under ``(kind, name)`` where ``kind`` is one of
:data:`POLICY_KINDS`.  A factory receives the runtime config (duck
typed -- this package never imports ``RuntimeConfig``) and returns a
policy instance, so a single name like ``"default"`` can adapt to
config flags (``enable_node_affinity``, ``enable_write_fusing``, ...).

Usage::

    from repro.futures.policies import register_policy

    register_policy("placement", "my-policy", lambda config: MyPolicy())

    rt = Runtime.create(spec, n, config=RuntimeConfig(
        placement_policy="my-policy",
    ))

The ablation benchmarks select arms purely by these names -- no per-arm
branching reaches the data plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.futures.policies import defaults
from repro.futures.policies.base import (
    AutoscalePolicy,
    DispatchPolicy,
    MemoryPolicy,
    PlacementPolicy,
    SpillPolicy,
)

#: The five pluggable decision points of the data plane.
POLICY_KINDS: Tuple[str, ...] = (
    "placement",
    "memory",
    "spill",
    "dispatch",
    "autoscale",
)

#: A policy factory: config in (duck typed), policy instance out.
PolicyFactory = Callable[[Any], Any]

_REGISTRY: Dict[Tuple[str, str], PolicyFactory] = {}


def register_policy(kind: str, name: str, factory: PolicyFactory) -> None:
    """Register (or replace) a named policy factory for ``kind``."""
    if kind not in POLICY_KINDS:
        raise ValueError(
            f"unknown policy kind {kind!r}; expected one of {POLICY_KINDS}"
        )
    if not name:
        raise ValueError("policy name must be non-empty")
    _REGISTRY[(kind, name)] = factory


def available_policies(kind: Optional[str] = None) -> Dict[str, List[str]]:
    """Registered policy names, keyed by kind (optionally one kind)."""
    kinds = (kind,) if kind is not None else POLICY_KINDS
    return {
        k: sorted(name for (rk, name) in _REGISTRY if rk == k) for k in kinds
    }


def create_policy(kind: str, name: str, config: Any) -> Any:
    """Instantiate the registered ``(kind, name)`` policy for ``config``."""
    factory = _REGISTRY.get((kind, name))
    if factory is None:
        known = ", ".join(available_policies(kind)[kind]) or "<none>"
        raise ValueError(
            f"unknown {kind} policy {name!r}; registered: {known}"
        )
    return factory(config)


@dataclass
class PolicyStack:
    """The resolved policy instances one runtime runs with."""

    placement: PlacementPolicy
    memory: MemoryPolicy
    spill: SpillPolicy
    dispatch: DispatchPolicy
    autoscale: AutoscalePolicy


def resolve_policies(config: Any) -> PolicyStack:
    """Build the runtime's policy stack from config-named registry keys.

    Reads ``config.placement_policy`` / ``memory_policy`` /
    ``spill_policy`` / ``dispatch_policy`` (defaulting each to
    ``"default"`` / ``"fifo"`` when absent, so bare config objects keep
    working).
    """
    return PolicyStack(
        placement=create_policy(
            "placement", getattr(config, "placement_policy", "default"), config
        ),
        memory=create_policy(
            "memory", getattr(config, "memory_policy", "default"), config
        ),
        spill=create_policy(
            "spill", getattr(config, "spill_policy", "default"), config
        ),
        dispatch=create_policy(
            "dispatch", getattr(config, "dispatch_policy", "fifo"), config
        ),
        autoscale=create_policy(
            "autoscale", getattr(config, "autoscale_policy", "none"), config
        ),
    )


# -- built-in registrations ---------------------------------------------------
def _default_placement(config: Any) -> defaults.StagedPlacementPolicy:
    stages: List[object] = [defaults.BlacklistStage()]
    if getattr(config, "enable_node_affinity", True):
        stages.append(defaults.AffinityStage())
    if getattr(config, "enable_locality_scheduling", True):
        stages.append(defaults.LocalityStage())
    stages.append(defaults.LeastLoadedStage())
    return defaults.StagedPlacementPolicy("default", stages)


def _load_only_placement(config: Any) -> defaults.StagedPlacementPolicy:
    return defaults.StagedPlacementPolicy(
        "load-only", [defaults.BlacklistStage(), defaults.LeastLoadedStage()]
    )


def _random_placement(config: Any) -> defaults.StagedPlacementPolicy:
    return defaults.StagedPlacementPolicy(
        "random",
        [
            defaults.BlacklistStage(),
            defaults.RandomStage(getattr(config, "seed", 0)),
        ],
    )


def _default_spill(config: Any) -> defaults.FusedSpillPolicy:
    return defaults.FusedSpillPolicy(
        fuse_min_bytes=getattr(config, "fuse_min_bytes", 100 * 1024 * 1024),
        fused=getattr(config, "enable_write_fusing", True),
        name="default",
    )


def _unfused_spill(config: Any) -> defaults.FusedSpillPolicy:
    return defaults.FusedSpillPolicy(
        fuse_min_bytes=getattr(config, "fuse_min_bytes", 100 * 1024 * 1024),
        fused=False,
        name="unfused",
    )


def _fair_share_dispatch(config: Any) -> defaults.FairShareDispatchPolicy:
    return defaults.FairShareDispatchPolicy(
        slots_per_core=getattr(config, "fair_share_slots_per_core", 1.0)
    )


def _threshold_autoscale(config: Any) -> defaults.ThresholdAutoscalePolicy:
    return defaults.ThresholdAutoscalePolicy(
        grow_pressure=getattr(config, "autoscale_grow_pressure", 2.0),
        shrink_pressure=getattr(config, "autoscale_shrink_pressure", 0.0),
    )


register_policy("placement", "default", _default_placement)
register_policy("placement", "load-only", _load_only_placement)
register_policy("placement", "random", _random_placement)
register_policy(
    "memory", "default", lambda config: defaults.InsertionOrderMemoryPolicy()
)
register_policy(
    "memory", "newest-first", lambda config: defaults.NewestFirstMemoryPolicy()
)
register_policy("spill", "default", _default_spill)
register_policy("spill", "unfused", _unfused_spill)
register_policy(
    "dispatch", "fifo", lambda config: defaults.FifoDispatchPolicy()
)
register_policy("dispatch", "fair-share", _fair_share_dispatch)
register_policy(
    "autoscale", "none", lambda config: defaults.NoAutoscalePolicy()
)
register_policy("autoscale", "threshold", _threshold_autoscale)
