"""Pluggable data-plane policies (the Exoshuffle thesis, applied inward).

Placement, memory admission/eviction, spill batching, and dispatch
ordering are typed :class:`~typing.Protocol` seams with string-keyed
registry entries selected through ``RuntimeConfig``:

- :class:`PlacementPolicy` -- blacklist / affinity / locality / load as
  composable stages (:class:`StagedPlacementPolicy`);
- :class:`MemoryPolicy` -- cached-copy eviction order and allocation
  queue admission;
- :class:`SpillPolicy` -- victim selection, target sizing, write fusing;
- :class:`DispatchPolicy` -- FIFO vs weighted virtual-time fair sharing;
- :class:`AutoscalePolicy` -- when the cluster grows or shrinks between
  configured bounds (``"none"`` holds the seed fixed-shape behaviour).

This package is pure by construction: it imports only task/ref/id value
types (enforced by ``tools/check_layering.py``), so policies can be
unit-tested without a runtime and cannot re-tangle with the mechanism
layers.  See ``docs/data_plane.md`` ("Policy plane") for the interface
table and how to add a policy.
"""

from repro.futures.policies.base import (
    AllocationView,
    AutoscaleDecision,
    AutoscalePolicy,
    AutoscaleView,
    CachedCopyView,
    DispatchContext,
    DispatchOutcome,
    DispatchPolicy,
    MemoryPolicy,
    NodeCandidate,
    ParkNote,
    PlacementDecision,
    PlacementPolicy,
    PlacementRequest,
    PlacementStage,
    SpillCandidate,
    SpillPolicy,
)
from repro.futures.policies.defaults import (
    AffinityStage,
    BlacklistStage,
    FairShareDispatchPolicy,
    FifoDispatchPolicy,
    FusedSpillPolicy,
    InsertionOrderMemoryPolicy,
    LeastLoadedStage,
    LocalityStage,
    NewestFirstMemoryPolicy,
    NoAutoscalePolicy,
    RandomStage,
    StagedPlacementPolicy,
    ThresholdAutoscalePolicy,
)
from repro.futures.policies.registry import (
    POLICY_KINDS,
    PolicyStack,
    available_policies,
    create_policy,
    register_policy,
    resolve_policies,
)

__all__ = [
    # protocols & views
    "PlacementPolicy",
    "PlacementStage",
    "PlacementRequest",
    "PlacementDecision",
    "NodeCandidate",
    "MemoryPolicy",
    "AllocationView",
    "CachedCopyView",
    "SpillPolicy",
    "SpillCandidate",
    "DispatchPolicy",
    "DispatchContext",
    "DispatchOutcome",
    "ParkNote",
    "AutoscalePolicy",
    "AutoscaleView",
    "AutoscaleDecision",
    # defaults
    "StagedPlacementPolicy",
    "BlacklistStage",
    "AffinityStage",
    "LocalityStage",
    "LeastLoadedStage",
    "RandomStage",
    "InsertionOrderMemoryPolicy",
    "NewestFirstMemoryPolicy",
    "FusedSpillPolicy",
    "FifoDispatchPolicy",
    "FairShareDispatchPolicy",
    "NoAutoscalePolicy",
    "ThresholdAutoscalePolicy",
    # registry
    "POLICY_KINDS",
    "PolicyStack",
    "register_policy",
    "create_policy",
    "available_policies",
    "resolve_policies",
]
