"""Default policy implementations: the seed data-plane behaviour, ported.

Every class here reproduces a decision rule that used to be hard-coded
in ``scheduler.py`` / ``object_store.py`` / ``spilling.py`` *exactly*
(the golden event-digest test is the proof), plus a few named
alternatives the ablation benchmarks select from the registry.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.common.rng import seeded_rng
from repro.futures.policies.base import (
    AllocationView,
    AutoscaleDecision,
    AutoscaleView,
    CachedCopyView,
    DispatchContext,
    DispatchOutcome,
    NodeCandidate,
    ParkNote,
    PlacementDecision,
    PlacementRequest,
    SpillCandidate,
)
from repro.futures.task import TaskPhase, TaskRecord


# -- placement stages --------------------------------------------------------
class BlacklistStage:
    """Filter out nodes inside their post-failure cooldown window.

    Availability beats hygiene: with every candidate blacklisted, pass
    them all through as if none were.
    """

    name = "blacklist"

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> Sequence[NodeCandidate]:
        """Keep non-blacklisted candidates; keep all if none remain."""
        preferred = [c for c in candidates if not c.blacklisted]
        return preferred if preferred else list(candidates)


class AffinityStage:
    """Honour the task's soft node-affinity hint when it is a candidate.

    Affinity is soft: a hinted node that is dead (not a candidate) or
    filtered by an earlier stage falls through to the next stage -- this
    is what lets shuffles survive node failures without library-level
    handling.
    """

    name = "affinity"

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> "NodeCandidate | Sequence[NodeCandidate]":
        """Decide the hinted node if present among candidates."""
        if request.affinity is not None:
            for candidate in candidates:
                if candidate.node_id == request.affinity:
                    return candidate
        return candidates


class LocalityStage:
    """Place where the most argument bytes already live, if anywhere.

    Ties break by load then node id for determinism.  When no candidate
    holds any argument bytes the stage passes through.
    """

    name = "locality"

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> "NodeCandidate | Sequence[NodeCandidate]":
        """Decide the byte-richest candidate, or pass when none hold data."""
        local = [c for c in candidates if c.arg_bytes > 0]
        if not local:
            return candidates
        return min(local, key=lambda c: (-c.arg_bytes, c.load, c.node_id))


class LeastLoadedStage:
    """Terminal stage: spread by queued-tasks-per-core, ties by node id."""

    name = "least-loaded"

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> NodeCandidate:
        """Decide the least-loaded candidate."""
        return min(candidates, key=lambda c: (c.load, c.node_id))


class RandomStage:
    """Terminal stage: a seeded uniform pick (deterministic per task)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> NodeCandidate:
        """Decide a uniformly random candidate, keyed on (seed, task)."""
        ordered = sorted(candidates, key=lambda c: c.node_id)
        rng = seeded_rng(self.seed, "placement", request.task_id.index)
        return ordered[int(rng.integers(0, len(ordered)))]


class StagedPlacementPolicy:
    """A placement policy as a pipeline of composable stages.

    Each stage either decides (returns one candidate) or narrows the
    pool for the next stage; a stage that would empty the pool is
    ignored.  If no stage decides, the smallest node id wins.
    """

    def __init__(self, name: str, stages: Sequence[object]) -> None:
        self.name = name
        self.stages = list(stages)

    def place(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> PlacementDecision:
        """Run the stages over ``candidates`` and return the decision."""
        pool: List[NodeCandidate] = list(candidates)
        for stage in self.stages:
            result = stage.apply(request, pool)
            if isinstance(result, NodeCandidate):
                return PlacementDecision(
                    node_id=result.node_id,
                    stage=stage.name,
                    policy=self.name,
                    candidates=len(candidates),
                )
            if result:
                pool = list(result)
        chosen = min(pool, key=lambda c: c.node_id)
        return PlacementDecision(
            node_id=chosen.node_id,
            stage="fallback",
            policy=self.name,
            candidates=len(candidates),
        )


# -- memory ------------------------------------------------------------------
class InsertionOrderMemoryPolicy:
    """The seed behaviour: evict cached copies oldest first, admit the
    allocation queue strictly FIFO (approximating Ray's creation-order
    eviction)."""

    name = "default"
    strict_fifo = True

    def eviction_order(
        self,
        request: Optional[AllocationView],
        cached: Sequence[CachedCopyView],
    ) -> Sequence[CachedCopyView]:
        """Oldest (insertion order) first -- the order given."""
        return list(cached)

    def next_grant(self, queue: Sequence[AllocationView]) -> int:
        """Strict FIFO: always the head of the queue."""
        return 0


class NewestFirstMemoryPolicy(InsertionOrderMemoryPolicy):
    """MRU-flavoured alternative: drop the *newest* cached copies first,
    preserving long-lived hot copies (useful when re-fetch is cheap)."""

    name = "newest-first"

    def eviction_order(
        self,
        request: Optional[AllocationView],
        cached: Sequence[CachedCopyView],
    ) -> Sequence[CachedCopyView]:
        """Newest (most recently inserted) first."""
        return list(reversed(list(cached)))


# -- spilling ----------------------------------------------------------------
class FusedSpillPolicy:
    """The seed spill behaviour (§4.2.2): oldest-first victim selection
    protecting soon-needed blocks, sized to cover the backlog but at
    least ``fuse_min_bytes``, written as one fused file (or one
    seek-paying file per object when fusing is off)."""

    def __init__(
        self,
        fuse_min_bytes: int,
        fused: bool = True,
        name: str = "default",
    ) -> None:
        if fuse_min_bytes < 1:
            raise ValueError("fuse_min_bytes must be positive")
        self.fuse_min_bytes = fuse_min_bytes
        self.fused = fused
        self.name = name

    def target_bytes(self, backlog_bytes: int) -> int:
        """Cover the backlog, but never write files under the fuse
        minimum (tiny files pay the seek the fusing exists to avoid)."""
        return max(backlog_bytes, self.fuse_min_bytes)

    def select_victims(
        self,
        candidates: Sequence[SpillCandidate],
        target: int,
        last_resort: bool,
    ) -> List[SpillCandidate]:
        """Accumulate oldest-first until ``target`` bytes are covered.

        ``needed_soon`` candidates are skipped (without counting toward
        the target) unless ``last_resort``.  Already-``spilled``
        candidates count toward the target -- dropping their memory copy
        relieves the same pressure -- but are not written again.
        """
        chosen: List[SpillCandidate] = []
        total = 0
        for candidate in candidates:
            if total >= target:
                break
            if not last_resort and candidate.needed_soon:
                continue
            total += candidate.size
            if not candidate.spilled:
                chosen.append(candidate)
        return chosen

    def make_batches(
        self, victims: Sequence[SpillCandidate]
    ) -> List[List[SpillCandidate]]:
        """One fused batch, or one single-object batch per victim."""
        victims = list(victims)
        if not victims:
            return []
        if self.fused:
            return [victims]
        return [[victim] for victim in victims]


# -- autoscaling ---------------------------------------------------------------
class NoAutoscalePolicy:
    """The seed behaviour: the cluster shape is fixed for the run."""

    name = "none"

    def decide(self, view: AutoscaleView) -> AutoscaleDecision:
        """Always hold."""
        return AutoscaleDecision(action="hold", reason="autoscaling disabled")


class ThresholdAutoscalePolicy:
    """Grow under queue pressure, shrink when idle, between bounds.

    Pressure is queued work (dependency-ready tasks plus backlogged
    store allocations) per available task slot.  Above
    ``grow_pressure`` the policy adds one node per decision point; at
    or below ``shrink_pressure`` (0 means fully idle) it drains one.
    One node per decision keeps the loop stable: each change must take
    effect (and the debounce interval pass) before the next.
    """

    name = "threshold"

    def __init__(
        self, grow_pressure: float = 2.0, shrink_pressure: float = 0.0
    ) -> None:
        if grow_pressure <= shrink_pressure:
            raise ValueError("grow_pressure must exceed shrink_pressure")
        if shrink_pressure < 0:
            raise ValueError("shrink_pressure must be non-negative")
        self.grow_pressure = grow_pressure
        self.shrink_pressure = shrink_pressure

    def pressure(self, view: AutoscaleView) -> float:
        """Queued work per available task slot."""
        queued = view.pending_tasks + view.queued_allocations
        return queued / max(view.total_slots, 1)

    def decide(self, view: AutoscaleView) -> AutoscaleDecision:
        """Grow above the high-water mark, shrink when idle enough."""
        pressure = self.pressure(view)
        if (
            pressure > self.grow_pressure
            and view.max_nodes
            and view.active_nodes + view.draining_nodes < view.max_nodes
        ):
            return AutoscaleDecision(
                action="grow",
                count=1,
                reason=f"pressure {pressure:.2f} > {self.grow_pressure:.2f}",
            )
        if (
            pressure <= self.shrink_pressure
            and view.draining_nodes == 0
            and view.active_nodes > view.min_nodes
        ):
            return AutoscaleDecision(
                action="shrink",
                count=1,
                reason=f"pressure {pressure:.2f} <= {self.shrink_pressure:.2f}",
            )
        return AutoscaleDecision(
            action="hold", reason=f"pressure {pressure:.2f} within band"
        )


# -- dispatch ----------------------------------------------------------------
class FifoDispatchPolicy:
    """The seed behaviour: every dependency-ready task launches
    immediately, in arrival order.  Knows nothing about jobs."""

    name = "fifo"
    supports_jobs = False

    def submit(
        self,
        record: TaskRecord,
        job_id: Optional[str],
        ctx: DispatchContext,
    ) -> DispatchOutcome:
        """Launch immediately."""
        return DispatchOutcome(launch=[record])

    def task_done(
        self, record: TaskRecord, ctx: DispatchContext
    ) -> DispatchOutcome:
        """No dispatch state to update."""
        return DispatchOutcome()

    def register_job(
        self,
        job_id: str,
        *,
        weight: float = 1.0,
        tenant: Optional[str] = None,
        tenant_task_slots: Optional[int] = None,
    ) -> None:
        """FIFO manages no job queues; registering is an error."""
        raise ValueError(
            "the 'fifo' dispatch policy does not manage jobs; use "
            "'fair-share' (RuntimeConfig.dispatch_policy) instead"
        )

    def unregister_job(
        self, job_id: str, ctx: DispatchContext
    ) -> DispatchOutcome:
        """Nothing registered, nothing to do."""
        return DispatchOutcome()

    def queued_tasks(self, job_id: str) -> int:
        """FIFO never parks tasks."""
        return 0

    def inflight_tasks(self, job_id: str) -> int:
        """FIFO tracks no per-job slots."""
        return 0


class FairShareDispatchPolicy:
    """Weighted virtual-time fair queueing across concurrent jobs.

    Tasks from *registered* jobs park in per-job FIFO queues; the
    context's slot budget is shared among them by virtual-time weighted
    fair queueing: each launch advances the job's virtual time by
    ``1 / weight``, and the job with the smallest virtual time launches
    next.  A briefly idle job rejoins at the current virtual clock
    rather than catching up on "missed" service.  Tenancy composes on
    top via shared concurrent-slot caps.  Unregistered work (plain
    single-driver runs, retried in-flight tasks) bypasses fairness and
    launches immediately.
    """

    name = "fair-share"
    supports_jobs = True

    def __init__(self, slots_per_core: float = 1.0) -> None:
        if slots_per_core <= 0:
            raise ValueError("slots_per_core must be positive")
        #: Concurrent task slots granted per alive core; >1 oversubscribes
        #: (useful when tasks are I/O heavy), <1 keeps queues deep.
        self.slots_per_core = slots_per_core
        self._queues: Dict[str, Deque[TaskRecord]] = {}
        self._weights: Dict[str, float] = {}
        self._tenant_of: Dict[str, Optional[str]] = {}
        self._tenant_caps: Dict[str, int] = {}
        self._vtime: Dict[str, float] = {}
        self._vclock = 0.0
        self._inflight: Dict[TaskRecord, str] = {}
        self._inflight_by_job: Dict[str, int] = defaultdict(int)
        self._inflight_by_tenant: Dict[str, int] = defaultdict(int)

    # -- job registry -------------------------------------------------------
    def register_job(
        self,
        job_id: str,
        *,
        weight: float = 1.0,
        tenant: Optional[str] = None,
        tenant_task_slots: Optional[int] = None,
    ) -> None:
        """Enrol a job in fair sharing; its tasks queue until launched.

        ``weight`` scales the job's share of task slots.  ``tenant``
        groups jobs under a shared concurrent-slot cap
        (``tenant_task_slots``; unlimited when ``None``).
        """
        if weight <= 0:
            raise ValueError(f"job weight must be positive, got {weight}")
        if job_id in self._queues:
            raise ValueError(f"job {job_id!r} already registered")
        self._queues[job_id] = deque()
        self._weights[job_id] = weight
        self._tenant_of[job_id] = tenant
        if tenant is not None and tenant_task_slots is not None:
            self._tenant_caps[tenant] = tenant_task_slots
        # Join at the current virtual clock: no retroactive catch-up.
        self._vtime[job_id] = self._vclock

    def unregister_job(
        self, job_id: str, ctx: DispatchContext
    ) -> DispatchOutcome:
        """Remove a finished job; stragglers launch immediately."""
        queue = self._queues.pop(job_id, None)
        if queue is None:
            return DispatchOutcome()
        self._weights.pop(job_id, None)
        self._tenant_of.pop(job_id, None)
        self._vtime.pop(job_id, None)
        stragglers = [
            record
            for record in queue
            if record.phase not in (TaskPhase.FINISHED, TaskPhase.FAILED)
        ]
        pumped = self._pump(ctx)
        return DispatchOutcome(
            launch=stragglers + pumped.launch, picks=pumped.picks
        )

    def queued_tasks(self, job_id: str) -> int:
        """How many of a job's tasks are parked awaiting a slot."""
        queue = self._queues.get(job_id)
        return len(queue) if queue is not None else 0

    def inflight_tasks(self, job_id: str) -> int:
        """How many of a job's tasks currently occupy slots."""
        return self._inflight_by_job.get(job_id, 0)

    # -- dispatch -----------------------------------------------------------
    def submit(
        self,
        record: TaskRecord,
        job_id: Optional[str],
        ctx: DispatchContext,
    ) -> DispatchOutcome:
        """Park a registered job's task for fair release; everything
        else (unregistered jobs, retries of slot-holding tasks) launches
        immediately."""
        if job_id is None or job_id not in self._queues:
            return DispatchOutcome(launch=[record])
        if record in self._inflight:
            # A retry of a task that still holds its slot (executor or
            # node failure): re-launch without re-charging.
            return DispatchOutcome(launch=[record])
        self._queues[job_id].append(record)
        note = ParkNote(job_id=job_id, queued=len(self._queues[job_id]))
        outcome = self._pump(ctx)
        outcome.parked = note
        return outcome

    def task_done(
        self, record: TaskRecord, ctx: DispatchContext
    ) -> DispatchOutcome:
        """Free the task's slot (terminal phase) and release more work."""
        job_id = self._inflight.pop(record, None)
        if job_id is None:
            return DispatchOutcome()
        if self._inflight_by_job.get(job_id, 0) > 0:
            self._inflight_by_job[job_id] -= 1
        tenant = self._tenant_of.get(job_id)
        if tenant is not None and self._inflight_by_tenant.get(tenant, 0) > 0:
            self._inflight_by_tenant[tenant] -= 1
        return self._pump(ctx)

    def _eligible(self, job_id: str) -> bool:
        if not self._queues[job_id]:
            return False
        tenant = self._tenant_of.get(job_id)
        if tenant is None:
            return True
        cap = self._tenant_caps.get(tenant)
        return cap is None or self._inflight_by_tenant[tenant] < cap

    def _pump(self, ctx: DispatchContext) -> DispatchOutcome:
        """Release queued tasks while slots remain, smallest virtual
        time first (ties broken by job id for determinism)."""
        launch: List[TaskRecord] = []
        picks: List[str] = []
        while len(self._inflight) < ctx.total_slots:
            candidates = [job for job in self._queues if self._eligible(job)]
            if not candidates:
                break
            best = min(candidates, key=lambda job: (self._vtime[job], job))
            record = self._queues[best].popleft()
            if record.phase in (TaskPhase.FINISHED, TaskPhase.FAILED):
                # Failed while parked (e.g. a lost dependency); drop it.
                continue
            self._vclock = self._vtime[best]
            self._vtime[best] += 1.0 / self._weights[best]
            self._inflight[record] = best
            self._inflight_by_job[best] += 1
            tenant = self._tenant_of.get(best)
            if tenant is not None:
                self._inflight_by_tenant[tenant] += 1
            launch.append(record)
            picks.append(best)
        return DispatchOutcome(launch=launch, picks=tuple(picks))
