"""Policy interfaces and the view types the data plane feeds them.

The Exoshuffle thesis is that shuffle *decisions* belong in swappable
application-level code; this module gives the data plane the same shape
internally.  Each hot decision point -- task placement, allocation
admission and cached-copy eviction, spill victim/batch selection, and
dispatch ordering -- is a :class:`typing.Protocol` whose implementations
are pure functions over small frozen *view* dataclasses.

Layering is deliberate and lint-enforced (``tools/check_layering.py``):
this package imports only the task/ref/id value types, never
``Runtime``, ``NodeManager``, ``ObjectStore``, or ``simcore``.  The
mechanism layers build the views, call the policy, enact the choice,
and emit the ``policy.decision`` observability event -- policies never
touch live runtime state or the event bus, which is what keeps them
trivially swappable and testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.common.ids import NodeId, ObjectId, TaskId
from repro.futures.task import TaskRecord


# -- placement ---------------------------------------------------------------
@dataclass(frozen=True)
class NodeCandidate:
    """One alive node as the placement policy sees it."""

    #: The node's identity (the policy's only handle on it).
    node_id: NodeId
    #: True while the node is inside its post-failure cooldown window.
    blacklisted: bool
    #: Queued tasks per core -- the load-balancing signal.
    load: float
    #: Bytes of the task's arguments already resident here (memory or
    #: disk) -- the locality signal.
    arg_bytes: int


@dataclass(frozen=True)
class PlacementRequest:
    """The task-side inputs to one placement decision."""

    task_id: TaskId
    #: The soft node-affinity hint from the task's options, if any.
    affinity: Optional[NodeId]
    job_id: Optional[str]


@dataclass(frozen=True)
class PlacementDecision:
    """A placement policy's answer: where, and which stage decided."""

    node_id: NodeId
    #: Name of the stage that made the final call (e.g. ``"affinity"``,
    #: ``"locality"``, ``"least-loaded"``).
    stage: str
    #: Name of the deciding policy, for attribution.
    policy: str
    #: How many candidates were on the table.
    candidates: int


@runtime_checkable
class PlacementStage(Protocol):
    """One composable step of a staged placement policy.

    A stage either *decides* (returns a single :class:`NodeCandidate`)
    or *filters/passes* (returns a candidate list for the next stage).
    """

    name: str

    def apply(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> "NodeCandidate | Sequence[NodeCandidate]":
        """Decide or narrow; ``candidates`` is never empty."""
        ...


@runtime_checkable
class PlacementPolicy(Protocol):
    """Chooses a node for a dependency-ready task."""

    name: str

    def place(
        self, request: PlacementRequest, candidates: Sequence[NodeCandidate]
    ) -> PlacementDecision:
        """Pick one of ``candidates`` (never empty; all alive)."""
        ...


# -- memory ------------------------------------------------------------------
@dataclass(frozen=True)
class AllocationView:
    """A (queued or incoming) store-allocation request, policy-side."""

    object_id: ObjectId
    size: int
    #: True when this store would hold the authoritative copy.
    primary: bool


@dataclass(frozen=True)
class CachedCopyView:
    """An unpinned cached (re-fetchable) entry eligible for eviction."""

    object_id: ObjectId
    size: int


@runtime_checkable
class MemoryPolicy(Protocol):
    """Orders cached-copy eviction and allocation-queue admission."""

    name: str
    #: True when :meth:`next_grant` always answers 0 (strict FIFO); the
    #: store then skips building per-iteration queue views.
    strict_fifo: bool

    def eviction_order(
        self,
        request: Optional[AllocationView],
        cached: Sequence[CachedCopyView],
    ) -> Sequence[CachedCopyView]:
        """The order to drop cached copies in; the store stops as soon
        as enough bytes are freed for ``request``."""
        ...

    def next_grant(self, queue: Sequence[AllocationView]) -> int:
        """Index of the queued request to try admitting next; the store
        stops pumping at the first request that does not fit."""
        ...


# -- spilling ----------------------------------------------------------------
@dataclass(frozen=True)
class SpillCandidate:
    """An unpinned primary store entry the spill policy may victimise."""

    object_id: ObjectId
    size: int
    #: A queued local task is about to read this object; spilling it
    #: forces an immediate restore (write + read for nothing).
    needed_soon: bool
    #: This node's disk already holds a copy (nothing to write).
    spilled: bool


@runtime_checkable
class SpillPolicy(Protocol):
    """Chooses what to spill, how much, and in what file batches."""

    name: str

    def target_bytes(self, backlog_bytes: int) -> int:
        """How many bytes one spill round should move for a given
        allocation-queue backlog."""
        ...

    def select_victims(
        self,
        candidates: Sequence[SpillCandidate],
        target: int,
        last_resort: bool,
    ) -> List[SpillCandidate]:
        """Victims to write, in order.  ``last_resort`` permits spilling
        ``needed_soon`` objects to preserve liveness."""
        ...

    def make_batches(
        self, victims: Sequence[SpillCandidate]
    ) -> List[List[SpillCandidate]]:
        """Group victims into files: one batch = one sequential write
        (fused), one victim per batch = one seek-paying write each."""
        ...


# -- autoscaling ---------------------------------------------------------------
@dataclass(frozen=True)
class AutoscaleView:
    """Cluster-pressure inputs to one autoscaling decision.

    Built by the runtime's autoscaler at debounced decision points (task
    submit/finish); the policy sees only aggregate pressure, never live
    nodes or queues.
    """

    #: Simulated time of the decision point.
    now: float
    #: Nodes currently accepting work (alive and not draining).
    active_nodes: int
    #: Nodes draining toward removal.
    draining_nodes: int
    #: Dependency-ready tasks queued or running across the cluster.
    pending_tasks: int
    #: Store-allocation requests queued cluster-wide (memory pressure).
    queued_allocations: int
    #: Concurrent-task budget of the active nodes.
    total_slots: int
    #: Configured lower bound on cluster size.
    min_nodes: int
    #: Configured upper bound on cluster size.
    max_nodes: int


@dataclass(frozen=True)
class AutoscaleDecision:
    """An autoscale policy's answer: grow, shrink, or hold."""

    #: ``"grow"`` (add nodes), ``"shrink"`` (drain one node), or
    #: ``"hold"`` (no change).
    action: str
    #: How many nodes to add (grow) or drain (shrink).
    count: int = 0
    #: Human-readable justification, surfaced in ``policy.decision``.
    reason: str = ""


@runtime_checkable
class AutoscalePolicy(Protocol):
    """Decides when the cluster grows or shrinks between bounds."""

    name: str

    def decide(self, view: AutoscaleView) -> AutoscaleDecision:
        """Grow, shrink, or hold given current cluster pressure."""
        ...


# -- dispatch ----------------------------------------------------------------
@dataclass(frozen=True)
class DispatchContext:
    """Cluster-side inputs to one dispatch decision."""

    #: The concurrent-task budget (alive cores times slots-per-core).
    total_slots: int


@dataclass(frozen=True)
class ParkNote:
    """Record of a task parked behind its job's fair-share queue."""

    job_id: str
    #: Queue depth right after parking (what ``task.park`` reports).
    queued: int


@dataclass
class DispatchOutcome:
    """What a dispatch-policy call decided: launches and/or a park."""

    #: Records to launch now, in order.
    launch: List[TaskRecord] = field(default_factory=list)
    #: Set when the triggering record was parked instead of launched.
    parked: Optional[ParkNote] = None
    #: Job ids picked by fair queueing this round, in launch order
    #: (empty for trivial FIFO outcomes).
    picks: Tuple[str, ...] = ()


@runtime_checkable
class DispatchPolicy(Protocol):
    """Decides *when* dependency-ready tasks launch (placement decides
    *where*)."""

    name: str
    #: True when the policy manages per-job queues (fair sharing); the
    #: jobs control plane requires a scheduler whose policy supports it.
    supports_jobs: bool

    def submit(
        self,
        record: TaskRecord,
        job_id: Optional[str],
        ctx: DispatchContext,
    ) -> DispatchOutcome:
        """A dependency-ready record arrived: launch it, park it, or
        release other queued work."""
        ...

    def task_done(
        self, record: TaskRecord, ctx: DispatchContext
    ) -> DispatchOutcome:
        """A dispatched record reached a terminal phase; may free a slot
        and release queued work."""
        ...

    def register_job(
        self,
        job_id: str,
        *,
        weight: float = 1.0,
        tenant: Optional[str] = None,
        tenant_task_slots: Optional[int] = None,
    ) -> None:
        """Enrol a job for managed dispatch (fair sharing)."""
        ...

    def unregister_job(self, job_id: str, ctx: DispatchContext) -> DispatchOutcome:
        """Remove a finished job; stragglers come back as launches."""
        ...

    def queued_tasks(self, job_id: str) -> int:
        """How many of a job's tasks are parked awaiting a slot."""
        ...

    def inflight_tasks(self, job_id: str) -> int:
        """How many of a job's tasks currently occupy slots."""
        ...
