"""Global task placement (§4.3.2).

Ray's two-level scheduler balances bin-packing against load-balancing; for
shuffle what matters is (a) honouring the library's *soft node-affinity*
hints (merge tasks pinned near their future reduce tasks), (b) data
locality (run a task where most of its argument bytes already live), and
(c) spreading everything else across alive nodes by load.

Placement happens when a task's dependencies are all created, so locality
information is fresh.  Affinity is soft: if the hinted node is dead, the
task falls through to the normal policy -- this is what lets shuffles
survive node failures without library-level handling.

Recently-failed nodes are additionally *blacklisted* for a cooldown
window (``RuntimeConfig.blacklist_cooldown_s``): a node that crashed and
came straight back is avoided until the window elapses, so a flapping
node cannot keep swallowing retried work.  Blacklisting is best-effort --
if every alive node is blacklisted, placement proceeds as if none were.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.errors import SchedulingError
from repro.common.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime
    from repro.futures.task import TaskRecord


class Scheduler:
    """Places dependency-ready tasks onto alive nodes."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        #: Nodes to avoid until the mapped simulated time (cooldown after
        #: a failure); stale entries are pruned lazily during placement.
        self._blacklist_until: Dict[NodeId, float] = {}

    # -- failure feedback ---------------------------------------------------
    def note_failure(self, node_id: NodeId) -> None:
        """Record a node failure; blacklist it for the cooldown window."""
        cooldown = self.runtime.config.blacklist_cooldown_s
        if cooldown > 0:
            self._blacklist_until[node_id] = self.runtime.env.now + cooldown

    def is_blacklisted(self, node_id: NodeId) -> bool:
        """True while ``node_id`` is inside its post-failure cooldown."""
        until = self._blacklist_until.get(node_id)
        if until is None:
            return False
        if self.runtime.env.now >= until:
            del self._blacklist_until[node_id]
            return False
        return True

    def place(self, record: "TaskRecord") -> NodeId:
        """Choose a node for ``record``; raises if the cluster is empty."""
        runtime = self.runtime
        alive = {
            node_id: manager
            for node_id, manager in runtime.node_managers.items()
            if manager.node.alive
        }
        if not alive:
            raise SchedulingError("no alive nodes to schedule on")
        preferred = {
            node_id: manager
            for node_id, manager in alive.items()
            if not self.is_blacklisted(node_id)
        }
        # Availability beats hygiene: with every alive node blacklisted,
        # schedule as if none were.
        if preferred:
            alive = preferred

        options = record.spec.options
        if runtime.config.enable_node_affinity and options.node is not None:
            if options.node in alive:
                return options.node
            # Soft affinity: the hinted node is down (or blacklisted),
            # fall through.

        if runtime.config.enable_locality_scheduling:
            best = self._locality_choice(record, alive)
            if best is not None:
                return best

        return self._least_loaded(alive)

    # -- policies ------------------------------------------------------------
    def _locality_choice(
        self, record: "TaskRecord", alive: Dict[NodeId, object]
    ) -> Optional[NodeId]:
        """Node holding the most argument bytes, if any node holds any."""
        directory = self.runtime.directory
        bytes_by_node: Dict[NodeId, int] = defaultdict(int)
        for dep in record.spec.dependency_ids:
            dep_record = directory.maybe_get(dep)
            if dep_record is None:
                continue
            for node_id in dep_record.memory_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
            for node_id in dep_record.spill_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
        if not bytes_by_node:
            return None
        # Max bytes; break ties by load then node id for determinism.
        return min(
            bytes_by_node,
            key=lambda nid: (
                -bytes_by_node[nid],
                self._load(alive[nid]),
                nid,
            ),
        )

    def _least_loaded(self, alive: Dict[NodeId, object]) -> NodeId:
        return min(alive, key=lambda nid: (self._load(alive[nid]), nid))

    @staticmethod
    def _load(manager: object) -> float:
        return manager.pending_tasks / manager.node.spec.cores  # type: ignore[attr-defined]
