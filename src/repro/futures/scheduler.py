"""Global task placement (§4.3.2).

Ray's two-level scheduler balances bin-packing against load-balancing; for
shuffle what matters is (a) honouring the library's *soft node-affinity*
hints (merge tasks pinned near their future reduce tasks), (b) data
locality (run a task where most of its argument bytes already live), and
(c) spreading everything else across alive nodes by load.

Placement happens when a task's dependencies are all created, so locality
information is fresh.  Affinity is soft: if the hinted node is dead, the
task falls through to the normal policy -- this is what lets shuffles
survive node failures without library-level handling.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Optional

from repro.common.errors import SchedulingError
from repro.common.ids import NodeId

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime
    from repro.futures.task import TaskRecord


class Scheduler:
    """Places dependency-ready tasks onto alive nodes."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime

    def place(self, record: "TaskRecord") -> NodeId:
        """Choose a node for ``record``; raises if the cluster is empty."""
        runtime = self.runtime
        alive = {
            node_id: manager
            for node_id, manager in runtime.node_managers.items()
            if manager.node.alive
        }
        if not alive:
            raise SchedulingError("no alive nodes to schedule on")

        options = record.spec.options
        if runtime.config.enable_node_affinity and options.node is not None:
            if options.node in alive:
                return options.node
            # Soft affinity: the hinted node is down, fall through.

        if runtime.config.enable_locality_scheduling:
            best = self._locality_choice(record, alive)
            if best is not None:
                return best

        return self._least_loaded(alive)

    # -- policies ------------------------------------------------------------
    def _locality_choice(
        self, record: "TaskRecord", alive: Dict[NodeId, object]
    ) -> Optional[NodeId]:
        """Node holding the most argument bytes, if any node holds any."""
        directory = self.runtime.directory
        bytes_by_node: Dict[NodeId, int] = defaultdict(int)
        for dep in record.spec.dependency_ids:
            dep_record = directory.maybe_get(dep)
            if dep_record is None:
                continue
            for node_id in dep_record.memory_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
            for node_id in dep_record.spill_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
        if not bytes_by_node:
            return None
        # Max bytes; break ties by load then node id for determinism.
        return min(
            bytes_by_node,
            key=lambda nid: (
                -bytes_by_node[nid],
                self._load(alive[nid]),
                nid,
            ),
        )

    def _least_loaded(self, alive: Dict[NodeId, object]) -> NodeId:
        return min(alive, key=lambda nid: (self._load(alive[nid]), nid))

    @staticmethod
    def _load(manager: object) -> float:
        return manager.pending_tasks / manager.node.spec.cores  # type: ignore[attr-defined]
