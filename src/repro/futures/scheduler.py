"""Global task placement and fair-share dispatch (§4.3.2).

Ray's two-level scheduler balances bin-packing against load-balancing; for
shuffle what matters is (a) honouring the library's *soft node-affinity*
hints (merge tasks pinned near their future reduce tasks), (b) data
locality (run a task where most of its argument bytes already live), and
(c) spreading everything else across alive nodes by load.

Placement happens when a task's dependencies are all created, so locality
information is fresh.  Affinity is soft: if the hinted node is dead, the
task falls through to the normal policy -- this is what lets shuffles
survive node failures without library-level handling.

Recently-failed nodes are additionally *blacklisted* for a cooldown
window (``RuntimeConfig.blacklist_cooldown_s``): a node that crashed and
came straight back is avoided until the window elapses, so a flapping
node cannot keep swallowing retried work.  Blacklisting is best-effort --
if every alive node is blacklisted, placement proceeds as if none were.

:class:`Scheduler` dispatches dependency-ready tasks immediately (global
FIFO).  :class:`FairShareScheduler` extends it for the multi-tenant job
control plane (:mod:`repro.jobs`): tasks tagged with a registered job id
park in per-job queues and are released into the cluster by weighted
virtual-time fair queueing, so concurrent jobs share task slots by
weight instead of by submission burstiness.  Placement itself (affinity,
locality, blacklist, load) is inherited unchanged -- fairness decides
*when* a task dispatches, locality still decides *where*.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque, Dict, Optional

from repro.common.errors import SchedulingError
from repro.common.ids import NodeId
from repro.futures.task import TaskPhase

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime
    from repro.futures.task import TaskRecord


class Scheduler:
    """Places dependency-ready tasks onto alive nodes."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        #: Nodes to avoid until the mapped simulated time (cooldown after
        #: a failure); stale entries are pruned lazily during placement.
        self._blacklist_until: Dict[NodeId, float] = {}

    # -- dispatch -----------------------------------------------------------
    def dispatch(self, record: "TaskRecord") -> None:
        """Launch a dependency-ready task immediately (global FIFO)."""
        node_id = self.place(record)
        self.runtime.bus.emit(
            "task.place",
            task=record.spec.task_id,
            node=node_id,
            job=record.spec.options.job_id,
        )
        self.runtime.node_managers[node_id].submit(record)

    def task_done(self, record: "TaskRecord") -> None:
        """Hook: a dispatched task reached a terminal phase.  The base
        scheduler keeps no dispatch state, so this is a no-op."""

    # -- failure feedback ---------------------------------------------------
    def note_failure(self, node_id: NodeId) -> None:
        """Record a node failure; blacklist it for the cooldown window."""
        cooldown = self.runtime.config.blacklist_cooldown_s
        if cooldown > 0:
            self._blacklist_until[node_id] = self.runtime.env.now + cooldown

    def is_blacklisted(self, node_id: NodeId) -> bool:
        """True while ``node_id`` is inside its post-failure cooldown."""
        until = self._blacklist_until.get(node_id)
        if until is None:
            return False
        if self.runtime.env.now >= until:
            del self._blacklist_until[node_id]
            return False
        return True

    def place(self, record: "TaskRecord") -> NodeId:
        """Choose a node for ``record``; raises if the cluster is empty."""
        runtime = self.runtime
        alive = {
            node_id: manager
            for node_id, manager in runtime.node_managers.items()
            if manager.node.alive
        }
        if not alive:
            raise SchedulingError("no alive nodes to schedule on")
        preferred = {
            node_id: manager
            for node_id, manager in alive.items()
            if not self.is_blacklisted(node_id)
        }
        # Availability beats hygiene: with every alive node blacklisted,
        # schedule as if none were.
        if preferred:
            alive = preferred

        options = record.spec.options
        if runtime.config.enable_node_affinity and options.node is not None:
            if options.node in alive:
                return options.node
            # Soft affinity: the hinted node is down (or blacklisted),
            # fall through.

        if runtime.config.enable_locality_scheduling:
            best = self._locality_choice(record, alive)
            if best is not None:
                return best

        return self._least_loaded(alive)

    # -- policies ------------------------------------------------------------
    def _locality_choice(
        self, record: "TaskRecord", alive: Dict[NodeId, object]
    ) -> Optional[NodeId]:
        """Node holding the most argument bytes, if any node holds any."""
        directory = self.runtime.directory
        bytes_by_node: Dict[NodeId, int] = defaultdict(int)
        for dep in record.spec.dependency_ids:
            dep_record = directory.maybe_get(dep)
            if dep_record is None:
                continue
            for node_id in dep_record.memory_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
            for node_id in dep_record.spill_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
        if not bytes_by_node:
            return None
        # Max bytes; break ties by load then node id for determinism.
        return min(
            bytes_by_node,
            key=lambda nid: (
                -bytes_by_node[nid],
                self._load(alive[nid]),
                nid,
            ),
        )

    def _least_loaded(self, alive: Dict[NodeId, object]) -> NodeId:
        return min(alive, key=lambda nid: (self._load(alive[nid]), nid))

    @staticmethod
    def _load(manager: object) -> float:
        return manager.pending_tasks / manager.node.spec.cores  # type: ignore[attr-defined]


class FairShareScheduler(Scheduler):
    """Weighted fair queueing of tasks across concurrent jobs.

    Tasks from *registered* jobs park in per-job FIFO queues; a fixed
    budget of cluster task slots (alive cores times ``slots_per_core``)
    is shared among them by virtual-time weighted fair queueing: each
    dispatch advances the job's virtual time by ``1 / weight``, and the
    job with the smallest virtual time dispatches next.  A job with
    twice the weight therefore launches twice the tasks over any window
    where both jobs have work -- without starving anyone, since a
    briefly idle job rejoins at the current virtual clock rather than
    catching up on "missed" service.

    Tenancy composes on top: jobs registered with a ``tenant`` share
    that tenant's optional concurrent-task-slot cap, so one tenant's
    many jobs cannot crowd out another tenant regardless of per-job
    weights.  Unregistered work (plain single-driver runs, retried
    in-flight tasks) bypasses fairness entirely and dispatches
    immediately, keeping the base behaviour for everything that is not
    a control-plane job.
    """

    def __init__(self, runtime: "Runtime", slots_per_core: float = 1.0) -> None:
        super().__init__(runtime)
        if slots_per_core <= 0:
            raise ValueError("slots_per_core must be positive")
        #: Concurrent task slots granted per alive core; >1 oversubscribes
        #: (useful when tasks are I/O heavy), <1 keeps queues deep.
        self.slots_per_core = slots_per_core
        self._queues: Dict[str, Deque["TaskRecord"]] = {}
        self._weights: Dict[str, float] = {}
        self._tenant_of: Dict[str, Optional[str]] = {}
        self._tenant_caps: Dict[str, int] = {}
        self._vtime: Dict[str, float] = {}
        self._vclock = 0.0
        self._inflight: Dict["TaskRecord", str] = {}
        self._inflight_by_job: Dict[str, int] = defaultdict(int)
        self._inflight_by_tenant: Dict[str, int] = defaultdict(int)

    # -- job registry -------------------------------------------------------
    @property
    def total_slots(self) -> int:
        """The dispatch budget: alive cores times ``slots_per_core``."""
        cores = sum(
            manager.node.spec.cores
            for manager in self.runtime.node_managers.values()
            if manager.node.alive
        )
        return max(1, int(cores * self.slots_per_core))

    def register_job(
        self,
        job_id: str,
        *,
        weight: float = 1.0,
        tenant: Optional[str] = None,
        tenant_task_slots: Optional[int] = None,
    ) -> None:
        """Enrol a job in fair sharing; its tasks queue until dispatched.

        ``weight`` scales the job's share of task slots.  ``tenant``
        groups jobs under a shared concurrent-slot cap
        (``tenant_task_slots``; unlimited when ``None``).
        """
        if weight <= 0:
            raise ValueError(f"job weight must be positive, got {weight}")
        if job_id in self._queues:
            raise ValueError(f"job {job_id!r} already registered")
        self._queues[job_id] = deque()
        self._weights[job_id] = weight
        self._tenant_of[job_id] = tenant
        if tenant is not None and tenant_task_slots is not None:
            self._tenant_caps[tenant] = tenant_task_slots
        # Join at the current virtual clock: no retroactive catch-up.
        self._vtime[job_id] = self._vclock

    def unregister_job(self, job_id: str) -> None:
        """Remove a finished job; any stragglers dispatch immediately."""
        queue = self._queues.pop(job_id, None)
        if queue is None:
            return
        self._weights.pop(job_id, None)
        self._tenant_of.pop(job_id, None)
        self._vtime.pop(job_id, None)
        for record in queue:
            if record.phase not in (TaskPhase.FINISHED, TaskPhase.FAILED):
                super().dispatch(record)
        self._pump()

    def queued_tasks(self, job_id: str) -> int:
        """How many of a job's tasks are parked awaiting a slot."""
        queue = self._queues.get(job_id)
        return len(queue) if queue is not None else 0

    def inflight_tasks(self, job_id: str) -> int:
        """How many of a job's tasks currently occupy slots."""
        return self._inflight_by_job.get(job_id, 0)

    # -- dispatch -----------------------------------------------------------
    def dispatch(self, record: "TaskRecord") -> None:
        """Queue a registered job's task for fair dispatch; everything
        else (unregistered jobs, retries of slot-holding tasks) launches
        immediately via the base policy."""
        job_id = record.spec.options.job_id
        if job_id is None or job_id not in self._queues:
            super().dispatch(record)
            return
        if record in self._inflight:
            # A retry of a task that still holds its slot (executor or
            # node failure): re-launch without re-charging.
            super().dispatch(record)
            return
        self._queues[job_id].append(record)
        self.runtime.bus.emit(
            "task.park",
            task=record.spec.task_id,
            job=job_id,
            queued=len(self._queues[job_id]),
        )
        self._pump()

    def task_done(self, record: "TaskRecord") -> None:
        """Free the task's slot (terminal phase) and dispatch more work."""
        job_id = self._inflight.pop(record, None)
        if job_id is None:
            return
        if self._inflight_by_job.get(job_id, 0) > 0:
            self._inflight_by_job[job_id] -= 1
        tenant = self._tenant_of.get(job_id)
        if tenant is not None and self._inflight_by_tenant.get(tenant, 0) > 0:
            self._inflight_by_tenant[tenant] -= 1
        self._pump()

    def _eligible(self, job_id: str) -> bool:
        if not self._queues[job_id]:
            return False
        tenant = self._tenant_of.get(job_id)
        if tenant is None:
            return True
        cap = self._tenant_caps.get(tenant)
        return cap is None or self._inflight_by_tenant[tenant] < cap

    def _pump(self) -> None:
        """Dispatch queued tasks while slots remain, smallest virtual
        time first (ties broken by job id for determinism)."""
        while len(self._inflight) < self.total_slots:
            candidates = [job for job in self._queues if self._eligible(job)]
            if not candidates:
                return
            best = min(candidates, key=lambda job: (self._vtime[job], job))
            record = self._queues[best].popleft()
            if record.phase in (TaskPhase.FINISHED, TaskPhase.FAILED):
                # Failed while parked (e.g. a lost dependency); drop it.
                continue
            self._vclock = self._vtime[best]
            self._vtime[best] += 1.0 / self._weights[best]
            self._inflight[record] = best
            self._inflight_by_job[best] += 1
            tenant = self._tenant_of.get(best)
            if tenant is not None:
                self._inflight_by_tenant[tenant] += 1
            super().dispatch(record)
