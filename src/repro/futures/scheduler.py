"""Global task placement and dispatch: mechanism around the policy plane.

Ray's two-level scheduler balances bin-packing against load-balancing;
for shuffle what matters is (a) honouring the library's *soft
node-affinity* hints (merge tasks pinned near their future reduce
tasks), (b) data locality (run a task where most of its argument bytes
already live), and (c) spreading everything else across alive nodes by
load.  Recently-failed nodes are additionally *blacklisted* for a
cooldown window (``RuntimeConfig.blacklist_cooldown_s``).

The decision rules themselves live in :mod:`repro.futures.policies`:
the scheduler builds candidate views (alive nodes, blacklist state,
load, argument bytes), asks the runtime's
:class:`~repro.futures.policies.PlacementPolicy` *where* and its
:class:`~repro.futures.policies.DispatchPolicy` *when*, publishes a
``policy.decision`` event for each choice, and enacts it.  Placement
happens when a task's dependencies are all created, so locality
information is fresh.

:class:`FairShareScheduler` is the back-compat subclass pinning the
``"fair-share"`` dispatch policy (weighted virtual-time queueing for
the multi-tenant job control plane, :mod:`repro.jobs`); any scheduler
whose dispatch policy ``supports_jobs`` exposes the same job surface.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.common.errors import SchedulingError
from repro.common.ids import NodeId
from repro.futures.policies.base import (
    DispatchContext,
    DispatchOutcome,
    DispatchPolicy,
    NodeCandidate,
    PlacementDecision,
    PlacementPolicy,
    PlacementRequest,
)
from repro.futures.policies.defaults import FairShareDispatchPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.futures.runtime import Runtime
    from repro.futures.task import TaskRecord


class Scheduler:
    """Places and launches dependency-ready tasks via the policy plane."""

    def __init__(
        self,
        runtime: "Runtime",
        dispatch_policy: Optional[DispatchPolicy] = None,
        placement_policy: Optional[PlacementPolicy] = None,
    ) -> None:
        self.runtime = runtime
        #: Nodes to avoid until the mapped simulated time (cooldown after
        #: a failure); stale entries are pruned lazily during placement.
        self._blacklist_until: Dict[NodeId, float] = {}
        #: Where tasks run (policy; defaults to the runtime's stack).
        self.placement_policy: PlacementPolicy = (
            placement_policy or runtime.policies.placement
        )
        #: When tasks launch (policy; defaults to the runtime's stack).
        self.dispatch_policy: DispatchPolicy = (
            dispatch_policy or runtime.policies.dispatch
        )

    # -- dispatch -----------------------------------------------------------
    @property
    def supports_fair_share(self) -> bool:
        """True when the dispatch policy manages per-job queues (the
        jobs control plane requires this)."""
        return bool(getattr(self.dispatch_policy, "supports_jobs", False))

    @property
    def total_slots(self) -> int:
        """The dispatch budget: alive cores times the policy's
        slots-per-core (1.0 for policies without the knob)."""
        membership = self.runtime.membership
        cores = sum(
            manager.node.spec.cores
            for node_id, manager in self.runtime.node_managers.items()
            if manager.node.alive and membership.is_active(node_id)
        )
        per_core = getattr(self.dispatch_policy, "slots_per_core", 1.0)
        return max(1, int(cores * per_core))

    def _ctx(self) -> DispatchContext:
        return DispatchContext(total_slots=self.total_slots)

    def dispatch(self, record: "TaskRecord") -> None:
        """A task became dependency-ready: let the dispatch policy
        launch it, park it, or release other queued work."""
        outcome = self.dispatch_policy.submit(
            record, record.spec.options.job_id, self._ctx()
        )
        self._enact(record, outcome)

    def task_done(self, record: "TaskRecord") -> None:
        """Hook: a dispatched task reached a terminal phase; the policy
        may free a slot and release queued work."""
        outcome = self.dispatch_policy.task_done(record, self._ctx())
        self._enact(None, outcome)

    def _enact(
        self, record: Optional["TaskRecord"], outcome: DispatchOutcome
    ) -> None:
        """Publish the dispatch decision and launch what it released."""
        bus = self.runtime.bus
        if outcome.parked is not None and record is not None:
            bus.emit(
                "task.park",
                task=record.spec.task_id,
                job=outcome.parked.job_id,
                queued=outcome.parked.queued,
            )
            bus.emit(
                "policy.decision",
                task=record.spec.task_id,
                job=outcome.parked.job_id,
                policy=f"dispatch:{self.dispatch_policy.name}",
                decision="park",
                queued=outcome.parked.queued,
                released=len(outcome.launch),
            )
        elif outcome.picks:
            bus.emit(
                "policy.decision",
                policy=f"dispatch:{self.dispatch_policy.name}",
                decision="release",
                picks=list(outcome.picks),
            )
        for released in outcome.launch:
            self._launch(released)

    def _launch(self, record: "TaskRecord") -> None:
        """Place one record and hand it to its node manager."""
        decision = self._place(record)
        options = record.spec.options
        attrs = {
            "policy": f"placement:{decision.policy}",
            "decision": "place",
            "stage": decision.stage,
            "candidates": decision.candidates,
        }
        if options.node is not None:
            attrs["affinity"] = str(options.node)
        self.runtime.bus.emit(
            "policy.decision",
            task=record.spec.task_id,
            node=decision.node_id,
            job=options.job_id,
            **attrs,
        )
        self.runtime.bus.emit(
            "task.place",
            task=record.spec.task_id,
            node=decision.node_id,
            job=options.job_id,
        )
        self.runtime.node_managers[decision.node_id].submit(record)

    # -- job surface (any supports_jobs dispatch policy) ---------------------
    def register_job(
        self,
        job_id: str,
        *,
        weight: float = 1.0,
        tenant: Optional[str] = None,
        tenant_task_slots: Optional[int] = None,
    ) -> None:
        """Enrol a job with the dispatch policy (fair sharing)."""
        self.dispatch_policy.register_job(
            job_id,
            weight=weight,
            tenant=tenant,
            tenant_task_slots=tenant_task_slots,
        )

    def unregister_job(self, job_id: str) -> None:
        """Remove a finished job; any stragglers launch immediately."""
        outcome = self.dispatch_policy.unregister_job(job_id, self._ctx())
        self._enact(None, outcome)

    def queued_tasks(self, job_id: str) -> int:
        """How many of a job's tasks are parked awaiting a slot."""
        return self.dispatch_policy.queued_tasks(job_id)

    def inflight_tasks(self, job_id: str) -> int:
        """How many of a job's tasks currently occupy slots."""
        return self.dispatch_policy.inflight_tasks(job_id)

    # -- failure feedback ---------------------------------------------------
    def note_failure(self, node_id: NodeId) -> None:
        """Record a node failure; blacklist it for the cooldown window."""
        cooldown = self.runtime.config.blacklist_cooldown_s
        if cooldown > 0:
            self._blacklist_until[node_id] = self.runtime.env.now + cooldown

    def is_blacklisted(self, node_id: NodeId) -> bool:
        """True while ``node_id`` is inside its post-failure cooldown."""
        until = self._blacklist_until.get(node_id)
        if until is None:
            return False
        if self.runtime.env.now >= until:
            del self._blacklist_until[node_id]
            return False
        return True

    # -- placement ----------------------------------------------------------
    def place(self, record: "TaskRecord") -> NodeId:
        """Choose a node for ``record``; raises if the cluster is empty."""
        return self._place(record).node_id

    def _place(self, record: "TaskRecord") -> PlacementDecision:
        """Build the candidate views and ask the placement policy."""
        request, candidates = self.placement_view(record)
        return self.placement_policy.place(request, candidates)

    def placement_view(
        self, record: "TaskRecord"
    ) -> Tuple[PlacementRequest, Tuple[NodeCandidate, ...]]:
        """The policy-side view of one placement: the request plus one
        candidate per alive node (blacklist state, load, argument bytes
        resident in memory or on disk)."""
        runtime = self.runtime
        membership = runtime.membership
        # Removed members are out of the candidate pool entirely;
        # draining members stay in but are flagged blacklisted, so
        # placement avoids them yet can still fall back to them rather
        # than fail (exactly how post-failure cooldowns behave).
        alive = {
            node_id: manager
            for node_id, manager in runtime.node_managers.items()
            if manager.node.alive and membership.schedulable(node_id)
        }
        if not alive:
            raise SchedulingError("no alive nodes to schedule on")
        directory = runtime.directory
        bytes_by_node: Dict[NodeId, int] = defaultdict(int)
        for dep in record.spec.dependency_ids:
            dep_record = directory.maybe_get(dep)
            if dep_record is None:
                continue
            for node_id in dep_record.memory_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
            for node_id in dep_record.spill_nodes:
                if node_id in alive:
                    bytes_by_node[node_id] += dep_record.size
        candidates = tuple(
            NodeCandidate(
                node_id=node_id,
                blacklisted=(
                    self.is_blacklisted(node_id)
                    or membership.is_draining(node_id)
                ),
                load=self._load(manager),
                arg_bytes=bytes_by_node.get(node_id, 0),
            )
            for node_id, manager in alive.items()
        )
        options = record.spec.options
        request = PlacementRequest(
            task_id=record.spec.task_id,
            affinity=options.node,
            job_id=options.job_id,
        )
        return request, candidates

    @staticmethod
    def _load(manager: object) -> float:
        return manager.pending_tasks / manager.node.spec.cores  # type: ignore[attr-defined]


class FairShareScheduler(Scheduler):
    """A scheduler pinned to the ``"fair-share"`` dispatch policy.

    Kept as a named class for back-compat (the jobs control plane
    historically type-checked it); the behaviour -- weighted
    virtual-time fair queueing with tenant slot caps -- lives in
    :class:`~repro.futures.policies.FairShareDispatchPolicy`, and any
    scheduler whose dispatch policy ``supports_jobs`` is equivalent.
    """

    def __init__(self, runtime: "Runtime", slots_per_core: float = 1.0) -> None:
        super().__init__(
            runtime,
            dispatch_policy=FairShareDispatchPolicy(
                slots_per_core=slots_per_core
            ),
        )

    @property
    def slots_per_core(self) -> float:
        """Concurrent task slots granted per alive core."""
        return self.dispatch_policy.slots_per_core
