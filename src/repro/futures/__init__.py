"""A from-scratch distributed-futures runtime in the style of Ray (§4).

Public surface::

    from repro.futures import Runtime, RuntimeConfig

    rt = Runtime.create(node_spec, num_nodes=10)

    @rt.remote(num_returns=4)
    def mapper(part):
        ...

    def driver():
        refs = mapper.remote(part)
        return rt.get(refs)

    result = rt.run(driver)
    print(rt.now)          # simulated job completion time
    print(rt.stats())      # counters: spills, network bytes, tasks, ...
"""

from repro.futures.actor import ActorClass, ActorHandle
from repro.futures.config import RuntimeConfig
from repro.futures.driver import DriverHandle
from repro.futures.lineage import LineageManager
from repro.futures.policies import (
    POLICY_KINDS,
    available_policies,
    create_policy,
    register_policy,
)
from repro.futures.refs import ObjectRef
from repro.futures.remote import RemoteFunction
from repro.futures.retry import RetryPolicy
from repro.futures.runtime import UNATTRIBUTED_JOB, Runtime
from repro.futures.scheduler import FairShareScheduler, Scheduler
from repro.futures.task import CostContext, TaskOptions, TaskPhase

__all__ = [
    "Runtime",
    "RuntimeConfig",
    "RetryPolicy",
    "ObjectRef",
    "RemoteFunction",
    "ActorClass",
    "ActorHandle",
    "TaskOptions",
    "TaskPhase",
    "CostContext",
    "DriverHandle",
    "Scheduler",
    "FairShareScheduler",
    "LineageManager",
    "UNATTRIBUTED_JOB",
    "POLICY_KINDS",
    "register_policy",
    "create_policy",
    "available_policies",
]
