"""Byte-size accounting for objects stored in the object store.

The store manages *bytes*, so every stored value needs a size.  Values can
declare their own by exposing ``size_bytes`` (all of :mod:`repro.blocks`
does); otherwise common Python and numpy types are estimated.  Sizes only
need to be consistent, not exact -- they drive memory pressure and I/O
charges, not correctness.
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: Fixed overhead charged per stored object (metadata, headers).
OBJECT_OVERHEAD_BYTES = 64


def size_of(value: Any) -> int:
    """Estimate the stored size of ``value`` in bytes."""
    return OBJECT_OVERHEAD_BYTES + _payload_size(value)


def _payload_size(value: Any) -> int:
    declared = getattr(value, "size_bytes", None)
    if declared is not None:
        return int(declared)
    if value is None or isinstance(value, (bool, int, float)):
        return 8
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(_payload_size(item) + 8 for item in value)
    if isinstance(value, dict):
        return sum(
            _payload_size(k) + _payload_size(v) + 16 for k, v in value.items()
        )
    # Opaque application object: charge a flat struct size.  Applications
    # with large custom payloads should expose ``size_bytes``.
    return 256
