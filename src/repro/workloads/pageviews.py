"""Synthetic Wikipedia-pageviews stream (the Fig 5 workload).

The paper aggregates 6 months of hourly page-view statistics (1 TB) to
rank top pages by language.  The statistical property online aggregation
exploits is that every hour is a noisy draw from the same heavy-tailed
(Zipf) popularity distribution, so partial sums converge to the final
ranking quickly.  We generate exactly that: per-language Zipf base
popularity plus hourly multiplicative noise, with declared block sizes
matching the real dataset's volume.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.common.rng import seeded_rng


class PageviewBlock:
    """One hour of view counts: language -> counts over top pages."""

    __slots__ = ("hour", "counts", "declared_bytes")

    def __init__(
        self, hour: int, counts: Dict[str, np.ndarray], declared_bytes: int
    ) -> None:
        self.hour = hour
        self.counts = counts
        self.declared_bytes = declared_bytes

    @property
    def size_bytes(self) -> int:
        return self.declared_bytes

    @property
    def total_views(self) -> float:
        return float(sum(c.sum() for c in self.counts.values()))

    def __repr__(self) -> str:
        return f"PageviewBlock(hour={self.hour}, langs={len(self.counts)})"


class PageviewDataset:
    """Generator for the hourly stream."""

    def __init__(
        self,
        num_hours: int = 168,
        languages: int = 8,
        pages_per_language: int = 500,
        zipf_exponent: float = 1.3,
        hourly_noise: float = 0.3,
        block_bytes: int = 256 * 10**6,
        views_per_hour: int = 1_000_000,
        seed: int = 0,
    ) -> None:
        if num_hours < 1 or languages < 1 or pages_per_language < 2:
            raise ValueError("degenerate dataset")
        self.num_hours = num_hours
        self.languages = [f"lang{i:02d}" for i in range(languages)]
        self.pages_per_language = pages_per_language
        self.zipf_exponent = zipf_exponent
        self.hourly_noise = hourly_noise
        self.block_bytes = block_bytes
        self.views_per_hour = views_per_hour
        self.seed = seed
        ranks = np.arange(1, pages_per_language + 1, dtype=np.float64)
        base = ranks**-zipf_exponent
        self._base_popularity = base / base.sum()

    @property
    def total_bytes(self) -> int:
        return self.num_hours * self.block_bytes

    def hourly_block(self, hour: int) -> PageviewBlock:
        """The view counts for one hour (deterministic per hour)."""
        if not 0 <= hour < self.num_hours:
            raise ValueError(f"hour {hour} out of range")
        counts: Dict[str, np.ndarray] = {}
        per_lang_views = self.views_per_hour // len(self.languages)
        for lang_index, lang in enumerate(self.languages):
            rng = seeded_rng(self.seed, "pageviews", hour, lang_index)
            noise = rng.lognormal(mean=0.0, sigma=self.hourly_noise,
                                  size=self.pages_per_language)
            popularity = self._base_popularity * noise
            popularity /= popularity.sum()
            counts[lang] = rng.multinomial(per_lang_views, popularity).astype(
                np.float64
            )
        return PageviewBlock(hour, counts, self.block_bytes)

    def all_blocks(self) -> List[PageviewBlock]:
        """Every hourly block, in stream order."""
        return [self.hourly_block(h) for h in range(self.num_hours)]

    def final_distribution(self) -> Dict[str, np.ndarray]:
        """The exact end-of-job per-language view shares (ground truth)."""
        totals: Dict[str, np.ndarray] = {
            lang: np.zeros(self.pages_per_language) for lang in self.languages
        }
        for hour in range(self.num_hours):
            block = self.hourly_block(hour)
            for lang, counts in block.counts.items():
                totals[lang] += counts
        return {
            lang: counts / counts.sum() for lang, counts in totals.items()
        }
