"""Synthetic workload generators for the application experiments."""

from repro.workloads.pageviews import PageviewBlock, PageviewDataset

__all__ = ["PageviewBlock", "PageviewDataset"]
