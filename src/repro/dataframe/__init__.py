"""A distributed DataFrame built on shuffle-as-a-library.

The paper's related work (§6) points out that DataFrame engines (Dask,
Spark, Modin, Polars, Vaex) each rebuild shuffle for ``sort`` and
``groupby``.  This package demonstrates the alternative the paper argues
for: a DataFrame layer whose shuffle-backed operators are a few lines
over the shuffle library, inheriting its spilling, pipelining, and fault
tolerance for free.

    frame = DistributedFrame.from_arrays(rt, {"k": keys, "v": vals}, 16)
    by_key = frame.sort_values("k")
    totals = frame.groupby_sum("k", ["v"])
"""

from repro.dataframe.block import FrameBlock
from repro.dataframe.frame import DistributedFrame

__all__ = ["FrameBlock", "DistributedFrame"]
